//! Property-based tests: the paged cache behaves like a simple
//! append-only log, regardless of page size or append batching, and the
//! zero-copy [`cp_kvcache::KvView`] hot path feeds the attention kernels
//! bit-identically to a gathered copy.

use cp_attention::{
    blocked_gqa_attention_source, flash_decode_source, AttentionParams, GqaShape, KvSource,
};
use cp_kvcache::{KvCacheConfig, PagedKvCache, QuantKvCache, QuantizedKv, SeqId};
use cp_pool::ComputePool;
use cp_tensor::{DetRng, Tensor};
use proptest::prelude::*;

proptest! {
    /// Appending in arbitrary chunk sizes gathers back the same data as the
    /// flat reference log, for any page size.
    #[test]
    fn paged_cache_equals_flat_log(
        page_size in 1usize..9,
        chunks in prop::collection::vec(0usize..7, 1..8),
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 2, 3));
        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let mut ref_k: Vec<Tensor> = Vec::new();
        let mut ref_v: Vec<Tensor> = Vec::new();
        let mut ref_pos: Vec<usize> = Vec::new();
        let mut next_pos = 0;
        for t in chunks {
            let k = rng.tensor(&[t, 2, 3]);
            let v = rng.tensor(&[t, 2, 3]);
            let pos: Vec<usize> = (next_pos..next_pos + t).collect();
            next_pos += t;
            cache.append(seq, &k, &v, &pos).unwrap();
            ref_k.push(k);
            ref_v.push(v);
            ref_pos.extend(pos);
        }
        let (gk, gv, gpos) = cache.gather(seq).unwrap();
        if ref_pos.is_empty() {
            prop_assert_eq!(gk.dim0(), 0);
        } else {
            prop_assert_eq!(gk, Tensor::concat_dim0(ref_k.iter()).unwrap());
            prop_assert_eq!(gv, Tensor::concat_dim0(ref_v.iter()).unwrap());
        }
        prop_assert_eq!(gpos, ref_pos);
    }

    /// Interleaved appends to multiple sequences stay isolated.
    #[test]
    fn sequences_are_isolated(
        page_size in 1usize..6,
        ops in prop::collection::vec((0usize..3, 1usize..5), 1..12),
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2));
        let mut rng = DetRng::new(seed);
        let mut logs: Vec<Vec<f32>> = vec![Vec::new(); 3];
        for s in 0..3u64 {
            cache.create_sequence(SeqId(s)).unwrap();
        }
        for (s, t) in ops {
            let k = rng.tensor(&[t, 1, 2]);
            let v = k.clone();
            let start = logs[s].len() / 2;
            let pos: Vec<usize> = (start..start + t).collect();
            cache.append(SeqId(s as u64), &k, &v, &pos).unwrap();
            logs[s].extend_from_slice(k.as_slice());
        }
        for (s, log) in logs.iter().enumerate() {
            let (gk, gv, _) = cache.gather(SeqId(s as u64)).unwrap();
            prop_assert_eq!(gk.as_slice(), log.as_slice());
            prop_assert_eq!(gv.as_slice(), log.as_slice());
        }
    }

    /// Truncate-then-gather equals the prefix of the reference log, and
    /// stats never report more pages than ceil(tokens / page_size) + frag.
    #[test]
    fn truncate_is_prefix(
        page_size in 1usize..6,
        total in 1usize..30,
        keep_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let k = rng.tensor(&[total, 1, 2]);
        let v = rng.tensor(&[total, 1, 2]);
        let pos: Vec<usize> = (0..total).collect();
        cache.append(seq, &k, &v, &pos).unwrap();
        let keep = ((total as f64) * keep_frac) as usize;
        cache.truncate(seq, keep).unwrap();
        let (gk, _, gpos) = cache.gather(seq).unwrap();
        prop_assert_eq!(gk.as_slice(), &k.as_slice()[..keep * 2]);
        prop_assert_eq!(gpos, (0..keep).collect::<Vec<_>>());
        let stats = cache.stats();
        prop_assert_eq!(stats.tokens, keep);
        prop_assert_eq!(stats.allocated_pages, keep.div_ceil(page_size));
    }

    /// A bounded pool never exceeds its max and OOM appends never corrupt
    /// existing state.
    #[test]
    fn bounded_pool_respects_capacity(
        max_pages in 1usize..5,
        appends in prop::collection::vec(1usize..6, 1..10),
        seed in any::<u64>(),
    ) {
        let page_size = 2;
        let mut cache =
            PagedKvCache::new(KvCacheConfig::new(page_size, 1, 2).with_max_pages(max_pages));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let mut committed = 0usize;
        for t in appends {
            let k = rng.tensor(&[t, 1, 2]);
            let v = rng.tensor(&[t, 1, 2]);
            let pos: Vec<usize> = (committed..committed + t).collect();
            match cache.append(seq, &k, &v, &pos) {
                Ok(()) => committed += t,
                Err(_) => {
                    // Rejected: length unchanged.
                    prop_assert_eq!(cache.seq_len(seq).unwrap(), committed);
                }
            }
            prop_assert!(cache.stats().allocated_pages <= max_pages);
            prop_assert!(committed <= max_pages * page_size);
        }
    }

    /// Attention over the zero-copy paged view is BIT-identical to
    /// attention over the gathered contiguous copy, across ragged page
    /// boundaries (`page_size` not dividing the token count), arbitrary
    /// multi-turn append batching, arbitrary block sizes (page-aligned or
    /// not), and pages freed and reused by another sequence — the blocked
    /// prefill kernel and the split-KV decode kernel both.
    #[test]
    fn view_attention_bit_identical_to_gather(
        page_size in 1usize..7,
        chunks in prop::collection::vec(1usize..9, 1..6),
        block_size in 1usize..20,
        n_splits in 1usize..5,
        seed in any::<u64>(),
    ) {
        let shape = GqaShape::new(4, 2, 4).unwrap();
        let params = AttentionParams::for_shape(shape);
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 2, 4));
        let mut rng = DetRng::new(seed);

        // Churn: a doomed sequence allocates pages, then frees them, so
        // the sequence under test lands on reused pages.
        let doomed = SeqId(9);
        cache.create_sequence(doomed).unwrap();
        let dk = rng.tensor(&[5, 2, 4]);
        cache.append(doomed, &dk, &dk, &[0, 1, 2, 3, 4]).unwrap();
        cache.free_sequence(doomed).unwrap();

        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut total = 0usize;
        for t in chunks {
            let k = rng.tensor(&[t, 2, 4]);
            let v = rng.tensor(&[t, 2, 4]);
            let pos: Vec<usize> = (total..total + t).collect();
            cache.append(seq, &k, &v, &pos).unwrap();
            total += t;
        }

        let (gk, gv, gpos) = cache.gather(seq).unwrap();
        let view = cache.view(seq).unwrap();
        prop_assert_eq!(view.positions(), &gpos[..]);

        // Blocked prefill kernel: two query rows attending from the tail.
        let q = rng.tensor(&[2, 4, 4]);
        let q_pos = vec![total.saturating_sub(1), total];
        let pool = ComputePool::new(2);
        let gathered = blocked_gqa_attention_source(
            &pool, &q, &KvSource::contiguous(&gk, &gv), &params, &q_pos, &gpos, block_size,
        ).unwrap();
        let viewed = blocked_gqa_attention_source(
            &pool, &q, &view.source(), &params, &q_pos, &gpos, block_size,
        ).unwrap();
        prop_assert_eq!(gathered.out.as_slice(), viewed.out.as_slice());
        prop_assert_eq!(gathered.lse.as_slice(), viewed.lse.as_slice());

        // Split-KV decode kernel: one query token at the next position.
        let dq = rng.tensor(&[1, 4, 4]);
        let dg = flash_decode_source(
            &dq, &KvSource::contiguous(&gk, &gv), &params, &[total], &gpos, n_splits,
        ).unwrap();
        let dv = flash_decode_source(
            &dq, &view.source(), &params, &[total], &gpos, n_splits,
        ).unwrap();
        prop_assert_eq!(dg.out.as_slice(), dv.out.as_slice());
        prop_assert_eq!(dg.lse.as_slice(), dv.lse.as_slice());
    }

    /// The paged quantized store under scheduler-grade churn — interleaved
    /// appends, truncations, frees and re-creations across sequences on a
    /// bounded pool that forces page reuse — stays BITWISE equal, per
    /// sequence, to a contiguous [`QuantizedKv`] shadow grown with
    /// `quantize` + `extend` / `truncate`. This is exactly the
    /// `extend`-vs-eviction interaction: a freed-then-reused page must
    /// never bleed a previous tenant's codes, scales or positions.
    #[test]
    fn quant_store_equals_contiguous_shadow_under_churn(
        page_size in 1usize..5,
        max_pages in 4usize..9,
        ops in prop::collection::vec((0usize..4, 0u64..3, 1usize..6, 0.0f64..1.0), 1..25),
        seed in any::<u64>(),
    ) {
        let config = KvCacheConfig::new(page_size, 2, 3).with_max_pages(max_pages);
        let mut cache = QuantKvCache::new(config);
        let mut rng = DetRng::new(seed);
        // Shadow: per live sequence, the contiguous quantized K/V and
        // position log the paged store must reproduce bit-for-bit.
        let mut shadow: std::collections::HashMap<u64, (QuantizedKv, QuantizedKv, Vec<usize>)> =
            std::collections::HashMap::new();
        for (op, s, t, frac) in ops {
            let seq = SeqId(s);
            match op {
                // Append t tokens (creating the sequence on first touch).
                0 | 1 => {
                    if !cache.contains(seq) {
                        cache.create_sequence(seq).unwrap();
                        let empty = QuantizedKv::quantize(&Tensor::zeros(&[0, 2, 3])).unwrap();
                        shadow.insert(s, (empty.clone(), empty, Vec::new()));
                    }
                    let k = rng.tensor(&[t, 2, 3]);
                    let v = rng.tensor(&[t, 2, 3]);
                    let entry = shadow.get_mut(&s).unwrap();
                    let start = entry.2.len();
                    let pos: Vec<usize> = (start..start + t).collect();
                    match cache.append(seq, &k, &v, &pos) {
                        Ok(()) => {
                            entry.0.extend(&QuantizedKv::quantize(&k).unwrap()).unwrap();
                            entry.1.extend(&QuantizedKv::quantize(&v).unwrap()).unwrap();
                            entry.2.extend(pos);
                        }
                        Err(cp_kvcache::CacheError::OutOfPages { .. }) => {
                            // Transactional: the rejected append must leave
                            // the sequence exactly as the shadow remembers.
                            prop_assert_eq!(cache.seq_len(seq).unwrap(), entry.2.len());
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("append: {e}"))),
                    }
                }
                // Truncate to a fraction of the current length.
                2 => {
                    if let Some(entry) = shadow.get_mut(&s) {
                        let keep = ((entry.2.len() as f64) * frac) as usize;
                        cache.truncate(seq, keep).unwrap();
                        entry.0.truncate(keep).unwrap();
                        entry.1.truncate(keep).unwrap();
                        entry.2.truncate(keep);
                    }
                }
                // Evict: free the sequence, returning pages for reuse.
                _ => {
                    if shadow.remove(&s).is_some() {
                        cache.free_sequence(seq).unwrap();
                    }
                }
            }
            // Invariants after every op: pool bounded, every live
            // sequence bitwise equal to its shadow.
            let stats = cache.stats();
            prop_assert!(stats.allocated_pages + stats.free_pages <= max_pages);
            prop_assert_eq!(stats.sequences, shadow.len());
            for (&id, (sk, sv, spos)) in &shadow {
                let (gk, gv, gpos) = cache.gather_quantized(SeqId(id)).unwrap();
                prop_assert_eq!(&gk, sk);
                prop_assert_eq!(&gv, sv);
                prop_assert_eq!(&gpos, spos);
                prop_assert_eq!(cache.seq_pages(SeqId(id)).unwrap(),
                    spos.len().div_ceil(page_size));
            }
        }
    }

    /// Attention straight over quantized pages (per-head dequantize into a
    /// kernel scratch, no materialized f32 copy) is BITWISE equal to
    /// attention over the gathered-and-dequantized tensors it replaced, and
    /// within quantization tolerance of the exact f32 attention — across
    /// ragged page boundaries (`page_size` not dividing the token count),
    /// multi-turn append batching, freed-and-reused pages, arbitrary block
    /// sizes, and both the blocked prefill and split-KV decode kernels.
    #[test]
    fn quant_paged_attention_bitwise_vs_dequantized_and_close_to_f32(
        page_size in 1usize..7,
        chunks in prop::collection::vec(1usize..9, 1..6),
        block_size in 1usize..20,
        n_splits in 1usize..5,
        seed in any::<u64>(),
    ) {
        let shape = GqaShape::new(4, 2, 4).unwrap();
        let params = AttentionParams::for_shape(shape);
        let mut cache = QuantKvCache::new(KvCacheConfig::new(page_size, 2, 4));
        let mut rng = DetRng::new(seed);

        // Churn: a doomed sequence allocates pages, then frees them, so
        // the sequence under test lands on reused pages.
        let doomed = SeqId(9);
        cache.create_sequence(doomed).unwrap();
        let dk = rng.tensor(&[5, 2, 4]);
        cache.append(doomed, &dk, &dk, &[0, 1, 2, 3, 4]).unwrap();
        cache.free_sequence(doomed).unwrap();

        let seq = SeqId(1);
        cache.create_sequence(seq).unwrap();
        let mut f32_k: Vec<Tensor> = Vec::new();
        let mut f32_v: Vec<Tensor> = Vec::new();
        let mut total = 0usize;
        for t in chunks {
            let k = rng.tensor(&[t, 2, 4]);
            let v = rng.tensor(&[t, 2, 4]);
            let pos: Vec<usize> = (total..total + t).collect();
            cache.append(seq, &k, &v, &pos).unwrap();
            f32_k.push(k);
            f32_v.push(v);
            total += t;
        }
        let fk = Tensor::concat_dim0(f32_k.iter()).unwrap();
        let fv = Tensor::concat_dim0(f32_v.iter()).unwrap();

        let (dqk, dqv, gpos) = cache.dequantize(seq).unwrap();
        let view = cache.view(seq).unwrap();
        prop_assert_eq!(view.positions(), &gpos[..]);
        let tol = 0.05f32; // generous vs the ~0.02 pinned unit bound

        // Blocked prefill kernel: two query rows attending from the tail.
        let q = rng.tensor(&[2, 4, 4]);
        let q_pos = vec![total.saturating_sub(1), total];
        let pool = ComputePool::new(2);
        let deq = blocked_gqa_attention_source(
            &pool, &q, &KvSource::contiguous(&dqk, &dqv), &params, &q_pos, &gpos, block_size,
        ).unwrap();
        let quant = blocked_gqa_attention_source(
            &pool, &q, &view.source(), &params, &q_pos, &gpos, block_size,
        ).unwrap();
        prop_assert_eq!(deq.out.as_slice(), quant.out.as_slice());
        prop_assert_eq!(deq.lse.as_slice(), quant.lse.as_slice());
        let exact = blocked_gqa_attention_source(
            &pool, &q, &KvSource::contiguous(&fk, &fv), &params, &q_pos, &gpos, block_size,
        ).unwrap();
        prop_assert!(exact.out.max_abs_diff(&quant.out).unwrap() < tol);

        // Split-KV decode kernel: one query token at the next position.
        let dq = rng.tensor(&[1, 4, 4]);
        let dd = flash_decode_source(
            &dq, &KvSource::contiguous(&dqk, &dqv), &params, &[total], &gpos, n_splits,
        ).unwrap();
        let dv2 = flash_decode_source(
            &dq, &view.source(), &params, &[total], &gpos, n_splits,
        ).unwrap();
        prop_assert_eq!(dd.out.as_slice(), dv2.out.as_slice());
        prop_assert_eq!(dd.lse.as_slice(), dv2.lse.as_slice());
        let de = flash_decode_source(
            &dq, &KvSource::contiguous(&fk, &fv), &params, &[total], &gpos, n_splits,
        ).unwrap();
        prop_assert!(de.out.max_abs_diff(&dv2.out).unwrap() < tol);
    }

    /// The view stays bit-faithful to gather after truncation rewinds the
    /// sequence to a ragged mid-page length and appends resume from there.
    #[test]
    fn view_attention_faithful_after_truncate_and_reappend(
        page_size in 1usize..6,
        total in 2usize..20,
        keep_frac in 0.0f64..1.0,
        regrow in 1usize..8,
        seed in any::<u64>(),
    ) {
        let shape = GqaShape::new(2, 1, 3).unwrap();
        let params = AttentionParams::for_shape(shape);
        let mut cache = PagedKvCache::new(KvCacheConfig::new(page_size, 1, 3));
        let seq = SeqId(0);
        cache.create_sequence(seq).unwrap();
        let mut rng = DetRng::new(seed);
        let k = rng.tensor(&[total, 1, 3]);
        let v = rng.tensor(&[total, 1, 3]);
        cache.append(seq, &k, &v, &(0..total).collect::<Vec<_>>()).unwrap();
        let keep = ((total as f64) * keep_frac) as usize;
        cache.truncate(seq, keep).unwrap();
        let k2 = rng.tensor(&[regrow, 1, 3]);
        let v2 = rng.tensor(&[regrow, 1, 3]);
        cache.append(seq, &k2, &v2, &(keep..keep + regrow).collect::<Vec<_>>()).unwrap();

        let (gk, gv, gpos) = cache.gather(seq).unwrap();
        let view = cache.view(seq).unwrap();
        prop_assert_eq!(view.len(), keep + regrow);
        let q = rng.tensor(&[1, 2, 3]);
        let pool = ComputePool::new(1);
        let a = blocked_gqa_attention_source(
            &pool, &q, &KvSource::contiguous(&gk, &gv), &params, &[keep + regrow], &gpos, 4,
        ).unwrap();
        let b = blocked_gqa_attention_source(
            &pool, &q, &view.source(), &params, &[keep + regrow], &gpos, 4,
        ).unwrap();
        prop_assert_eq!(a.out.as_slice(), b.out.as_slice());
        prop_assert_eq!(a.lse.as_slice(), b.lse.as_slice());
    }
}
