//! `cp-lint` — network-free lexical lint for the communication-critical
//! crates.
//!
//! A rank that panics mid-ring wedges every peer until their receive
//! timeouts fire, so the hot crates (`cp-comm`, `cp-core`, `cp-attention`)
//! must surface failures as typed errors, never as panics. This lint
//! enforces the two panic sources the type system cannot: unchecked slice
//! indexing (`x[i]`) and `.unwrap()` / `.expect(..)` calls, in non-test
//! code.
//!
//! A second, workspace-wide rule rides on the same scanner: every
//! **collective issue site** (`.send_recv(`, `.all_to_all(`,
//! `.all_gather(`, `.all_reduce(`, `.isend_irecv(`, `.isend(`,
//! `.irecv(`, `.barrier(`) is censused across *all* crates. The
//! communication architecture requires each collective the workspace
//! issues to be covered by a declared `CommPlan` template (see
//! `cp-verify`), so new call sites fail the lint until their budget is
//! consciously registered — the *undeclared-collective* ratchet.
//!
//! The scanner is purely lexical (no rustc, no network): it masks
//! comments, strings, and char literals, drops `#[cfg(test)]` items, then
//! pattern-matches the remaining token stream. Findings are reconciled
//! against a committed, *ratcheting* allowlist (`cp-lint.allow`): a file
//! over its budget fails the build, and a file **under** its budget also
//! fails, forcing the budget down so fixed debt cannot silently return.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unchecked slice/array indexing: `x[i]` panics on out-of-range.
    Index,
    /// `.unwrap()` panics on `None`/`Err`.
    Unwrap,
    /// `.expect(..)` panics on `None`/`Err`.
    Expect,
    /// A collective / point-to-point issue site (`.send_recv(`,
    /// `.all_gather(`, …) that must be covered by a declared plan.
    Collective,
}

impl Rule {
    /// All rules.
    pub const ALL: [Rule; 4] = [Rule::Index, Rule::Unwrap, Rule::Expect, Rule::Collective];

    /// Stable tag used in reports and the allowlist file.
    pub fn tag(&self) -> &'static str {
        match self {
            Rule::Index => "index",
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Collective => "collective",
        }
    }

    /// Parses an allowlist tag.
    pub fn from_tag(tag: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.tag() == tag)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
}

/// Masks comments, string literals, and char literals with spaces,
/// preserving length and newlines so byte offsets map to line numbers.
/// Raw strings (`r"…"`, `r#"…"#`, any hash depth, with `b` prefixes) and
/// nested block comments are handled; lifetimes (`'a`) are left intact.
fn mask_non_code(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let n = bytes.len();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in out.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|p| i + p).unwrap_or(n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < n {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i, j.min(n));
                i = j.min(n);
            }
            b'r' | b'b' => {
                // Possible raw / byte / raw-byte string: r", br", r#", …
                let mut j = i + 1;
                if bytes[i] == b'b' && j < n && bytes[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while j < n && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                let is_ident_prefix =
                    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                if !is_ident_prefix && j < n && bytes[j] == b'"' {
                    // Find closing quote followed by the same hash count.
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut k = j + 1;
                    let mut end = n;
                    while k < n {
                        if bytes[k] == b'"' && bytes.get(k..k + closer.len()) == Some(&closer[..]) {
                            end = k + closer.len();
                            break;
                        }
                        // Plain b"…" strings still honour escapes.
                        if hashes == 0 && bytes[k] == b'\\' {
                            k += 2;
                            continue;
                        }
                        k += 1;
                    }
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a quote introduces a char
                // literal iff it closes within a couple of tokens
                // (escape, or one char then a quote). `'a` / `'static`
                // are lifetimes and left alone.
                if i + 1 < n && bytes[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < n && bytes[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, i, (j + 1).min(n));
                    i = (j + 1).min(n);
                } else {
                    // Multi-byte chars: find the next quote within the
                    // current char boundary span.
                    let rest = &src[i + 1..];
                    let mut chars = rest.chars();
                    let first_len = chars.next().map(char::len_utf8).unwrap_or(0);
                    if rest.as_bytes().get(first_len) == Some(&b'\'') {
                        let end = i + 1 + first_len + 1;
                        blank(&mut out, i, end);
                        i = end;
                    } else {
                        i += 1; // lifetime
                    }
                }
            }
            _ => i += 1,
        }
    }
    // Masking only writes ASCII spaces over non-newline bytes, so the
    // result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

/// Marks the byte ranges of items annotated `#[cfg(test)]` or `#[test]`
/// in masked source: from the attribute through the matching close brace
/// (or terminating semicolon) of the item that follows.
fn test_item_ranges(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut ranges = Vec::new();
    let mut search = 0;
    while let Some(rel) = masked[search..].find("#[") {
        let attr_start = search + rel;
        // Attribute body extends to its matching ']'.
        let mut j = attr_start + 2;
        let mut depth = 1;
        while j < n && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr = &masked[attr_start..j];
        search = j;
        let is_test_attr = attr.contains("cfg(test)")
            || attr.contains("cfg(all(test")
            || attr == "#[test]"
            || attr.starts_with("#[test ");
        if !is_test_attr {
            continue;
        }
        // Skip further attributes and whitespace, then consume the item:
        // up to the matching '}' of its first brace block, or a ';'.
        let mut k = j;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < n {
            match bytes[k] {
                b'{' => {
                    brace_depth += 1;
                    entered = true;
                }
                b'}' => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        k += 1;
                        break;
                    }
                }
                b';' if !entered => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((attr_start, k));
        search = k;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], pos: usize) -> bool {
    ranges.iter().any(|(a, b)| pos >= *a && pos < *b)
}

/// Method names whose call sites issue fabric traffic. Longest-prefix
/// names first so `isend_irecv` is not half-matched as `isend`; the
/// identifier-boundary check below makes the order a belt-and-braces
/// matter rather than a correctness one. Bare `.send(` / `.recv(` are
/// deliberately excluded: they collide with `std::sync::mpsc` channel
/// methods, and the fabric offers no lone blocking send/recv anyway.
const COLLECTIVE_CALLS: [&str; 8] = [
    "isend_irecv",
    "send_recv",
    "all_to_all",
    "all_gather",
    "all_reduce",
    "isend",
    "irecv",
    "barrier",
];

/// Keywords that may directly precede `[` without it being an index
/// expression (slice patterns, array expressions after `return`, …).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "box", "await",
    "where", "dyn", "impl", "for", "const", "static", "break", "continue", "loop", "while", "type",
    "unsafe",
];

/// The identifier-like word ending just before `i` (skipping trailing
/// whitespace), plus its start offset so callers can inspect what precedes
/// it (e.g. a `'` marking a lifetime).
fn preceding_word(bytes: &[u8], mut i: usize) -> Option<(&[u8], usize)> {
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    (i < end).then(|| (&bytes[i..end], i))
}

/// Scans masked, test-stripped source for rule hits. `file` is the path
/// recorded in findings.
fn scan_masked(file: &str, masked: &str, skip: &[(usize, usize)]) -> Vec<Finding> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut findings = Vec::new();
    let line_of = |pos: usize| 1 + masked[..pos].matches('\n').count();

    for i in 0..n {
        if in_ranges(skip, i) {
            continue;
        }
        match bytes[i] {
            b'[' => {
                // Index expression iff the previous non-space token ends an
                // expression: identifier (non-keyword), ')', ']', or '?'.
                let mut j = i;
                while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\t') {
                    j -= 1;
                }
                let prev = if j > 0 { bytes[j - 1] } else { b' ' };
                let is_index = match prev {
                    b')' | b']' | b'?' => true,
                    c if c.is_ascii_alphanumeric() || c == b'_' => {
                        match preceding_word(bytes, j) {
                            // A `'`-prefixed word is a lifetime (`&'a [u8]`),
                            // not an expression ending in an identifier.
                            Some((_, start)) if start > 0 && bytes[start - 1] == b'\'' => false,
                            Some((word, _)) => {
                                !NON_INDEX_KEYWORDS.iter().any(|kw| kw.as_bytes() == word)
                            }
                            None => true,
                        }
                    }
                    _ => false,
                };
                if is_index {
                    findings.push(Finding {
                        file: file.to_string(),
                        rule: Rule::Index,
                        line: line_of(i),
                    });
                }
            }
            b'.' => {
                let rest = &masked[i + 1..];
                let named_call = [("unwrap", Rule::Unwrap), ("expect", Rule::Expect)]
                    .into_iter()
                    .chain(COLLECTIVE_CALLS.map(|name| (name, Rule::Collective)));
                for (name, rule) in named_call {
                    if let Some(after) = rest.strip_prefix(name) {
                        // The identifier must end here (not unwrap_or /
                        // expect_err / isend_irecv-as-isend) and be called.
                        let mut chars = after.chars();
                        let next = chars.next();
                        let boundary =
                            !matches!(next, Some(c) if c.is_ascii_alphanumeric() || c == '_');
                        let called = after.trim_start().starts_with('(');
                        if boundary && called {
                            findings.push(Finding {
                                file: file.to_string(),
                                rule,
                                line: line_of(i),
                            });
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    findings
}

/// Lints one source string (exposed for tests; [`scan_file`] is the
/// filesystem entry point).
pub fn scan_source(file: &str, source: &str) -> Vec<Finding> {
    let masked = mask_non_code(source);
    let skip = test_item_ranges(&masked);
    scan_masked(file, &masked, &skip)
}

/// Lints one file on disk; `rel` is the workspace-relative name recorded
/// in findings.
pub fn scan_file(path: &Path, rel: &str) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    Ok(scan_source(rel, &source))
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Per-file, per-rule finding budgets: the committed ratchet state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// `(file, rule) -> allowed count`. Absent means zero.
    pub budgets: BTreeMap<(String, Rule), usize>,
}

impl Allowlist {
    /// Parses the `cp-lint.allow` format: one `<file> <rule> <count>` per
    /// line; `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut budgets = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (file, rule, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(f), Some(r), Some(c)) => (f, r, c),
                _ => {
                    return Err(format!(
                        "line {}: expected '<file> <rule> <count>'",
                        lineno + 1
                    ))
                }
            };
            let rule = Rule::from_tag(rule)
                .ok_or_else(|| format!("line {}: unknown rule '{rule}'", lineno + 1))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("line {}: bad count '{count}'", lineno + 1))?;
            if count == 0 {
                return Err(format!(
                    "line {}: zero budgets must be removed, not listed",
                    lineno + 1
                ));
            }
            budgets.insert((file.to_string(), rule), count);
        }
        Ok(Allowlist { budgets })
    }

    /// Renders the canonical file content for `--update`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# cp-lint ratchet: per-file budgets for remaining panic sites\n\
             # (index/unwrap/expect in the hot crates) and for registered\n\
             # collective issue sites (workspace-wide; each must be covered\n\
             # by a declared plan — see cp-verify). A file over OR under its\n\
             # budget fails the lint; shrink budgets as debt is paid down\n\
             # (cargo run -p cp-lint -- --update).\n",
        );
        for ((file, rule), count) in &self.budgets {
            out.push_str(&format!("{file} {rule} {count}\n"));
        }
        out
    }

    /// Builds the allowlist matching a set of findings exactly.
    pub fn from_findings(findings: &[Finding]) -> Allowlist {
        let mut budgets: BTreeMap<(String, Rule), usize> = BTreeMap::new();
        for f in findings {
            *budgets.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
        }
        Allowlist { budgets }
    }
}

/// One budget discrepancy between findings and the allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// Workspace-relative file.
    pub file: String,
    /// The rule whose count diverged.
    pub rule: Rule,
    /// Hits found in the file.
    pub found: usize,
    /// Budget the allowlist grants.
    pub allowed: usize,
    /// Line numbers of the findings (for over-budget reporting).
    pub lines: Vec<usize>,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.found > self.allowed {
            write!(
                f,
                "{}: {} {} finding(s), budget {} — fix them or justify a budget \
                 increase (lines {:?})",
                self.file, self.found, self.rule, self.allowed, self.lines
            )
        } else {
            write!(
                f,
                "{}: {} {} finding(s), budget {} — debt was paid down, ratchet the \
                 budget (cargo run -p cp-lint -- --update)",
                self.file, self.found, self.rule, self.allowed
            )
        }
    }
}

/// Reconciles findings against the allowlist. Empty result means the lint
/// passes; any entry (over *or* under budget) is a failure.
pub fn reconcile(findings: &[Finding], allow: &Allowlist) -> Vec<BudgetError> {
    let mut by_key: BTreeMap<(String, Rule), Vec<usize>> = BTreeMap::new();
    for f in findings {
        by_key
            .entry((f.file.clone(), f.rule))
            .or_default()
            .push(f.line);
    }
    let mut keys: std::collections::BTreeSet<(String, Rule)> = by_key.keys().cloned().collect();
    keys.extend(allow.budgets.keys().cloned());
    let mut errors = Vec::new();
    for key in keys {
        let lines = by_key.get(&key).cloned().unwrap_or_default();
        let found = lines.len();
        let allowed = allow.budgets.get(&key).copied().unwrap_or(0);
        if found != allowed {
            errors.push(BudgetError {
                file: key.0,
                rule: key.1,
                found,
                allowed,
                lines,
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<(Rule, usize)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn finds_unwrap_expect_and_indexing() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let x = v[0];\n    let y: Option<u8> = None;\n    y.unwrap();\n    y.expect(\"boom\")\n}\n";
        let found = rules_of(&scan_source("t.rs", src));
        assert_eq!(
            found,
            vec![(Rule::Index, 2), (Rule::Unwrap, 4), (Rule::Expect, 5)]
        );
    }

    #[test]
    fn ignores_comments_strings_and_chars() {
        let src = concat!(
            "// v[0].unwrap()\n",
            "/* nested /* v[1] */ .expect(\"x\") */\n",
            "fn f() -> String {\n",
            "    let s = \"a[0].unwrap() \\\" .expect(\";\n",
            "    let r = r#\"b[1].unwrap()\"#;\n",
            "    let c = '[';\n",
            "    let q = '\\'';\n",
            "    format!(\"{s}{r}{c}{q}\")\n",
            "}\n"
        );
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_masker() {
        let src = "fn f<'a>(x: &'a [u8], v: &'a Vec<u8>) -> &'a u8 {\n    &v[0]\n}\n";
        let found = rules_of(&scan_source("t.rs", src));
        assert_eq!(found, vec![(Rule::Index, 2)]);
    }

    #[test]
    fn skips_cfg_test_items_and_test_fns() {
        let src = concat!(
            "fn prod(v: &[u8]) -> Option<&u8> { v.first() }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { let v = vec![1]; assert_eq!(v[0], 1); v.first().unwrap(); }\n",
            "}\n"
        );
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn array_types_patterns_and_macros_are_not_indexing() {
        let src = concat!(
            "#[derive(Debug)]\n",
            "struct S;\n",
            "fn f(xs: &[u8]) -> Vec<[u8; 2]> {\n",
            "    if let [a, b] = xs { return vec![[*a, *b]]; }\n",
            "    let _v: Vec<u8> = vec![1, 2];\n",
            "    Vec::new()\n",
            "}\n"
        );
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_and_expect_err_do_not_match() {
        let src = "fn f(y: Option<u8>, e: Result<u8, u8>) -> u8 {\n    y.unwrap_or(0) + y.unwrap_or_default() + e.clone().unwrap_or_else(|_| 0) + e.expect_err(\"no\")\n}\n";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn chained_and_question_mark_indexing_is_flagged() {
        let src = "fn f(v: &Vec<Vec<u8>>) -> Option<u8> {\n    let a = v.first()?[0];\n    let b = (v.clone())[0][1];\n    Some(a + b)\n}\n";
        let found = rules_of(&scan_source("t.rs", src));
        assert_eq!(
            found,
            vec![(Rule::Index, 2), (Rule::Index, 3), (Rule::Index, 3)]
        );
    }

    #[test]
    fn collective_issue_sites_are_censused() {
        let src = concat!(
            "fn ring(comm: &Comm) -> Result<(), E> {\n",
            "    let got = comm.send_recv(comm.ring_next(), msg, comm.ring_prev())?;\n",
            "    let pending = comm.isend_irecv(dst, payload, src)?;\n",
            "    comm.all_gather(shard)?;\n",
            "    comm.barrier()\n",
            "}\n"
        );
        let found = rules_of(&scan_source("t.rs", src));
        assert_eq!(
            found,
            vec![
                (Rule::Collective, 2),
                (Rule::Collective, 3),
                (Rule::Collective, 4),
                (Rule::Collective, 5),
            ]
        );
    }

    #[test]
    fn bare_send_recv_and_lookalikes_are_not_collectives() {
        // mpsc channel sends, `send_recv`-shaped identifiers that keep
        // going, and uncalled mentions must not trip the census.
        let src = concat!(
            "fn f(tx: &Sender<u8>, rx: &Receiver<u8>) {\n",
            "    tx.send(1).ok();\n",
            "    let _ = rx.recv();\n",
            "    self.all_gather_bytes();\n",
            "    let g = comm.all_gather;\n",
            "}\n"
        );
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn collectives_in_tests_and_docs_are_skipped() {
        let src = concat!(
            "/// `comm.all_reduce(x, f)` sums across ranks.\n",
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { comm.all_to_all(vec![]).unwrap(); }\n",
            "}\n"
        );
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn allowlist_roundtrip_and_ratchet() {
        let findings = vec![
            Finding {
                file: "a.rs".into(),
                rule: Rule::Unwrap,
                line: 3,
            },
            Finding {
                file: "a.rs".into(),
                rule: Rule::Unwrap,
                line: 9,
            },
            Finding {
                file: "b.rs".into(),
                rule: Rule::Index,
                line: 1,
            },
        ];
        let allow = Allowlist::from_findings(&findings);
        let reparsed = Allowlist::parse(&allow.render()).unwrap();
        assert_eq!(allow, reparsed);
        assert!(reconcile(&findings, &allow).is_empty());

        // Over budget fails…
        let mut more = findings.clone();
        more.push(Finding {
            file: "b.rs".into(),
            rule: Rule::Index,
            line: 7,
        });
        let over = reconcile(&more, &allow);
        assert_eq!(over.len(), 1);
        assert!(over[0].to_string().contains("budget 1"));

        // …and so does under budget (the ratchet).
        let fewer = &findings[..2];
        let under = reconcile(fewer, &allow);
        assert_eq!(under.len(), 1);
        assert!(under[0].to_string().contains("ratchet"));
    }

    #[test]
    fn allowlist_rejects_zero_budgets_and_junk() {
        assert!(Allowlist::parse("a.rs unwrap 0").is_err());
        assert!(Allowlist::parse("a.rs nonsense 1").is_err());
        assert!(Allowlist::parse("a.rs unwrap").is_err());
        assert!(Allowlist::parse("# comment\n\na.rs unwrap 2\n").is_ok());
    }
}
