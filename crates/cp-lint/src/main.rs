//! CI entry point: lints the communication-critical crates against the
//! committed ratchet file.
//!
//! ```text
//! cargo run -p cp-lint              # check against cp-lint.allow
//! cargo run -p cp-lint -- --update  # rewrite cp-lint.allow from findings
//! cargo run -p cp-lint -- --list    # print every finding
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cp_lint::{reconcile, rust_files, scan_file, Allowlist, Finding};

/// Source trees the lint covers: a panic in any of these wedges the ring.
const TARGETS: [&str; 3] = [
    "crates/cp-comm/src",
    "crates/cp-core/src",
    "crates/cp-attention/src",
];

const ALLOW_FILE: &str = "cp-lint.allow";

fn workspace_root() -> PathBuf {
    // crates/cp-lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_findings(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for target in TARGETS {
        let dir = root.join(target);
        let files = rust_files(&dir).map_err(|e| format!("cannot walk {}: {e}", dir.display()))?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(scan_file(&path, &rel).map_err(|e| format!("cannot read {rel}: {e}"))?);
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let list = args.iter().any(|a| a == "--list");
    if let Some(bad) = args.iter().find(|a| *a != "--update" && *a != "--list") {
        eprintln!("unknown argument {bad}; usage: cp-lint [--update] [--list]");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let findings = match collect_findings(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cp-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if list {
        for f in &findings {
            println!("{}:{}: {}", f.file, f.line, f.rule);
        }
    }

    let allow_path = root.join(ALLOW_FILE);
    if update {
        let allow = Allowlist::from_findings(&findings);
        if let Err(e) = std::fs::write(&allow_path, allow.render()) {
            eprintln!("cp-lint: cannot write {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "cp-lint: wrote {} ({} budget entries, {} findings)",
            allow_path.display(),
            allow.budgets.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cp-lint: {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("cp-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };

    let errors = reconcile(&findings, &allow);
    if errors.is_empty() {
        println!(
            "cp-lint: clean — {} findings across {} target trees, all within the ratchet",
            findings.len(),
            TARGETS.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("cp-lint: {e}");
        }
        ExitCode::FAILURE
    }
}
