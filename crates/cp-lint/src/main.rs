//! CI entry point: lints the workspace against the committed ratchet
//! file. Panic rules (index/unwrap/expect) apply to the
//! communication-critical crates; the undeclared-collective census
//! applies to every crate.
//!
//! ```text
//! cargo run -p cp-lint              # check against cp-lint.allow
//! cargo run -p cp-lint -- --update  # rewrite cp-lint.allow from findings
//! cargo run -p cp-lint -- --list    # print every finding
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cp_lint::{reconcile, rust_files, scan_file, Allowlist, Finding, Rule};

/// Source trees the panic rules cover: a panic in any of these wedges the
/// ring. The collective census is not limited to this list — it walks
/// every `crates/*/src` tree, because a collective issued anywhere must
/// have a declared plan.
const PANIC_TARGETS: [&str; 3] = [
    "crates/cp-comm/src",
    "crates/cp-core/src",
    "crates/cp-attention/src",
];

const ALLOW_FILE: &str = "cp-lint.allow";

fn workspace_root() -> PathBuf {
    // crates/cp-lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Every `crates/*/src` tree in the workspace, sorted for determinism.
fn workspace_src_trees(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut trees = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let src = path.join("src");
        if src.is_dir() {
            trees.push(src);
        }
    }
    trees.sort();
    Ok(trees)
}

fn collect_findings(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for dir in workspace_src_trees(root)? {
        let files = rust_files(&dir).map_err(|e| format!("cannot walk {}: {e}", dir.display()))?;
        let panic_rules_apply = PANIC_TARGETS.iter().any(|target| {
            dir.strip_prefix(root)
                .is_ok_and(|rel| rel == Path::new(target))
        });
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let hits = scan_file(&path, &rel).map_err(|e| format!("cannot read {rel}: {e}"))?;
            findings.extend(
                hits.into_iter()
                    .filter(|f| panic_rules_apply || f.rule == Rule::Collective),
            );
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let list = args.iter().any(|a| a == "--list");
    if let Some(bad) = args.iter().find(|a| *a != "--update" && *a != "--list") {
        eprintln!("unknown argument {bad}; usage: cp-lint [--update] [--list]");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let findings = match collect_findings(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cp-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if list {
        for f in &findings {
            println!("{}:{}: {}", f.file, f.line, f.rule);
        }
    }

    let allow_path = root.join(ALLOW_FILE);
    if update {
        let allow = Allowlist::from_findings(&findings);
        if let Err(e) = std::fs::write(&allow_path, allow.render()) {
            eprintln!("cp-lint: cannot write {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "cp-lint: wrote {} ({} budget entries, {} findings)",
            allow_path.display(),
            allow.budgets.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cp-lint: {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("cp-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };

    let errors = reconcile(&findings, &allow);
    if errors.is_empty() {
        println!(
            "cp-lint: clean — {} findings (panic + collective census), all within the ratchet",
            findings.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("cp-lint: {e}");
        }
        ExitCode::FAILURE
    }
}
