//! Transformer architecture configuration.

use cp_attention::GqaShape;

/// Architecture of a [`crate::Transformer`].
///
/// Mirrors the Llama3 family's structure (Table 9) at configurable scale:
/// `n_layers` blocks of {RMSNorm, GQA attention with RoPE, RMSNorm,
/// SwiGLU FFN}, tied around residual connections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerConfig {
    /// Attention head configuration.
    pub shape: GqaShape,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// SwiGLU intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size for the deterministic embedding.
    pub vocab: u32,
    /// RoPE base frequency (Llama3 uses 500000; tiny models use 10000).
    pub rope_base: f32,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
}

impl TransformerConfig {
    /// A small but structurally faithful config for exactness tests:
    /// 2 layers, 4 query heads over 2 KV heads, model dim 32.
    pub fn tiny() -> Self {
        TransformerConfig {
            shape: GqaShape::new(4, 2, 8).expect("static config is valid"),
            n_layers: 2,
            ffn_dim: 48,
            vocab: 256,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
        }
    }

    /// A slightly larger config exercising deeper stacks and MQA-style
    /// grouping (8 query heads on 2 KV heads).
    pub fn small() -> Self {
        TransformerConfig {
            shape: GqaShape::new(8, 2, 16).expect("static config is valid"),
            n_layers: 4,
            ffn_dim: 256,
            vocab: 1024,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
        }
    }

    /// Model (hidden) dimension `D = N_H * D_H`.
    pub fn model_dim(&self) -> usize {
        self.shape.model_dim()
    }

    /// Dimension of the packed KV projection output (`N_KV * D_H`).
    pub fn kv_dim(&self) -> usize {
        self.shape.n_kv_heads() * self.shape.head_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for c in [TransformerConfig::tiny(), TransformerConfig::small()] {
            assert_eq!(c.model_dim(), c.shape.n_heads() * c.shape.head_dim());
            assert!(c.kv_dim() <= c.model_dim());
            assert!(c.n_layers >= 1);
            assert!(c.vocab > 0);
        }
    }

    #[test]
    fn tiny_dims() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.model_dim(), 32);
        assert_eq!(c.kv_dim(), 16);
    }
}
