//! The context-parallel transformer forward pass: the paper's execution
//! structure end to end.
//!
//! Each CP rank runs the **entire layer stack** on its load-balanced token
//! shard; ring pass-KV attention is the only cross-rank operation per
//! layer (linear layers, norms, RoPE and FFNs are all token-local). This
//! is exactly how the production system executes — and why CP's
//! communication volume is one KV SendRecv per block versus TP's two
//! activation AllReduces (Table 2).

use cp_attention::PAD;
use cp_comm::{CheckedFabric, CommPlan, Communicator, TrafficReport};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_q_prefill, run_ring};
use cp_core::schedule::{pass_kv_plan, pass_q_plan, run_ring_checked, stacked_plan};
use cp_core::{CoreError, LocalSeq, RingMsg};
use cp_perf::RingVariant;
use cp_sharding::ShardPlan;
use cp_tensor::Tensor;

use crate::layers::rms_norm;
use crate::rope::apply_rope;
use crate::Transformer;

/// Runs the distributed forward on explicit per-rank shards.
///
/// `shards[r] = (tokens, positions)` is rank `r`'s slice of the sequence;
/// positions are global. Returns per-rank final activations (rows in the
/// rank's position order) plus the fabric traffic.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] for empty/ragged shard structures;
/// propagates layer and communication failures.
pub fn cp_forward_sharded(
    model: &Transformer,
    shards: &[(Vec<u32>, Vec<usize>)],
) -> Result<(Vec<Tensor>, TrafficReport), CoreError> {
    cp_forward_sharded_with(model, shards, RingVariant::PassKv)
}

/// [`cp_forward_sharded`] with an explicit ring variant per layer
/// (pass-KV or pass-Q — both exact; the choice only moves communication).
///
/// # Errors
///
/// Same conditions as [`cp_forward_sharded`].
pub fn cp_forward_sharded_with(
    model: &Transformer,
    shards: &[(Vec<u32>, Vec<usize>)],
    variant: RingVariant,
) -> Result<(Vec<Tensor>, TrafficReport), CoreError> {
    let (n, ring_len) = validate_shards(shards)?;
    let (outputs, traffic) = run_ring(n, |comm| {
        forward_body(model, shards, ring_len, variant, comm)
    })?;
    Ok((outputs, traffic))
}

/// Validates the shard structure and returns `(world, ring_len)` where
/// `ring_len` is the §3.5.2 padding target (all ranks exchange equal-sized
/// KV messages).
fn validate_shards(shards: &[(Vec<u32>, Vec<usize>)]) -> Result<(usize, usize), CoreError> {
    let n = shards.len();
    if n == 0 {
        return Err(CoreError::BadRequest {
            reason: "cp_forward needs at least one rank".to_string(),
        });
    }
    for (tokens, positions) in shards {
        if tokens.len() != positions.len() {
            return Err(CoreError::BadRequest {
                reason: format!(
                    "rank shard has {} tokens but {} positions",
                    tokens.len(),
                    positions.len()
                ),
            });
        }
    }
    let ring_len = shards.iter().map(|(t, _)| t.len()).max().unwrap_or(0);
    Ok((n, ring_len))
}

/// One rank's full layer-stack forward: token-local projections, norms,
/// RoPE and FFNs, with one cross-rank ring attention per layer.
fn forward_body(
    model: &Transformer,
    shards: &[(Vec<u32>, Vec<usize>)],
    ring_len: usize,
    variant: RingVariant,
    comm: &Communicator<RingMsg>,
) -> Result<Tensor, CoreError> {
    let config = *model.config();
    let params = *model.attention_params();
    let (tokens, positions) = &shards[comm.rank()];
    let t_local = tokens.len();
    let dh = config.shape.head_dim();
    let mut x = model.embed(tokens);
    for block in model.blocks() {
        // Token-local attention sub-block up to the QKV projections.
        let h = rms_norm(&x, config.norm_eps)?;
        let mut q = block
            .wq
            .forward(&h)?
            .reshape(&[t_local, config.shape.n_heads(), dh])?;
        let mut k = block
            .wk
            .forward(&h)?
            .reshape(&[t_local, config.shape.n_kv_heads(), dh])?;
        let v = block
            .wv
            .forward(&h)?
            .reshape(&[t_local, config.shape.n_kv_heads(), dh])?;
        // RoPE at *global* positions — the step naive sharding breaks.
        apply_rope(&mut q, positions, config.rope_base)?;
        apply_rope(&mut k, positions, config.rope_base)?;

        // Cross-rank ring attention, padded to equal lengths.
        let mut kv_pos = positions.clone();
        kv_pos.resize(ring_len, PAD);
        let local = LocalSeq {
            q,
            q_pos: positions.clone(),
            k: k.pad_dim0(ring_len, 0.0)?,
            v: v.pad_dim0(ring_len, 0.0)?,
            kv_pos,
        };
        let attn = match variant {
            RingVariant::PassKv => {
                ring_pass_kv_prefill(comm, &params, std::slice::from_ref(&local))?
            }
            RingVariant::PassQ => ring_pass_q_prefill(comm, &params, std::slice::from_ref(&local))?,
        }
        .pop()
        .expect("one sequence in, one out");
        let attn_flat = attn.out.reshape(&[t_local, config.model_dim()])?;
        x.add_assign(&block.wo.forward(&attn_flat)?)?;

        // Token-local FFN sub-block.
        let h = rms_norm(&x, config.norm_eps)?;
        x.add_assign(&block.ffn.forward(&h)?)?;
    }
    rms_norm(&x, config.norm_eps)
}

/// Declares the full-stack forward schedule: the per-layer ring plan (built
/// from zero-tensor skeletons with exactly the geometry [`forward_body`]
/// puts on the wire, including §3.5.2 padding) stacked `n_layers` times.
/// Plans depend only on shapes, never values.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] for empty/ragged shard structures.
pub fn forward_plan(
    model: &Transformer,
    shards: &[(Vec<u32>, Vec<usize>)],
    variant: RingVariant,
) -> Result<CommPlan, CoreError> {
    let (_, ring_len) = validate_shards(shards)?;
    let config = *model.config();
    let params = *model.attention_params();
    let shape = config.shape;
    let dh = shape.head_dim();
    let locals: Vec<Vec<LocalSeq>> = shards
        .iter()
        .map(|(tokens, positions)| {
            let mut kv_pos = positions.clone();
            kv_pos.resize(ring_len, PAD);
            vec![LocalSeq {
                q: Tensor::zeros(&[tokens.len(), shape.n_heads(), dh]),
                q_pos: positions.clone(),
                k: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                v: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                kv_pos,
            }]
        })
        .collect();
    let layer_plan = match variant {
        RingVariant::PassKv => pass_kv_plan(&locals)?,
        RingVariant::PassQ => pass_q_plan(&params, &locals)?,
    };
    Ok(stacked_plan(layer_plan, config.n_layers))
}

/// [`cp_forward_sharded_with`] under a [`CheckedFabric`] enforcing
/// [`forward_plan`]: every collective any layer issues is validated
/// against the declared schedule at runtime, and each rank must drain its
/// plan exactly.
///
/// # Errors
///
/// Same conditions as [`cp_forward_sharded_with`], plus
/// [`cp_comm::CommError::PlanViolation`] (wrapped in [`CoreError::Comm`])
/// when live traffic diverges from the declared plan.
pub fn cp_forward_sharded_checked(
    model: &Transformer,
    shards: &[(Vec<u32>, Vec<usize>)],
    variant: RingVariant,
) -> Result<(Vec<Tensor>, TrafficReport), CoreError> {
    let (_, ring_len) = validate_shards(shards)?;
    let plan = forward_plan(model, shards, variant)?;
    let fabric = CheckedFabric::new(plan);
    run_ring_checked(&fabric, |comm| {
        forward_body(model, shards, ring_len, variant, comm)
    })
}

/// Runs the full context-parallel forward of `tokens` over `n_ranks`
/// ranks with load-balanced sharding, returning activations `[t, D]` in
/// the original token order — numerically equal to
/// [`Transformer::forward`].
///
/// # Errors
///
/// Propagates sharding, layer and communication failures.
pub fn cp_forward(
    model: &Transformer,
    tokens: &[u32],
    n_ranks: usize,
) -> Result<(Tensor, TrafficReport), CoreError> {
    let plan = ShardPlan::new(tokens.len(), n_ranks)?;
    let shards: Vec<(Vec<u32>, Vec<usize>)> = (0..n_ranks)
        .map(|r| {
            let positions = plan.positions_for(r);
            let toks = positions.iter().map(|&p| tokens[p]).collect();
            (toks, positions)
        })
        .collect();
    let (outputs, traffic) = cp_forward_sharded(model, &shards)?;

    let d = model.config().model_dim();
    let mut out = Tensor::zeros(&[tokens.len(), d]);
    for (r, rank_out) in outputs.iter().enumerate() {
        for (row, &pos) in shards[r].1.iter().enumerate() {
            out.row_mut(pos).copy_from_slice(rank_out.row(row));
        }
    }
    Ok((out, traffic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransformerConfig;

    #[test]
    fn distributed_equals_single_device_tiny() {
        let model = Transformer::new(&TransformerConfig::tiny(), 11);
        let tokens: Vec<u32> = (0..40).map(|i| i * 3 % 100).collect();
        let reference = model.forward(&tokens).unwrap();
        for n in [1usize, 2, 3, 4] {
            let (out, _) = cp_forward(&model, &tokens, n).unwrap();
            assert!(
                out.approx_eq(&reference, 2e-3).unwrap(),
                "n={n}: max diff {}",
                out.max_abs_diff(&reference).unwrap()
            );
        }
    }

    #[test]
    fn distributed_equals_single_device_deeper_model() {
        let model = Transformer::new(&TransformerConfig::small(), 5);
        let tokens: Vec<u32> = (0..33).collect(); // odd length: padding path
        let reference = model.forward(&tokens).unwrap();
        let (out, traffic) = cp_forward(&model, &tokens, 4).unwrap();
        assert!(
            out.approx_eq(&reference, 3e-3).unwrap(),
            "max diff {}",
            out.max_abs_diff(&reference).unwrap()
        );
        // One KV ring per layer: traffic scales with layer count.
        assert!(traffic.send_recv_bytes > 0);
        assert_eq!(traffic.all_to_all_bytes, 0);
    }

    #[test]
    fn traffic_is_one_kv_ring_per_layer() {
        let config = TransformerConfig::tiny();
        let model = Transformer::new(&config, 3);
        let n = 4;
        let t = 32; // divisible by 2N: ring_len = t/n
        let tokens: Vec<u32> = (0..t as u32).collect();
        let (_, traffic) = cp_forward(&model, &tokens, n).unwrap();
        let ring_len = t / n;
        let per_msg = 2 * ring_len * config.kv_dim() * 4; // K+V, f32
        let expected = config.n_layers * n * (n - 1) * per_msg;
        assert_eq!(traffic.send_recv_bytes, expected);
    }

    #[test]
    fn single_rank_has_no_traffic() {
        let model = Transformer::new(&TransformerConfig::tiny(), 9);
        let tokens: Vec<u32> = (0..12).collect();
        let (out, traffic) = cp_forward(&model, &tokens, 1).unwrap();
        assert_eq!(traffic.total_bytes(), 0);
        assert!(out
            .approx_eq(&model.forward(&tokens).unwrap(), 1e-5)
            .unwrap());
    }

    #[test]
    fn checked_forward_matches_unchecked_and_declared_plan() {
        let model = Transformer::new(&TransformerConfig::tiny(), 11);
        let tokens: Vec<u32> = (0..21).collect(); // odd: padding path
        let plan = ShardPlan::new(tokens.len(), 3).unwrap();
        let shards: Vec<(Vec<u32>, Vec<usize>)> = (0..3)
            .map(|r| {
                let positions = plan.positions_for(r);
                let toks = positions.iter().map(|&p| tokens[p]).collect();
                (toks, positions)
            })
            .collect();
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            let (plain, plain_traffic) = cp_forward_sharded_with(&model, &shards, variant).unwrap();
            let (checked, traffic) = cp_forward_sharded_checked(&model, &shards, variant).unwrap();
            for (a, b) in plain.iter().zip(&checked) {
                assert!(a.approx_eq(b, 0.0).unwrap(), "{variant:?}: outputs diverge");
            }
            // Timing fields are nondeterministic; compare the volume counters.
            assert_eq!(plain_traffic.messages, traffic.messages);
            assert_eq!(plain_traffic.send_recv_bytes, traffic.send_recv_bytes);
            assert_eq!(plain_traffic.all_to_all_bytes, traffic.all_to_all_bytes);
            assert_eq!(plain_traffic.all_gather_bytes, traffic.all_gather_bytes);
            // The declared full-stack plan predicts the live traffic exactly.
            let declared = forward_plan(&model, &shards, variant).unwrap();
            let report = declared.predicted_traffic().check_report(&traffic);
            assert!(report.is_ok(), "{variant:?}: {report:?}");
        }
    }

    #[test]
    fn empty_and_ragged_inputs() {
        let model = Transformer::new(&TransformerConfig::tiny(), 2);
        assert!(cp_forward_sharded(&model, &[]).is_err());
        let ragged = vec![(vec![1u32, 2], vec![0usize])];
        assert!(cp_forward_sharded(&model, &ragged).is_err());
        // More ranks than tokens works (some ranks idle).
        let tokens = [1u32, 2];
        let reference = model.forward(&tokens).unwrap();
        let (out, _) = cp_forward(&model, &tokens, 4).unwrap();
        assert!(out.approx_eq(&reference, 1e-4).unwrap());
    }
}
