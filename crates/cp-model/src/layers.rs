//! Transformer building blocks: linear layers, RMSNorm and SwiGLU.

use cp_core::CoreError;
use cp_pool::ComputePool;
use cp_tensor::{
    gemm_wants_parallel, matmul_packed, matmul_packed_on, DetRng, PackedGemmB, Tensor,
};

/// A dense linear layer `y = x W`, weights `[in_dim, out_dim]`.
///
/// Weights are drawn deterministically from a seed and scaled by
/// `1/sqrt(in_dim)` so activations stay O(1) through deep stacks —
/// adequate stand-ins for trained weights, since context parallelism is
/// agnostic to the values.
///
/// The weight is packed once at construction ([`PackedGemmB`]) so every
/// forward pass — across all tokens served — reuses the tiled panel
/// layout. All forward paths are bit-identical to the naive
/// `matmul(x, weight)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Tensor,
    packed: PackedGemmB,
}

/// Packs a rank-2 weight, panicking never: callers validated rank already.
fn pack_weight(weight: &Tensor) -> Result<PackedGemmB, CoreError> {
    PackedGemmB::pack(weight).map_err(|e| CoreError::BadRequest {
        reason: format!("linear weight not packable: {e}"),
    })
}

impl Linear {
    /// Creates a layer with deterministic pseudo-random weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let scale = 1.0 / (in_dim as f32).sqrt();
        let mut rng = DetRng::new(seed);
        let weight = Tensor::from_fn(&[in_dim, out_dim], |_| rng.next_signed() * scale);
        let packed = PackedGemmB::pack(&weight).expect("rank-2 weight is packable");
        Linear { weight, packed }
    }

    /// Wraps an explicit weight matrix `[in_dim, out_dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `weight` is not rank 2.
    pub fn from_weight(weight: Tensor) -> Result<Self, CoreError> {
        if weight.rank() != 2 {
            return Err(CoreError::BadRequest {
                reason: format!("linear weight must be rank 2, got {:?}", weight.shape()),
            });
        }
        let packed = pack_weight(&weight)?;
        Ok(Linear { weight, packed })
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Applies the layer to `x` of shape `[t, in_dim]` on the serial tiled
    /// kernel (bit-identical to the naive `matmul` against the weight).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x` has the wrong inner dimension.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        Ok(matmul_packed(x, &self.packed)?)
    }

    /// Applies the layer via the naive triple-loop `matmul` against the
    /// unpacked weight — the audit-reference path. Bit-identical to
    /// [`Linear::forward`]; used as the A-side of the cp-bench GEMM
    /// end-to-end A/B and by bit-identity tests.
    ///
    /// # Errors
    ///
    /// As [`Linear::forward`].
    pub fn forward_naive(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        Ok(cp_tensor::matmul(x, &self.weight)?)
    }

    /// Applies the layer with row-band parallelism on `pool` when the
    /// GEMM is large enough to amortise dispatch (crossover heuristic),
    /// falling back to the serial tiled kernel otherwise. Bit-identical to
    /// [`Linear::forward`] either way.
    ///
    /// # Errors
    ///
    /// As [`Linear::forward`].
    pub fn forward_on(&self, pool: &ComputePool, x: &Tensor) -> Result<Tensor, CoreError> {
        let m = if x.rank() == 2 { x.shape()[0] } else { 0 };
        if pool.parallelism() > 1 && gemm_wants_parallel(m, self.in_dim(), self.out_dim()) {
            Ok(matmul_packed_on(pool, x, &self.packed)?)
        } else {
            self.forward(x)
        }
    }

    /// Splits the layer column-wise into `n` shards (output dimension),
    /// for tensor-parallel column parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `out_dim` is not divisible by
    /// `n`.
    pub fn split_columns(&self, n: usize) -> Result<Vec<Linear>, CoreError> {
        let (in_dim, out_dim) = (self.in_dim(), self.out_dim());
        if n == 0 || out_dim % n != 0 {
            return Err(CoreError::BadRequest {
                reason: format!("cannot split {out_dim} columns into {n} shards"),
            });
        }
        let cols = out_dim / n;
        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let mut w = Tensor::zeros(&[in_dim, cols]);
            for i in 0..in_dim {
                let src = &self.weight.row(i)[s * cols..(s + 1) * cols];
                w.row_mut(i).copy_from_slice(src);
            }
            let packed = pack_weight(&w)?;
            shards.push(Linear { weight: w, packed });
        }
        Ok(shards)
    }

    /// Splits the layer row-wise into `n` shards (input dimension), for
    /// tensor-parallel row parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `in_dim` is not divisible by
    /// `n`.
    pub fn split_rows(&self, n: usize) -> Result<Vec<Linear>, CoreError> {
        let in_dim = self.in_dim();
        if n == 0 || !in_dim.is_multiple_of(n) {
            return Err(CoreError::BadRequest {
                reason: format!("cannot split {in_dim} rows into {n} shards"),
            });
        }
        let rows = in_dim / n;
        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let w = self.weight.slice_dim0(s * rows..(s + 1) * rows)?;
            let packed = pack_weight(&w)?;
            shards.push(Linear { weight: w, packed });
        }
        Ok(shards)
    }
}

/// Root-mean-square layer normalisation (no learned gain — deterministic
/// substitute), `x / sqrt(mean(x^2) + eps)` per row of `[t, d]`.
///
/// # Errors
///
/// Returns a rank error for non-rank-2 input.
pub fn rms_norm(x: &Tensor, eps: f32) -> Result<Tensor, CoreError> {
    if x.rank() != 2 {
        return Err(CoreError::BadRequest {
            reason: format!("rms_norm expects rank-2 input, got {:?}", x.shape()),
        });
    }
    let d = x.shape()[1] as f32;
    let mut out = x.clone();
    for i in 0..out.dim0() {
        let row = out.row_mut(i);
        rms_norm_row(row, d, eps);
    }
    Ok(out)
}

/// Normalises one row in place (shared by the serial and pooled paths so
/// they stay bit-identical by construction).
fn rms_norm_row(row: &mut [f32], d: f32, eps: f32) {
    let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d;
    let inv = 1.0 / (ms + eps).sqrt();
    for v in row {
        *v *= inv;
    }
}

/// [`rms_norm`] with rows fanned out across `pool`. Rows are normalised
/// independently, so the result is bit-identical to the serial path for
/// any pool size; small inputs stay serial.
///
/// # Errors
///
/// As [`rms_norm`].
pub fn rms_norm_on(pool: &ComputePool, x: &Tensor, eps: f32) -> Result<Tensor, CoreError> {
    if x.rank() != 2 {
        return Err(CoreError::BadRequest {
            reason: format!("rms_norm expects rank-2 input, got {:?}", x.shape()),
        });
    }
    let (t, dim) = (x.shape()[0], x.shape()[1]);
    let workers = pool.parallelism();
    if workers <= 1 || t * dim < 1 << 14 {
        return rms_norm(x, eps);
    }
    let d = dim as f32;
    let mut out = x.clone();
    let band = t.div_ceil(workers) * dim;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .as_mut_slice()
        .chunks_mut(band.max(dim))
        .map(|rows| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for row in rows.chunks_mut(dim) {
                    rms_norm_row(row, d, eps);
                }
            });
            job
        })
        .collect();
    pool.run(jobs);
    Ok(out)
}

/// SwiGLU feed-forward: `down( silu(x W_gate) * (x W_up) )`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwiGlu {
    /// Gate projection `[d, ffn]`.
    pub gate: Linear,
    /// Up projection `[d, ffn]`.
    pub up: Linear,
    /// Down projection `[ffn, d]`.
    pub down: Linear,
}

impl SwiGlu {
    /// Creates a SwiGLU block with deterministic weights.
    pub fn new(model_dim: usize, ffn_dim: usize, seed: u64) -> Self {
        SwiGlu {
            gate: Linear::new(model_dim, ffn_dim, seed.wrapping_mul(3).wrapping_add(1)),
            up: Linear::new(model_dim, ffn_dim, seed.wrapping_mul(3).wrapping_add(2)),
            down: Linear::new(ffn_dim, model_dim, seed.wrapping_mul(3).wrapping_add(3)),
        }
    }

    /// Applies the block to `[t, d]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the projections.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        let mut g = self.gate.forward(x)?.map(silu);
        let u = self.up.forward(x)?;
        g.mul_assign(&u)?;
        self.down.forward(&g)
    }

    /// Applies the block with every projection on the naive reference
    /// GEMM; bit-identical to [`SwiGlu::forward`]. A-side of the cp-bench
    /// GEMM end-to-end A/B.
    ///
    /// # Errors
    ///
    /// As [`SwiGlu::forward`].
    pub fn forward_naive(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        let mut g = self.gate.forward_naive(x)?.map(silu);
        let u = self.up.forward_naive(x)?;
        g.mul_assign(&u)?;
        self.down.forward_naive(&g)
    }

    /// Applies the block with the three projections row-band parallel on
    /// `pool`; bit-identical to [`SwiGlu::forward`].
    ///
    /// # Errors
    ///
    /// As [`SwiGlu::forward`].
    pub fn forward_on(&self, pool: &ComputePool, x: &Tensor) -> Result<Tensor, CoreError> {
        let mut g = self.gate.forward_on(pool, x)?.map(silu);
        let u = self.up.forward_on(pool, x)?;
        g.mul_assign(&u)?;
        self.down.forward_on(pool, &g)
    }
}

/// The SiLU (swish) activation `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::DetRng;

    #[test]
    fn linear_forward_shape_and_determinism() {
        let l1 = Linear::new(8, 12, 5);
        let l2 = Linear::new(8, 12, 5);
        assert_eq!(l1, l2);
        assert_ne!(l1, Linear::new(8, 12, 6));
        let x = DetRng::new(1).tensor(&[3, 8]);
        let y = l1.forward(&x).unwrap();
        assert_eq!(y.shape(), &[3, 12]);
        assert!(l1.forward(&DetRng::new(1).tensor(&[3, 9])).is_err());
    }

    #[test]
    fn column_split_concatenates_to_full_output() {
        let l = Linear::new(6, 8, 9);
        let x = DetRng::new(2).tensor(&[4, 6]);
        let full = l.forward(&x).unwrap();
        let shards = l.split_columns(4).unwrap();
        // Concatenating per-shard outputs column-wise rebuilds the output.
        let mut rebuilt = Tensor::zeros(&[4, 8]);
        for (s, shard) in shards.iter().enumerate() {
            let part = shard.forward(&x).unwrap();
            for t in 0..4 {
                rebuilt.row_mut(t)[s * 2..(s + 1) * 2].copy_from_slice(part.row(t));
            }
        }
        assert!(rebuilt.approx_eq(&full, 1e-5).unwrap());
        assert!(l.split_columns(3).is_err());
        assert!(l.split_columns(0).is_err());
    }

    #[test]
    fn row_split_sums_to_full_output() {
        let l = Linear::new(6, 8, 10);
        let x = DetRng::new(3).tensor(&[4, 6]);
        let full = l.forward(&x).unwrap();
        let shards = l.split_rows(3).unwrap();
        // Row parallelism: x is split on the inner dim; outputs sum.
        let mut acc = Tensor::zeros(&[4, 8]);
        for (s, shard) in shards.iter().enumerate() {
            let mut xs = Tensor::zeros(&[4, 2]);
            for t in 0..4 {
                xs.row_mut(t).copy_from_slice(&x.row(t)[s * 2..(s + 1) * 2]);
            }
            acc.add_assign(&shard.forward(&xs).unwrap()).unwrap();
        }
        assert!(acc.approx_eq(&full, 1e-5).unwrap());
        assert!(l.split_rows(4).is_err());
    }

    #[test]
    fn from_weight_validates_rank() {
        assert!(Linear::from_weight(Tensor::zeros(&[2, 3])).is_ok());
        assert!(Linear::from_weight(Tensor::zeros(&[2, 3, 4])).is_err());
    }

    #[test]
    fn rms_norm_unit_scale() {
        // A row of constant c normalises to ±1 (up to eps).
        let x = Tensor::from_vec(vec![3.0, 3.0, -2.0, 2.0], &[2, 2]).unwrap();
        let y = rms_norm(&x, 1e-6).unwrap();
        assert!((y.at(&[0, 0]).unwrap() - 1.0).abs() < 1e-4);
        assert!((y.at(&[1, 0]).unwrap() + 1.0).abs() < 1e-4);
        // Per-row RMS of the output is 1.
        for i in 0..2 {
            let rms: f32 = (y.row(i).iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-4);
        }
        assert!(rms_norm(&Tensor::zeros(&[2]), 1e-6).is_err());
    }

    #[test]
    fn rms_norm_handles_zero_rows() {
        let x = Tensor::zeros(&[1, 4]);
        let y = rms_norm(&x, 1e-5).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.99);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn swiglu_forward_shape_and_determinism() {
        let ffn = SwiGlu::new(8, 16, 7);
        let x = DetRng::new(4).tensor(&[5, 8]);
        let y = ffn.forward(&x).unwrap();
        assert_eq!(y.shape(), &[5, 8]);
        assert_eq!(y, SwiGlu::new(8, 16, 7).forward(&x).unwrap());
        // Token-wise: FFN of each row independent of other rows.
        let row0 = x.slice_dim0(0..1).unwrap();
        let y0 = ffn.forward(&row0).unwrap();
        assert!(y0.approx_eq(&y.slice_dim0(0..1).unwrap(), 1e-6).unwrap());
    }
}
