//! A numeric GQA transformer substrate with context-parallel and
//! tensor-parallel distributed forward passes.
//!
//! The paper's system serves Llama3 405B — a dense transformer of RMSNorm,
//! GQA attention with rotary position embeddings, and SwiGLU FFNs — with
//! tokens sharded across CP ranks and weights sharded TP within each node.
//! This crate builds that substrate numerically (at laptop scale) so the
//! *whole model forward*, not just one attention layer, can be verified
//! exact under context parallelism:
//!
//! * [`TransformerConfig`] / [`Transformer`] — a deterministic multi-layer
//!   GQA transformer (single-device reference),
//! * [`rope`] — rotary embeddings applied at **global** token positions,
//!   the part load-balanced sharding could silently break (each CP rank
//!   holds non-contiguous positions),
//! * [`cp_forward`] — the context-parallel forward: every rank runs the
//!   full layer stack on its token shard, with ring pass-KV attention as
//!   the only cross-rank operation per layer — exactly the paper's
//!   execution structure,
//! * [`tp`] — numeric column/row-parallel linear layers with AllGather /
//!   AllReduce, verifying Table 2's tensor-parallel communication
//!   accounting on real bytes.
//!
//! # Example
//!
//! ```
//! use cp_model::{cp_forward, Transformer, TransformerConfig};
//!
//! # fn main() -> Result<(), cp_core::CoreError> {
//! let config = TransformerConfig::tiny();
//! let model = Transformer::new(&config, 7);
//! let tokens: Vec<u32> = (0..24).collect();
//! let reference = model.forward(&tokens)?;
//! let (distributed, _traffic) = cp_forward(&model, &tokens, 3)?;
//! assert!(distributed.approx_eq(&reference, 1e-3).unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod distributed;
mod layers;
pub mod rope;
pub mod tp;
mod transformer;

pub use config::TransformerConfig;
pub use distributed::{
    cp_forward, cp_forward_sharded, cp_forward_sharded_checked, cp_forward_sharded_with,
    forward_plan,
};
pub use layers::{rms_norm, rms_norm_on, silu, Linear, SwiGlu};
pub use transformer::{Block, Transformer};

/// Maps a model-layer failure into the fabric's error type so rank
/// closures (which must return `Result<_, CommError>`) can propagate it;
/// see `cp_core::ring::run_ring` for the engine-side equivalent. The
/// failing `rank` plus the original error's kind and message ride along
/// instead of flattening into an anonymous panic.
pub(crate) fn to_comm_error(rank: usize, e: cp_core::CoreError) -> cp_comm::CommError {
    match e {
        cp_core::CoreError::Comm(c) => c,
        other => cp_comm::CommError::RankFailed {
            rank,
            kind: other.kind(),
            detail: other.to_string(),
        },
    }
}
