//! Rotary position embeddings (RoPE) applied at global token positions.
//!
//! RoPE rotates each head's (2i, 2i+1) coordinate pairs by an angle
//! proportional to the token's **absolute position**. Under load-balanced
//! context-parallel sharding a rank owns *non-contiguous* positions, so a
//! naive "rotate by local index" implementation would be silently wrong —
//! which is why this module takes explicit position arrays everywhere and
//! why the distributed-forward exactness tests would catch any such bug.

use cp_core::CoreError;
use cp_tensor::Tensor;

/// Applies RoPE in place to a `[t, n_heads, head_dim]` tensor, rotating
/// token `i` by its global position `positions[i]`.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] if the tensor is not rank 3, the
/// head dim is odd, or `positions.len()` differs from the token count.
pub fn apply_rope(x: &mut Tensor, positions: &[usize], base: f32) -> Result<(), CoreError> {
    let shape = x.shape().to_vec();
    if shape.len() != 3 {
        return Err(CoreError::BadRequest {
            reason: format!("rope expects [t, heads, head_dim], got {shape:?}"),
        });
    }
    let (t, heads, dh) = (shape[0], shape[1], shape[2]);
    if dh % 2 != 0 {
        return Err(CoreError::BadRequest {
            reason: format!("rope needs an even head_dim, got {dh}"),
        });
    }
    if positions.len() != t {
        return Err(CoreError::BadRequest {
            reason: format!("{} positions for {t} tokens", positions.len()),
        });
    }
    let half = dh / 2;
    for (i, &pos) in positions.iter().enumerate() {
        let row = x.row_mut(i);
        for h in 0..heads {
            let head = &mut row[h * dh..(h + 1) * dh];
            for j in 0..half {
                let theta = pos as f32 / base.powf(2.0 * j as f32 / dh as f32);
                let (sin, cos) = theta.sin_cos();
                let (a, b) = (head[2 * j], head[2 * j + 1]);
                head[2 * j] = a * cos - b * sin;
                head[2 * j + 1] = a * sin + b * cos;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::DetRng;

    #[test]
    fn position_zero_is_identity() {
        let mut x = DetRng::new(1).tensor(&[1, 2, 8]);
        let orig = x.clone();
        apply_rope(&mut x, &[0], 10_000.0).unwrap();
        assert!(x.approx_eq(&orig, 1e-6).unwrap());
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut x = DetRng::new(2).tensor(&[3, 2, 8]);
        let before: f32 = x.as_slice().iter().map(|v| v * v).sum();
        apply_rope(&mut x, &[5, 100, 7777], 10_000.0).unwrap();
        let after: f32 = x.as_slice().iter().map(|v| v * v).sum();
        assert!((before - after).abs() / before < 1e-5);
    }

    #[test]
    fn relative_position_property() {
        // RoPE's defining property: <rope(q, m), rope(k, n)> depends only
        // on m - n. Check the dot product for (m, n) = (7, 3) vs (104, 100).
        let base = 10_000.0;
        let mut rng = DetRng::new(3);
        let q0 = rng.tensor(&[1, 1, 8]);
        let k0 = rng.tensor(&[1, 1, 8]);
        let dot = |m: usize, n: usize| -> f32 {
            let mut q = q0.clone();
            let mut k = k0.clone();
            apply_rope(&mut q, &[m], base).unwrap();
            apply_rope(&mut k, &[n], base).unwrap();
            q.as_slice()
                .iter()
                .zip(k.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        assert!((dot(7, 3) - dot(104, 100)).abs() < 1e-4);
        // And genuinely differs for a different offset.
        assert!((dot(7, 3) - dot(7, 0)).abs() > 1e-4);
    }

    #[test]
    fn depends_on_global_not_local_position() {
        // The CP-critical property: rotating by positions [4, 9] is NOT
        // the same as rotating by local indices [0, 1].
        let mut rng = DetRng::new(4);
        let x = rng.tensor(&[2, 1, 4]);
        let mut global = x.clone();
        apply_rope(&mut global, &[4, 9], 10_000.0).unwrap();
        let mut local = x.clone();
        apply_rope(&mut local, &[0, 1], 10_000.0).unwrap();
        assert!(!global.approx_eq(&local, 1e-4).unwrap());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut x = Tensor::zeros(&[2, 1, 4]);
        assert!(apply_rope(&mut x, &[0], 10_000.0).is_err()); // wrong positions len
        let mut odd = Tensor::zeros(&[1, 1, 3]);
        assert!(apply_rope(&mut odd, &[0], 10_000.0).is_err()); // odd head dim
        let mut r2 = Tensor::zeros(&[2, 4]);
        assert!(apply_rope(&mut r2, &[0, 1], 10_000.0).is_err()); // rank 2
    }
}
