//! Numeric tensor-parallel linear layers — the baseline communication
//! pattern CP is compared against (Table 2).
//!
//! Megatron-style TP alternates **column-parallel** linears (each rank
//! holds a slice of the output features; outputs are concatenated or kept
//! sharded) with **row-parallel** linears (each rank holds a slice of the
//! input features; partial outputs are summed with an AllReduce). Each
//! column→row pair — the structure of both the attention projection pair
//! and the FFN — costs one AllReduce of `[t, D]` activations, i.e.
//! `T·N_H·D_H·e` bytes on the wire, twice per transformer block. This
//! module implements the pattern on the thread fabric and the tests pin
//! both exactness and the byte accounting.

use cp_comm::{CheckedFabric, TrafficReport, Wire};
use cp_core::schedule::{all_gather_plan, all_reduce_plan};
use cp_core::CoreError;
use cp_tensor::Tensor;

use crate::layers::Linear;

/// Runs `y = relu-free( x · W_a · W_b )` as a Megatron column→row parallel
/// pair over `n_ranks` fabric ranks: `W_a` is split by columns, `W_b` by
/// rows, and the partial results are AllReduce-summed.
///
/// Returns the output (identical on every rank, asserted) and the fabric
/// traffic. Numerically equal to `x.matmul(W_a).matmul(W_b)`.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] if the hidden dimension is not
/// divisible by `n_ranks`; propagates communication failures.
pub fn tp_linear_pair(
    x: &Tensor,
    w_a: &Linear,
    w_b: &Linear,
    n_ranks: usize,
) -> Result<(Tensor, TrafficReport), CoreError> {
    let a_shards = w_a.split_columns(n_ranks)?;
    let b_shards = w_b.split_rows(n_ranks)?;
    let out_shape = [x.dim0(), w_b.out_dim()];

    // Declared schedule: one AllReduce of the partial [t, out] activation
    // per rank, bytes from the payload's own Wire impl on a zero skeleton.
    // The CheckedFabric holds live traffic against it, sanitizer-style.
    let skeleton = vec![0.0f32; x.dim0() * w_b.out_dim()];
    let plan = all_reduce_plan(
        skeleton.wire_variant(),
        &vec![skeleton.wire_bytes(); n_ranks],
    )?;
    let fabric = CheckedFabric::new(plan);
    let (mut outputs, traffic) = fabric
        .run::<Vec<f32>, _, _>(|comm| {
            let r = comm.rank();
            // Column-parallel: local activation slice [t, hidden/n].
            let hidden = a_shards[r]
                .forward(x)
                .map_err(|e| crate::to_comm_error(r, e))?;
            // Row-parallel: partial output [t, out], then AllReduce-sum.
            let partial = b_shards[r]
                .forward(&hidden)
                .map_err(|e| crate::to_comm_error(r, e))?;
            let reduced = comm.all_reduce(partial.as_slice().to_vec(), |mut acc, m| {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
                acc
            })?;
            Ok(reduced)
        })
        .map_err(CoreError::from)?;

    // Every rank must hold the identical reduced activation.
    let first = outputs.remove(0);
    for other in &outputs {
        debug_assert_eq!(other.len(), first.len());
    }
    Ok((Tensor::from_vec(first, &out_shape)?, traffic))
}

/// The Table 2 wire-byte count for one TP column→row pair at element size
/// `e`: every rank contributes its partial `[t, out]` activation to the
/// AllReduce, implemented here as an all-gather of `n·(n-1)` messages.
pub fn expected_allreduce_bytes(t: usize, out_dim: usize, n_ranks: usize, e: usize) -> usize {
    n_ranks * (n_ranks - 1) * t * out_dim * e
}

/// Tensor-parallel GQA attention with KV-head replication (§4.2.2): query
/// heads are split evenly over `n_ranks`; each rank holds (a replica of)
/// the KV heads its query heads need, computes its heads' attention over
/// the **full** sequence, and the per-head outputs are reassembled with an
/// AllGather.
///
/// This is how the paper parallelizes Llama3 405B's 8 KV heads over more
/// than 8 GPUs: "we replicate each KV head over `N_TP / N_KV` GPUs ...
/// query heads are distributed evenly". Exact, like CP — but each rank
/// stores the *entire* sequence's KV for its heads, which is the
/// memory-scaling difference from context parallelism.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] if `n_heads` is not divisible by
/// `n_ranks` or the per-rank head slice straddles KV-head groups
/// unevenly; propagates kernel/communication failures.
pub fn tp_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    params: &cp_attention::AttentionParams,
    q_pos: &[usize],
    kv_pos: &[usize],
    n_ranks: usize,
) -> Result<(cp_attention::AttentionOutput, TrafficReport), CoreError> {
    use cp_attention::{blocked_gqa_attention, AttentionParams, GqaShape};

    let shape = params.shape;
    let (nh, dh) = (shape.n_heads(), shape.head_dim());
    if n_ranks == 0 || nh % n_ranks != 0 {
        return Err(CoreError::BadRequest {
            reason: format!("cannot split {nh} query heads over {n_ranks} ranks"),
        });
    }
    let heads_per_rank = nh / n_ranks;
    let group = shape.group_size();
    if !heads_per_rank.is_multiple_of(group) && !group.is_multiple_of(heads_per_rank) {
        return Err(CoreError::BadRequest {
            reason: format!(
                "per-rank head slice ({heads_per_rank}) must align with KV groups ({group})"
            ),
        });
    }
    let t_q = shape.check_q(q).map_err(CoreError::from)?;

    // Pre-slice each rank's Q heads and (replicated) KV heads.
    let kv_per_rank = (heads_per_rank / group).max(1);
    let mut rank_inputs = Vec::with_capacity(n_ranks);
    for r in 0..n_ranks {
        let h0 = r * heads_per_rank;
        let kvh0 = shape.kv_head_for(h0);
        let mut qr = Tensor::zeros(&[t_q, heads_per_rank, dh]);
        for t in 0..t_q {
            let src = q.row(t);
            qr.row_mut(t)
                .copy_from_slice(&src[h0 * dh..(h0 + heads_per_rank) * dh]);
        }
        let t_kv = k.dim0();
        let mut kr = Tensor::zeros(&[t_kv, kv_per_rank, dh]);
        let mut vr = Tensor::zeros(&[t_kv, kv_per_rank, dh]);
        for t in 0..t_kv {
            kr.row_mut(t)
                .copy_from_slice(&k.row(t)[kvh0 * dh..(kvh0 + kv_per_rank) * dh]);
            vr.row_mut(t)
                .copy_from_slice(&v.row(t)[kvh0 * dh..(kvh0 + kv_per_rank) * dh]);
        }
        let local_shape = GqaShape::new(heads_per_rank, kv_per_rank, dh)?;
        rank_inputs.push((
            qr,
            kr,
            vr,
            AttentionParams::with_scale(local_shape, params.scale),
        ));
    }

    // Each rank computes its heads locally, then AllGathers head outputs.
    // The schedule is declared up front (uniform [t, h/n, d] + LSE payloads)
    // and enforced by a CheckedFabric.
    let skeleton = vec![0.0f32; t_q * heads_per_rank * dh + t_q * heads_per_rank];
    let plan = all_gather_plan(
        skeleton.wire_variant(),
        &vec![skeleton.wire_bytes(); n_ranks],
    )?;
    let fabric = CheckedFabric::new(plan);
    let (mut gathered, traffic) = fabric
        .run::<Vec<f32>, _, _>(|comm| {
            let (qr, kr, vr, p) = &rank_inputs[comm.rank()];
            let out = blocked_gqa_attention(qr, kr, vr, p, q_pos, kv_pos, 128)
                .map_err(|e| crate::to_comm_error(comm.rank(), CoreError::from(e)))?;
            let mut payload = out.out.as_slice().to_vec();
            payload.extend_from_slice(out.lse.as_slice());
            comm.all_gather(payload)
        })
        .map_err(CoreError::from)?;

    // Reassemble [t, nh, dh] (+ LSE) from rank 0's gathered view.
    let parts = gathered.remove(0);
    let mut out = Tensor::zeros(&[t_q, nh, dh]);
    let mut lse = Tensor::zeros(&[t_q, nh]);
    for (r, payload) in parts.iter().enumerate() {
        let out_len = t_q * heads_per_rank * dh;
        let h0 = r * heads_per_rank;
        for t in 0..t_q {
            out.row_mut(t)[h0 * dh..(h0 + heads_per_rank) * dh]
                .copy_from_slice(&payload[t * heads_per_rank * dh..(t + 1) * heads_per_rank * dh]);
            lse.row_mut(t)[h0..h0 + heads_per_rank].copy_from_slice(
                &payload[out_len + t * heads_per_rank..out_len + (t + 1) * heads_per_rank],
            );
        }
    }
    Ok((cp_attention::AttentionOutput::new(out, lse)?, traffic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_tensor::{matmul, DetRng};

    #[test]
    fn tp_pair_matches_serial() {
        let mut rng = DetRng::new(1);
        let x = rng.tensor(&[5, 8]);
        let w_a = Linear::new(8, 16, 2);
        let w_b = Linear::new(16, 8, 3);
        let serial = matmul(&matmul(&x, w_a.weight()).unwrap(), w_b.weight()).unwrap();
        for n in [1usize, 2, 4] {
            let (out, _) = tp_linear_pair(&x, &w_a, &w_b, n).unwrap();
            assert!(
                out.approx_eq(&serial, 1e-4).unwrap(),
                "n={n}: {}",
                out.max_abs_diff(&serial).unwrap()
            );
        }
    }

    #[test]
    fn traffic_matches_table2_accounting() {
        let mut rng = DetRng::new(4);
        let t = 6;
        let x = rng.tensor(&[t, 8]);
        let w_a = Linear::new(8, 16, 5);
        let w_b = Linear::new(16, 8, 6);
        let n = 4;
        let (_, traffic) = tp_linear_pair(&x, &w_a, &w_b, n).unwrap();
        // AllReduce implemented as gather: n*(n-1) messages of [t, 8] f32,
        // accounted under the dedicated AllReduce category.
        assert_eq!(
            traffic.all_reduce.bytes,
            expected_allreduce_bytes(t, 8, n, 4)
        );
        assert_eq!(traffic.all_reduce.calls, n as u64);
        assert_eq!(traffic.all_gather_bytes, 0);
        assert_eq!(traffic.send_recv_bytes, 0);
    }

    #[test]
    fn tp_traffic_exceeds_cp_traffic_for_gqa() {
        // The crux of Table 2, on real bytes: one TP pair's AllReduce of
        // [t, D] activations moves more than a whole CP KV ring pass when
        // N_H > 2 N_KV.
        let mut rng = DetRng::new(7);
        let t = 16;
        let d = 32; // model dim: N_H=4 heads of 8
        let kv_dim = 8; // N_KV=1 head of 8: group size 4
        let x = rng.tensor(&[t, d]);
        let w_a = Linear::new(d, d, 8);
        let w_b = Linear::new(d, d, 9);
        let n = 4;
        let (_, tp_traffic) = tp_linear_pair(&x, &w_a, &w_b, n).unwrap();
        // CP ring: n*(n-1) hops of 2 * (t/n) * kv_dim f32.
        let cp_bytes = n * (n - 1) * 2 * (t / n) * kv_dim * 4;
        assert!(
            tp_traffic.all_reduce.bytes > 4 * cp_bytes,
            "tp {} vs cp {}",
            tp_traffic.all_reduce.bytes,
            cp_bytes
        );
    }

    #[test]
    fn tp_attention_exact_with_replication() {
        use cp_attention::{naive_gqa_attention, AttentionParams, GqaShape};
        // 8 query heads over 2 KV heads (group 4): with 8 ranks each KV
        // head is replicated over 4 ranks — the paper's N_TP/N_KV scheme.
        let shape = GqaShape::new(8, 2, 8).unwrap();
        let params = AttentionParams::for_shape(shape);
        let mut rng = DetRng::new(11);
        let t = 24;
        let q = rng.tensor(&[t, 8, 8]);
        let k = rng.tensor(&[t, 2, 8]);
        let v = rng.tensor(&[t, 2, 8]);
        let pos: Vec<usize> = (0..t).collect();
        let reference = naive_gqa_attention(&q, &k, &v, &params, &pos, &pos).unwrap();
        for n in [1usize, 2, 4, 8] {
            let (out, _) = tp_attention(&q, &k, &v, &params, &pos, &pos, n).unwrap();
            assert!(
                out.out.approx_eq(&reference.out, 2e-3).unwrap(),
                "n={n}: {}",
                out.out.max_abs_diff(&reference.out).unwrap()
            );
            assert!(out.lse.approx_eq(&reference.lse, 2e-3).unwrap());
        }
    }

    #[test]
    fn tp_attention_rejects_misaligned_splits() {
        use cp_attention::{AttentionParams, GqaShape};
        let shape = GqaShape::new(8, 2, 8).unwrap();
        let params = AttentionParams::for_shape(shape);
        let q = Tensor::zeros(&[2, 8, 8]);
        let k = Tensor::zeros(&[2, 2, 8]);
        let v = Tensor::zeros(&[2, 2, 8]);
        // 3 ranks: 8 heads not divisible.
        assert!(tp_attention(&q, &k, &v, &params, &[0, 1], &[0, 1], 3).is_err());
        assert!(tp_attention(&q, &k, &v, &params, &[0, 1], &[0, 1], 0).is_err());
    }

    #[test]
    fn tp_attention_allgather_traffic_scales_with_context() {
        use cp_attention::{AttentionParams, GqaShape};
        let shape = GqaShape::new(4, 2, 8).unwrap();
        let params = AttentionParams::for_shape(shape);
        let mut rng = DetRng::new(12);
        let traffic_at = |t: usize, rng: &mut DetRng| {
            let q = rng.tensor(&[t, 4, 8]);
            let k = rng.tensor(&[t, 2, 8]);
            let v = rng.tensor(&[t, 2, 8]);
            let pos: Vec<usize> = (0..t).collect();
            tp_attention(&q, &k, &v, &params, &pos, &pos, 2).unwrap().1
        };
        let small = traffic_at(8, &mut rng);
        let big = traffic_at(16, &mut rng);
        // Output AllGather is proportional to T (the Table 2 contrast:
        // TP comm scales with the *whole* context, CP with the shard).
        assert_eq!(big.all_gather_bytes, 2 * small.all_gather_bytes);
    }

    #[test]
    fn tp_collectives_match_their_declared_plans() {
        // Both TP entry points now run under a CheckedFabric; the declared
        // plan's predicted traffic must equal what the fabric measures.
        let mut rng = DetRng::new(21);
        let t = 6;
        let x = rng.tensor(&[t, 8]);
        let w_a = Linear::new(8, 16, 5);
        let w_b = Linear::new(16, 8, 6);
        let n = 4;
        let (_, traffic) = tp_linear_pair(&x, &w_a, &w_b, n).unwrap();
        let skeleton = vec![0.0f32; t * 8];
        let plan = all_reduce_plan("payload", &vec![skeleton.wire_bytes(); n]).unwrap();
        plan.predicted_traffic().check_report(&traffic).unwrap();

        use cp_attention::{AttentionParams, GqaShape};
        let shape = GqaShape::new(4, 2, 8).unwrap();
        let params = AttentionParams::for_shape(shape);
        let q = rng.tensor(&[t, 4, 8]);
        let k = rng.tensor(&[t, 2, 8]);
        let v = rng.tensor(&[t, 2, 8]);
        let pos: Vec<usize> = (0..t).collect();
        let (_, ag_traffic) = tp_attention(&q, &k, &v, &params, &pos, &pos, 2).unwrap();
        let ag_skeleton = vec![0.0f32; t * 2 * 8 + t * 2];
        let ag_plan = all_gather_plan("payload", &[ag_skeleton.wire_bytes(); 2]).unwrap();
        ag_plan
            .predicted_traffic()
            .check_report(&ag_traffic)
            .unwrap();
    }

    #[test]
    fn indivisible_split_is_rejected() {
        let x = Tensor::zeros(&[2, 8]);
        let w_a = Linear::new(8, 10, 1); // 10 not divisible by 4
        let w_b = Linear::new(10, 8, 2);
        assert!(tp_linear_pair(&x, &w_a, &w_b, 4).is_err());
    }
}
