//! The single-device reference transformer.

use cp_attention::{naive_gqa_attention, AttentionParams};
use cp_core::CoreError;
use cp_pool::ComputePool;
use cp_tensor::{DetRng, Tensor};

use crate::layers::{rms_norm, rms_norm_on, Linear, SwiGlu};
use crate::rope::apply_rope;
use crate::TransformerConfig;

/// One transformer block's weights — a passive weight container exposed
/// so downstream engines (e.g. `cp-serve`) can drive the layers with
/// their own caching/attention schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Query projection `[D, D]`.
    pub wq: Linear,
    /// Key projection `[D, N_KV*D_H]`.
    pub wk: Linear,
    /// Value projection `[D, N_KV*D_H]`.
    pub wv: Linear,
    /// Output projection `[D, D]`.
    pub wo: Linear,
    /// SwiGLU feed-forward weights.
    pub ffn: SwiGlu,
}

impl Block {
    fn new(config: &TransformerConfig, seed: u64) -> Self {
        let d = config.model_dim();
        let kv = config.kv_dim();
        Block {
            wq: Linear::new(d, d, seed.wrapping_add(1)),
            wk: Linear::new(d, kv, seed.wrapping_add(2)),
            wv: Linear::new(d, kv, seed.wrapping_add(3)),
            wo: Linear::new(d, d, seed.wrapping_add(4)),
            ffn: SwiGlu::new(d, config.ffn_dim, seed.wrapping_add(5)),
        }
    }
}

/// A deterministic multi-layer GQA transformer — the single-device
/// reference the context-parallel forward is verified against.
///
/// Structure per block (Llama-style pre-norm):
///
/// ```text
/// x += Wo · Attn(RoPE(Wq·norm(x)), RoPE(Wk·norm(x)), Wv·norm(x))
/// x += FFN(norm(x))
/// ```
///
/// Weights are pseudo-random from the constructor seed; the embedding is
/// a deterministic hash of the token id (values don't matter for the
/// systems claims — exactness under distribution does).
#[derive(Debug, Clone, PartialEq)]
pub struct Transformer {
    config: TransformerConfig,
    seed: u64,
    blocks: Vec<Block>,
    params: AttentionParams,
}

impl Transformer {
    /// Builds a transformer with deterministic weights from `seed`.
    pub fn new(config: &TransformerConfig, seed: u64) -> Self {
        let blocks = (0..config.n_layers)
            .map(|l| Block::new(config, seed.wrapping_add(1000 * (l as u64 + 1))))
            .collect();
        Transformer {
            config: *config,
            seed,
            blocks,
            params: AttentionParams::for_shape(config.shape),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// The per-layer weight blocks, in layer order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The attention parameters (shape + softmax scale) of every layer.
    pub fn attention_params(&self) -> &AttentionParams {
        &self.params
    }

    /// Deterministic token embedding: `[t, D]` rows hashed from
    /// `(seed, token_id)`.
    pub fn embed(&self, tokens: &[u32]) -> Tensor {
        let d = self.config.model_dim();
        let mut out = Tensor::zeros(&[tokens.len(), d]);
        for (i, &tok) in tokens.iter().enumerate() {
            let mix = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(tok % self.config.vocab) << 17)
                | 1;
            let mut rng = DetRng::new(mix);
            for v in out.row_mut(i) {
                *v = rng.next_signed();
            }
        }
        out
    }

    /// Runs one block on activations `x` (`[t, D]`) whose tokens sit at
    /// the given global positions, attending to themselves causally.
    pub(crate) fn block_forward(
        &self,
        layer: usize,
        x: &Tensor,
        positions: &[usize],
    ) -> Result<Tensor, CoreError> {
        self.block_forward_inner(layer, x, positions, None)
    }

    /// [`Transformer::block_forward`] with the projections, norms and FFN
    /// fanned out on `pool`; bit-identical to the serial path.
    pub(crate) fn block_forward_on(
        &self,
        pool: &ComputePool,
        layer: usize,
        x: &Tensor,
        positions: &[usize],
    ) -> Result<Tensor, CoreError> {
        self.block_forward_inner(layer, x, positions, Some(pool))
    }

    fn block_forward_inner(
        &self,
        layer: usize,
        x: &Tensor,
        positions: &[usize],
        pool: Option<&ComputePool>,
    ) -> Result<Tensor, CoreError> {
        let block = &self.blocks[layer];
        let shape = self.config.shape;
        let (t, dh) = (x.dim0(), shape.head_dim());
        let eps = self.config.norm_eps;
        let norm = |x: &Tensor| match pool {
            Some(p) => rms_norm_on(p, x, eps),
            None => rms_norm(x, eps),
        };
        let proj = |l: &Linear, x: &Tensor| match pool {
            Some(p) => l.forward_on(p, x),
            None => l.forward(x),
        };

        // Attention sub-block.
        let h = norm(x)?;
        let mut q = proj(&block.wq, &h)?.reshape(&[t, shape.n_heads(), dh])?;
        let mut k = proj(&block.wk, &h)?.reshape(&[t, shape.n_kv_heads(), dh])?;
        let v = proj(&block.wv, &h)?.reshape(&[t, shape.n_kv_heads(), dh])?;
        apply_rope(&mut q, positions, self.config.rope_base)?;
        apply_rope(&mut k, positions, self.config.rope_base)?;
        let attn = naive_gqa_attention(&q, &k, &v, &self.params, positions, positions)?;
        let attn_flat = attn.out.reshape(&[t, self.config.model_dim()])?;
        let mut x = x.clone();
        x.add_assign(&proj(&block.wo, &attn_flat)?)?;

        // FFN sub-block.
        let h = norm(&x)?;
        let ffn = match pool {
            Some(p) => block.ffn.forward_on(p, &h)?,
            None => block.ffn.forward(&h)?,
        };
        x.add_assign(&ffn)?;
        Ok(x)
    }

    /// Full forward pass over a fresh prompt: embeds `tokens` at
    /// positions `0..t` and runs every block, returning the final
    /// (pre-head) activations `[t, D]`.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors (none occur for a valid config).
    pub fn forward(&self, tokens: &[u32]) -> Result<Tensor, CoreError> {
        let positions: Vec<usize> = (0..tokens.len()).collect();
        self.forward_at(tokens, &positions)
    }

    /// Forward pass with explicit global positions (tokens attend
    /// causally among themselves by position).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `positions.len()` differs
    /// from `tokens.len()`.
    pub fn forward_at(&self, tokens: &[u32], positions: &[usize]) -> Result<Tensor, CoreError> {
        if tokens.len() != positions.len() {
            return Err(CoreError::BadRequest {
                reason: format!("{} positions for {} tokens", positions.len(), tokens.len()),
            });
        }
        let mut x = self.embed(tokens);
        for layer in 0..self.blocks.len() {
            x = self.block_forward(layer, &x, positions)?;
        }
        rms_norm(&x, self.config.norm_eps)
    }

    /// [`Transformer::forward_at`] with every layer's projections, norms
    /// and FFN fanned out on `pool`. Bit-identical to the serial forward.
    ///
    /// # Errors
    ///
    /// As [`Transformer::forward_at`].
    pub fn forward_at_on(
        &self,
        pool: &ComputePool,
        tokens: &[u32],
        positions: &[usize],
    ) -> Result<Tensor, CoreError> {
        if tokens.len() != positions.len() {
            return Err(CoreError::BadRequest {
                reason: format!("{} positions for {} tokens", positions.len(), tokens.len()),
            });
        }
        let mut x = self.embed(tokens);
        for layer in 0..self.blocks.len() {
            x = self.block_forward_on(pool, layer, &x, positions)?;
        }
        rms_norm_on(pool, &x, self.config.norm_eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Transformer {
        Transformer::new(&TransformerConfig::tiny(), 42)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let m = model();
        let tokens: Vec<u32> = (0..10).collect();
        let a = m.forward(&tokens).unwrap();
        assert_eq!(a.shape(), &[10, 32]);
        let b = model().forward(&tokens).unwrap();
        assert_eq!(a, b);
        // Different seeds give different models.
        let other = Transformer::new(&TransformerConfig::tiny(), 43);
        assert!(!other.forward(&tokens).unwrap().approx_eq(&a, 1e-3).unwrap());
    }

    #[test]
    fn activations_stay_bounded_through_depth() {
        // The 1/sqrt(d) init + norms keep values finite and O(1-ish).
        let cfg = TransformerConfig::small();
        let m = Transformer::new(&cfg, 1);
        let tokens: Vec<u32> = (0..32).collect();
        let out = m.forward(&tokens).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let max = out.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(max < 50.0, "max activation {max}");
    }

    #[test]
    fn causality_of_the_full_stack() {
        // Changing a later token never changes earlier outputs.
        let m = model();
        let a = m.forward(&[1, 2, 3, 4]).unwrap();
        let b = m.forward(&[1, 2, 3, 99]).unwrap();
        let a3 = a.slice_dim0(0..3).unwrap();
        let b3 = b.slice_dim0(0..3).unwrap();
        assert!(a3.approx_eq(&b3, 1e-6).unwrap());
        // While the last token's output does change.
        assert!(!a
            .slice_dim0(3..4)
            .unwrap()
            .approx_eq(&b.slice_dim0(3..4).unwrap(), 1e-4)
            .unwrap());
    }

    #[test]
    fn embedding_respects_vocab_wrap() {
        let m = model();
        let v = m.config().vocab;
        // token and token + vocab embed identically (modular hash).
        let a = m.embed(&[5]);
        let b = m.embed(&[5 + v]);
        assert_eq!(a, b);
        assert_ne!(m.embed(&[5]), m.embed(&[6]));
    }

    #[test]
    fn forward_at_validates_lengths() {
        let m = model();
        assert!(m.forward_at(&[1, 2], &[0]).is_err());
    }

    #[test]
    fn pooled_forward_is_bit_identical_to_serial() {
        let m = model();
        let tokens: Vec<u32> = (0..24).collect();
        let positions: Vec<usize> = (0..24).collect();
        let serial = m.forward(&tokens).unwrap();
        for threads in [1, 2, 4] {
            let pool = ComputePool::new(threads);
            let pooled = m.forward_at_on(&pool, &tokens, &positions).unwrap();
            assert_eq!(serial, pooled, "threads={threads}");
        }
        let pool = ComputePool::new(2);
        assert!(m.forward_at_on(&pool, &[1, 2], &[0]).is_err());
    }

    #[test]
    fn positions_matter_relatively_but_not_absolutely() {
        // RoPE's defining behaviour at the full-stack level: a uniform
        // shift of all positions leaves activations unchanged (relative
        // encoding)...
        let m = model();
        let a = m.forward_at(&[7, 8], &[0, 1]).unwrap();
        let shifted = m.forward_at(&[7, 8], &[10, 11]).unwrap();
        assert!(a.approx_eq(&shifted, 1e-4).unwrap());
        // ...while changing the *gap* between tokens changes the result.
        let stretched = m.forward_at(&[7, 8], &[0, 5]).unwrap();
        assert!(!a.approx_eq(&stretched, 1e-4).unwrap());
    }
}
