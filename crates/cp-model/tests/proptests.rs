//! Property-based exactness for the full transformer under context
//! parallelism: any config, any token ids, any rank count, either ring
//! variant — the distributed forward equals the single-device forward.

use cp_attention::GqaShape;
use cp_model::{cp_forward, cp_forward_sharded_with, Transformer, TransformerConfig};
use cp_perf::RingVariant;
use cp_sharding::ShardPlan;
use proptest::prelude::*;

fn random_config() -> impl Strategy<Value = TransformerConfig> {
    (1usize..3, 1usize..3, 1usize..3, 1usize..3).prop_map(|(g, kv, dh_half, layers)| {
        let shape = GqaShape::new(g * kv, kv, dh_half * 2).unwrap(); // even head_dim for RoPE
        TransformerConfig {
            shape,
            n_layers: layers,
            ffn_dim: shape.model_dim() * 2,
            vocab: 64,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
        }
    })
}

fn shards_for(tokens: &[u32], n: usize) -> Vec<(Vec<u32>, Vec<usize>)> {
    let plan = ShardPlan::new(tokens.len(), n).unwrap();
    (0..n)
        .map(|r| {
            let positions = plan.positions_for(r);
            let toks = positions.iter().map(|&p| tokens[p]).collect();
            (toks, positions)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// cp_forward == single-device forward for random models and inputs.
    #[test]
    fn cp_forward_exact(
        config in random_config(),
        tokens in prop::collection::vec(0u32..64, 1..30),
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        let model = Transformer::new(&config, seed);
        let reference = model.forward(&tokens).unwrap();
        let (out, _) = cp_forward(&model, &tokens, n).unwrap();
        prop_assert!(
            out.approx_eq(&reference, 5e-3).unwrap(),
            "max diff {}",
            out.max_abs_diff(&reference).unwrap()
        );
    }

    /// Pass-Q and pass-KV produce identical full-stack activations.
    #[test]
    fn variants_agree_full_stack(
        config in random_config(),
        tokens in prop::collection::vec(0u32..64, 2..24),
        n in 2usize..4,
        seed in any::<u64>(),
    ) {
        let model = Transformer::new(&config, seed);
        let shards = shards_for(&tokens, n);
        let (kv, _) =
            cp_forward_sharded_with(&model, &shards, RingVariant::PassKv).unwrap();
        let (q, traffic) =
            cp_forward_sharded_with(&model, &shards, RingVariant::PassQ).unwrap();
        for r in 0..n {
            prop_assert!(kv[r].approx_eq(&q[r], 5e-3).unwrap(), "rank {r}");
        }
        // pass-Q returns outputs via eager point-to-point sends, so its
        // traffic lands in the send_recv category, never All2All.
        prop_assert!(traffic.all_to_all_bytes == 0);
        prop_assert!(traffic.send_recv_bytes > 0);
    }

    /// The whole stack is causal: appending tokens never changes the
    /// activations of the existing prefix, even distributed.
    #[test]
    fn distributed_stack_is_causal(
        config in random_config(),
        prefix in prop::collection::vec(0u32..64, 1..12),
        suffix in prop::collection::vec(0u32..64, 1..6),
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        let model = Transformer::new(&config, seed);
        let (short, _) = cp_forward(&model, &prefix, n).unwrap();
        let mut full_tokens = prefix.clone();
        full_tokens.extend(&suffix);
        let (long, _) = cp_forward(&model, &full_tokens, n).unwrap();
        let long_prefix = long.slice_dim0(0..prefix.len()).unwrap();
        prop_assert!(
            short.approx_eq(&long_prefix, 5e-3).unwrap(),
            "max diff {}",
            short.max_abs_diff(&long_prefix).unwrap()
        );
    }
}
