//! Closed-form communication and compute cost formulas (Tables 2 and 3).

use crate::ModelSpec;

/// Per-transformer-block communication bytes under tensor parallelism
/// (Table 2): two AllReduces of activations, `2 * T * N_H * D_H * e`.
pub fn tp_comm_per_block_bytes(model: &ModelSpec, t: usize) -> f64 {
    2.0 * t as f64 * (model.n_heads * model.head_dim) as f64 * model.act_bytes
}

/// Per-transformer-block communication bytes under context parallelism
/// with pass-KV (Table 2): one KV SendRecv, `T * N_KV * D_H * e`.
///
/// Table 2 counts K+V jointly via the `N_KV` factor relative to TP's two
/// linear-layer AllReduces; the concrete per-message size used by the ring
/// model is [`kv_message_bytes`].
pub fn cp_comm_per_block_bytes(model: &ModelSpec, t: usize) -> f64 {
    t as f64 * (model.n_kv_heads * model.head_dim) as f64 * model.act_bytes
}

/// Q embedding bytes for `t` tokens (Table 3): `T * D * e`.
pub fn q_bytes(model: &ModelSpec, t: usize) -> f64 {
    t as f64 * model.model_dim as f64 * model.act_bytes
}

/// K+V embedding bytes for a context of `t` new plus `p` cached tokens
/// (Table 3): `2 * (P + T) * D * (N_KV / N_H) * e`.
pub fn kv_bytes(model: &ModelSpec, t: usize, p: usize) -> f64 {
    2.0 * (t + p) as f64
        * model.model_dim as f64
        * (model.n_kv_heads as f64 / model.n_heads as f64)
        * model.act_bytes
}

/// GEMM (linear-layer) FLOPs for `t` tokens over the whole model:
/// `2 * W * T` (Kaplan et al.; Appendix A).
pub fn gemm_flops(model: &ModelSpec, t: usize) -> f64 {
    2.0 * model.params * t as f64
}

/// Causal attention FLOPs for one layer: `t` new tokens against `p` cached
/// plus themselves. Token `i` of the new block attends to `p + i + 1`
/// positions at `4 * D` FLOPs per (query, key) pair, giving
/// `4 * T * D * (P + (T+1)/2)`; for `p = 0` this is the Appendix A
/// `(1/2) * 4 * T^2 * D` causal count, and for `t` small it approaches
/// Table 3's `4 * T * D * (T + P)` partial-prefill bound.
pub fn attn_flops_layer(model: &ModelSpec, t: usize, p: usize) -> f64 {
    let t = t as f64;
    let p = p as f64;
    4.0 * t * model.model_dim as f64 * (p + (t + 1.0) / 2.0)
}

/// Causal attention FLOPs over all layers.
pub fn attn_flops_total(model: &ModelSpec, t: usize, p: usize) -> f64 {
    attn_flops_layer(model, t, p) * model.n_layers as f64
}

/// Total prefill FLOPs (GEMM + attention) for `t` new tokens against `p`
/// cached tokens — the Appendix A accounting.
pub fn prefill_flops(model: &ModelSpec, t: usize, p: usize) -> f64 {
    gemm_flops(model, t) + attn_flops_total(model, t, p)
}

/// Per-GPU bytes of one ring **pass-KV** message: each GPU's CP group
/// carries `N_KV / gpus_per_node` KV heads of `msg_tokens` tokens
/// (K and V).
pub fn kv_message_bytes(model: &ModelSpec, gpus_per_node: usize, msg_tokens: usize) -> f64 {
    let heads_per_gpu = model.n_kv_heads as f64 / gpus_per_node as f64;
    2.0 * msg_tokens as f64 * heads_per_gpu * model.head_dim as f64 * model.act_bytes
}

/// Per-GPU bytes of one ring **pass-Q** message: `N_H / gpus_per_node`
/// query heads of `msg_tokens` tokens.
pub fn q_message_bytes(model: &ModelSpec, gpus_per_node: usize, msg_tokens: usize) -> f64 {
    let heads_per_gpu = model.n_heads as f64 / gpus_per_node as f64;
    msg_tokens as f64 * heads_per_gpu * model.head_dim as f64 * model.act_bytes
}

/// Per-GPU bytes a rank contributes to the pass-Q `All2All`: partial
/// outputs plus one LSE scalar per head for `msg_tokens` tokens to each of
/// the `n - 1` peers (Appendix C's `(D + 1) * T * e` per head-share).
pub fn all2all_bytes(
    model: &ModelSpec,
    gpus_per_node: usize,
    n_ranks: usize,
    msg_tokens: usize,
) -> f64 {
    let heads_per_gpu = model.n_heads as f64 / gpus_per_node as f64;
    (n_ranks.saturating_sub(1)) as f64
        * msg_tokens as f64
        * heads_per_gpu
        * (model.head_dim as f64 + 1.0)
        * model.act_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    #[test]
    fn table2_tp_vs_cp_ratio() {
        // Total TP comm per block is 2*T*N_H*D_H vs CP's T*N_KV*D_H:
        // for Llama3 405B the ratio is 2 * 128 / 8 = 32x.
        let t = 4096;
        let ratio = tp_comm_per_block_bytes(&m(), t) / cp_comm_per_block_bytes(&m(), t);
        assert_eq!(ratio, 32.0);
    }

    #[test]
    fn table3_q_vs_kv_bytes() {
        // Full prefill (P=0): KV bytes = 2 * (N_KV/N_H) * Q bytes = Q/8.
        let t = 1000;
        assert_eq!(kv_bytes(&m(), t, 0), q_bytes(&m(), t) / 8.0);
        // Equation 1: Q smaller than KV iff T/(T+P) <= 2 N_KV / N_H.
        let p = 15 * t; // miss rate 1/16 < 1/8
        assert!(q_bytes(&m(), t) < kv_bytes(&m(), t, p));
        let p2 = 3 * t; // miss rate 1/4 > 1/8
        assert!(q_bytes(&m(), t) > kv_bytes(&m(), t, p2));
    }

    #[test]
    fn appendix_a_totals_for_1m() {
        // GEMM = 2 * 405e9 * 1e6 = 8.1e17; ATTN = 0.5*4*T^2*D*L ~ 4.13e18.
        let t = 1_000_000;
        assert!((gemm_flops(&m(), t) - 8.1e17).abs() / 8.1e17 < 1e-9);
        let attn = attn_flops_total(&m(), t, 0);
        assert!((attn - 4.13e18).abs() / 4.13e18 < 0.01, "{attn:e}");
        let total = prefill_flops(&m(), t, 0);
        assert!((total - 4.9e18).abs() / 4.9e18 < 0.02, "{total:e}");
    }

    #[test]
    fn attn_flops_partial_matches_incremental_sum() {
        // The closed form equals summing per-token causal costs.
        let model = m();
        let (t, p) = (7, 13);
        let d = model.model_dim as f64;
        let expected: f64 = (0..t).map(|i| 4.0 * d * (p + i + 1) as f64).sum();
        assert!((attn_flops_layer(&model, t, p) - expected).abs() < 1e-3);
    }

    #[test]
    fn message_sizes_match_table5_config() {
        // CP4, T=3200, P=124800: per-GPU pass-KV message of 32000 tokens
        // (one KV head) = 16.4 MB; pass-Q message of 800 tokens (16 heads)
        // = 3.3 MB.
        let model = m();
        assert_eq!(
            kv_message_bytes(&model, 8, 32000),
            2.0 * 32000.0 * 128.0 * 2.0
        );
        assert_eq!(q_message_bytes(&model, 8, 800), 800.0 * 16.0 * 128.0 * 2.0);
        // All2All: 3 peers * 800 tokens * 16 heads * 129 * 2 B ~ 9.9 MB.
        let a2a = all2all_bytes(&model, 8, 4, 800);
        assert!((a2a - 3.0 * 800.0 * 16.0 * 129.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn zero_token_costs_are_zero() {
        let model = m();
        assert_eq!(gemm_flops(&model, 0), 0.0);
        assert_eq!(attn_flops_layer(&model, 0, 100), 0.0);
        assert_eq!(q_message_bytes(&model, 8, 0), 0.0);
        assert_eq!(all2all_bytes(&model, 8, 1, 100), 0.0); // single rank: no peers
    }
}
