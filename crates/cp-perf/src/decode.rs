//! Context-parallel decode (TTIT) model — batched ring pass-Q decode
//! (§3.6, Tables 6–8).
//!
//! Decode kernels are tiny, so unlike prefill nothing overlaps: the pass-Q
//! decode time is the *sum* of `N` attention ops, `N-1` Q SendRecvs and the
//! final All2All — which is why Table 8's "whole pass-Q" grows with CP size
//! even as each individual attention op shrinks, and why the paper
//! concludes CP is best deployed with prefill/decode disaggregation.

use serde::{Deserialize, Serialize};

use crate::schedule::DecodeStrategy;
use crate::tp::decode_attn_op_s;
use crate::{cost, HardwareSpec, ModelSpec};

/// Decode attention decomposition for one layer (Table 8's rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeAttnBreakdown {
    /// Context seen by each rank's attention kernel (`ctx / N`).
    pub effective_ctx: usize,
    /// One attention op, µs.
    pub attn_op_us: f64,
    /// All `N` attention iterations of the ring loop, µs.
    pub attn_loop_us: f64,
    /// All `N-1` Q SendRecvs, µs.
    pub sendrecv_us: f64,
    /// The final All2All of partial outputs, µs.
    pub all2all_us: f64,
    /// Whole pass-Q attention time, µs.
    pub whole_us: f64,
}

/// Per-layer decode attention breakdown for CP over `n_nodes` nodes with
/// `batch` sequences of `ctx` total context each.
pub fn cp_decode_attn(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    ctx: usize,
    batch: usize,
) -> DecodeAttnBreakdown {
    let n = n_nodes.max(1);
    let effective_ctx = ctx / n;
    // Queries are padded to a multiple of N (§4.3's noted decode overhead).
    let slots_per_rank = batch.div_ceil(n).max(1);
    let attn_op_us = decode_attn_op_s(model, hw, effective_ctx, slots_per_rank) * 1e6;
    if n == 1 {
        return DecodeAttnBreakdown {
            effective_ctx,
            attn_op_us,
            attn_loop_us: attn_op_us,
            sendrecv_us: 0.0,
            all2all_us: 0.0,
            whole_us: attn_op_us,
        };
    }
    let q_bytes = cost::q_message_bytes(model, hw.gpus_per_node, slots_per_rank);
    let sendrecv_us = (n - 1) as f64 * hw.inter_node_time_s(q_bytes) * 1e6;
    let a2a_bytes = cost::all2all_bytes(model, hw.gpus_per_node, n, slots_per_rank);
    // Latency-dominated at decode sizes; two network traversals
    // (scatter + the permuted gather of Algorithm 4).
    let all2all_us = (2.0 * hw.net_latency_us * 1e-6 + a2a_bytes / (hw.inter_bw_gbs * 1e9)) * 1e6;
    let attn_loop_us = n as f64 * attn_op_us;
    DecodeAttnBreakdown {
        effective_ctx,
        attn_op_us,
        attn_loop_us,
        sendrecv_us,
        all2all_us,
        whole_us: attn_loop_us + sendrecv_us + all2all_us,
    }
}

/// Per-layer decode attention decomposition for one [`DecodeStrategy`] —
/// the Appendix D breakdown extended from pass-Q to the full strategy
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyDecodeBreakdown {
    /// Total attention compute across the step, µs (all ring iterations
    /// for pass-Q, the one batched sweep for Helix, the owner's full-
    /// context op for TP-only).
    pub attn_us: f64,
    /// Query/KV movement before attention, µs: the `N-1` serialized Q
    /// SendRecvs (pass-Q), the single Q AllGather (Helix), or the KV
    /// shard AllGather (TP-only).
    pub gather_us: f64,
    /// The partial-output All2All merge, µs (zero for TP-only).
    pub all2all_us: f64,
    /// Whole per-layer decode attention time, µs.
    pub whole_us: f64,
}

/// Per-layer decode attention breakdown under `strategy` — the Helix /
/// TP-only extension of [`cp_decode_attn`]'s Table 8 model.
///
/// Pass-Q and Helix read the same KV bytes per rank (`batch` slots over
/// the `ctx / N` local shard); Helix replaces the `N-1` serialized
/// SendRecv launches with one AllGather carrying the same bytes. TP-only
/// attends the full context at each slot's owner and pays an `O(ctx)` KV
/// AllGather instead of the output merge.
pub fn strategy_decode_attn(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    ctx: usize,
    batch: usize,
    strategy: DecodeStrategy,
) -> StrategyDecodeBreakdown {
    let n = n_nodes.max(1);
    let slots_per_rank = batch.div_ceil(n).max(1);
    let passq = cp_decode_attn(model, hw, n_nodes, ctx, batch);
    match strategy {
        DecodeStrategy::PassQ => StrategyDecodeBreakdown {
            attn_us: passq.attn_loop_us,
            gather_us: passq.sendrecv_us,
            all2all_us: passq.all2all_us,
            whole_us: passq.whole_us,
        },
        DecodeStrategy::Helix => {
            let gather_us = if n == 1 {
                0.0
            } else {
                // One launch moving all N-1 peers' query slots.
                let q_bytes = cost::q_message_bytes(model, hw.gpus_per_node, slots_per_rank);
                hw.inter_node_time_s((n - 1) as f64 * q_bytes) * 1e6
            };
            let whole_us = passq.attn_loop_us + gather_us + passq.all2all_us;
            StrategyDecodeBreakdown {
                attn_us: passq.attn_loop_us,
                gather_us,
                all2all_us: passq.all2all_us,
                whole_us,
            }
        }
        DecodeStrategy::TpOnly => {
            // Owner attends its slots over the full context in one op.
            let attn_us = decode_attn_op_s(model, hw, ctx, slots_per_rank) * 1e6;
            let gather_us = if n == 1 {
                0.0
            } else {
                let shard_bytes = cost::kv_message_bytes(model, hw.gpus_per_node, ctx.div_ceil(n));
                hw.inter_node_time_s((n - 1) as f64 * shard_bytes) * 1e6
            };
            StrategyDecodeBreakdown {
                attn_us,
                gather_us,
                all2all_us: 0.0,
                whole_us: attn_us + gather_us,
            }
        }
    }
}

/// TTIT of context-parallel decode: per layer, weight-read-bound linears
/// (weights are TP8-replicated per node), two intra-node AllReduces, and
/// the whole pass-Q attention from [`cp_decode_attn`].
pub fn cp_ttit_s(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    ctx: usize,
    batch: usize,
) -> f64 {
    let layers = model.n_layers as f64;
    let linear_s =
        model.weight_total_bytes() / layers / hw.gpus_per_node as f64 / (hw.hbm_bw_gbs * 1e9);
    let ar_s = 2.0 * hw.ar_small_s(1);
    let attn = cp_decode_attn(model, hw, n_nodes, ctx, batch);
    layers * (linear_s + ar_s + attn.whole_us * 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    #[test]
    fn matches_table8_128k_batch1() {
        let hw = HardwareSpec::gtt();
        // TP8 column == CP1.
        let cp1 = cp_decode_attn(&m(), &hw, 1, 128_000, 1);
        assert_eq!(cp1.effective_ctx, 128_000);
        assert!(within(cp1.whole_us, 38.9, 0.25), "{}", cp1.whole_us);

        // CP2: attn op 22.0, loop 43.2, SendRecv 32.3, All2All 81.1,
        // whole 157.7.
        let cp2 = cp_decode_attn(&m(), &hw, 2, 128_000, 1);
        assert_eq!(cp2.effective_ctx, 64_000);
        assert!(within(cp2.attn_op_us, 22.0, 0.25), "{}", cp2.attn_op_us);
        assert!(within(cp2.sendrecv_us, 32.3, 0.25), "{}", cp2.sendrecv_us);
        assert!(within(cp2.all2all_us, 81.1, 0.25), "{}", cp2.all2all_us);
        assert!(within(cp2.whole_us, 157.7, 0.25), "{}", cp2.whole_us);

        // CP4: whole 238.6, SendRecv 105.7.
        let cp4 = cp_decode_attn(&m(), &hw, 4, 128_000, 1);
        assert!(within(cp4.sendrecv_us, 105.7, 0.25), "{}", cp4.sendrecv_us);
        assert!(within(cp4.whole_us, 238.6, 0.25), "{}", cp4.whole_us);
    }

    #[test]
    fn table8_shape_attn_shrinks_whole_grows() {
        let hw = HardwareSpec::gtt();
        for (ctx, batch) in [(128_000, 1), (32_000, 4)] {
            let ops: Vec<f64> = [1, 2, 4]
                .iter()
                .map(|&n| cp_decode_attn(&m(), &hw, n, ctx, batch).attn_op_us)
                .collect();
            assert!(ops[0] > ops[1] && ops[1] > ops[2], "{ops:?}");
            let whole: Vec<f64> = [2, 4]
                .iter()
                .map(|&n| cp_decode_attn(&m(), &hw, n, ctx, batch).whole_us)
                .collect();
            // Whole pass-Q time grows with CP size despite faster attention.
            assert!(whole[1] > whole[0], "{whole:?}");
            assert!(whole[0] > cp_decode_attn(&m(), &hw, 1, ctx, batch).whole_us);
        }
    }

    #[test]
    fn matches_table6_and_7_cp_ttit() {
        let hw = HardwareSpec::gtt();
        // Table 6: CP2 TTIT ~65.6-66.6ms across contexts.
        for ctx in [8_000usize, 32_000, 128_000] {
            let got = cp_ttit_s(&m(), &hw, 2, ctx, 1) * 1e3;
            assert!(within(got, 65.6, 0.15), "ctx={ctx}: {got:.1}");
        }
        // Table 7: CP4 71.31ms at 128K.
        let cp4 = cp_ttit_s(&m(), &hw, 4, 128_000, 1) * 1e3;
        assert!(within(cp4, 71.31, 0.12), "{cp4:.1}");
    }

    #[test]
    fn cp_decode_is_slower_than_tp8_decode() {
        // §4.3's conclusion: scaling CP hurts TTIT; TP8 decode on one node
        // beats CP2/CP4 decode.
        let hw = HardwareSpec::gtt();
        let tp8 = crate::tp::tp_ttit_s(&m(), &hw, 1, 128_000, 1);
        let cp2 = cp_ttit_s(&m(), &hw, 2, 128_000, 1);
        let cp4 = cp_ttit_s(&m(), &hw, 4, 128_000, 1);
        assert!(tp8 < cp2 && cp2 < cp4);
    }

    #[test]
    fn batch_padding_wastes_slots_for_small_batches() {
        let hw = HardwareSpec::gtt();
        // Batch 1 on CP4 still processes one slot per rank (4 padded
        // queries total), so the attention op cost does not shrink
        // below the one-slot cost.
        let b1 = cp_decode_attn(&m(), &hw, 4, 128_000, 1);
        let b4 = cp_decode_attn(&m(), &hw, 4, 128_000, 4);
        assert_eq!(b1.attn_op_us, b4.attn_op_us);
    }

    #[test]
    fn single_node_has_no_comm() {
        let hw = HardwareSpec::gtt();
        let b = cp_decode_attn(&m(), &hw, 1, 64_000, 2);
        assert_eq!(b.sendrecv_us, 0.0);
        assert_eq!(b.all2all_us, 0.0);
        assert_eq!(b.whole_us, b.attn_loop_us);
    }

    #[test]
    fn strategy_pass_q_matches_table8_model() {
        let hw = HardwareSpec::gtt();
        let passq = cp_decode_attn(&m(), &hw, 4, 128_000, 1);
        let s = strategy_decode_attn(&m(), &hw, 4, 128_000, 1, DecodeStrategy::PassQ);
        assert_eq!(s.gather_us, passq.sendrecv_us);
        assert_eq!(s.all2all_us, passq.all2all_us);
        assert_eq!(s.whole_us, passq.whole_us);
    }

    #[test]
    fn helix_collapses_the_sendrecv_chain() {
        let hw = HardwareSpec::gtt();
        for n in [2usize, 4, 8] {
            let passq = strategy_decode_attn(&m(), &hw, n, 128_000, 1, DecodeStrategy::PassQ);
            let helix = strategy_decode_attn(&m(), &hw, n, 128_000, 1, DecodeStrategy::Helix);
            // Same attention and merge; one gather launch instead of N-1.
            assert_eq!(helix.attn_us, passq.attn_us);
            assert_eq!(helix.all2all_us, passq.all2all_us);
            // At n=2 one AllGather equals the single hop; beyond that the
            // saved launches win.
            assert!(helix.gather_us <= passq.gather_us, "n={n}");
            if n > 2 {
                assert!(helix.whole_us < passq.whole_us, "n={n}");
            }
        }
    }

    #[test]
    fn tp_only_pays_for_the_context_it_moves() {
        let hw = HardwareSpec::gtt();
        // Long context: the KV AllGather dwarfs Helix's query traffic.
        let helix = strategy_decode_attn(&m(), &hw, 4, 128_000, 1, DecodeStrategy::Helix);
        let tp = strategy_decode_attn(&m(), &hw, 4, 128_000, 1, DecodeStrategy::TpOnly);
        assert!(tp.gather_us > 10.0 * helix.gather_us);
        assert!(tp.whole_us > helix.whole_us);
        // Single rank: TP-only is pure local attention.
        let solo = strategy_decode_attn(&m(), &hw, 1, 128_000, 1, DecodeStrategy::TpOnly);
        assert_eq!(solo.gather_us, 0.0);
        assert_eq!(solo.all2all_us, 0.0);
        assert_eq!(solo.whole_us, solo.attn_us);
    }
}
