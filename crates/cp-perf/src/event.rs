//! Discrete-event simulation of the ring-attention pipeline.
//!
//! The closed-form ring makespan used by [`crate::prefill`] assumes every
//! rank's per-iteration attention time is identical. This module simulates
//! the actual dependency structure — each rank has a *compute stream* and a
//! *communication stream*; block `j`'s compute can start only once the
//! block has been forwarded `j` hops around the ring — so we can (a) verify
//! the closed form for uniform stage times and (b) quantify the straggler
//! effect of *imbalanced* sharding, the ablation motivating §3.5.1.

use serde::{Deserialize, Serialize};

/// Result of simulating one ring loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSimResult {
    /// Time at which each rank finishes its last partial attention, µs.
    pub rank_finish_us: Vec<f64>,
    /// Pipeline makespan: `max(rank_finish_us)`, µs.
    pub makespan_us: f64,
    /// Per-rank total busy compute time, µs (makespan minus this is the
    /// rank's idle/exposed time).
    pub busy_us: Vec<f64>,
}

impl RingSimResult {
    /// Worst-rank idle time: makespan minus that rank's busy compute, µs.
    pub fn max_idle_us(&self) -> f64 {
        self.busy_us
            .iter()
            .map(|b| self.makespan_us - b)
            .fold(0.0, f64::max)
    }
}

/// Simulates a ring loop of `N = attn_us.len()` ranks.
///
/// `attn_us[k][j]` is rank `k`'s compute time for its `j`-th ring
/// iteration (the block originating at rank `(k - j) mod N`);
/// `sendrecv_us` is the transfer time of one hop. Semantics follow
/// Algorithm 2: at iteration `j` a rank forwards the block it just used
/// while computing on it, so block arrival at rank `k` for iteration `j`
/// depends on the predecessor having *received* (not computed) it.
///
/// # Panics
///
/// Panics if `attn_us` is empty or rows have unequal lengths ≠ `N`.
pub fn simulate_ring(attn_us: &[Vec<f64>], sendrecv_us: f64) -> RingSimResult {
    let n = attn_us.len();
    assert!(n > 0, "ring needs at least one rank");
    for row in attn_us {
        assert_eq!(row.len(), n, "each rank must run exactly N iterations");
    }

    // arrival[k][j]: when the data for rank k's iteration j is available.
    // send_done[k][j]: when rank k finishes forwarding that same block.
    let mut arrival = vec![vec![0.0f64; n]; n];
    let mut send_done = vec![vec![0.0f64; n]; n];
    // Iteration 0 uses the local block: available at t = 0.
    // Forwarding is serialized on each rank's comm stream.
    for j in 1..n {
        for k in 0..n {
            let prev = (k + n - 1) % n;
            // The predecessor forwards the block it received at its
            // iteration j-1 once its comm stream is free.
            let ready = arrival[prev][j - 1];
            let stream_free = if j >= 2 { send_done[prev][j - 2] } else { 0.0 };
            send_done[prev][j - 1] = ready.max(stream_free) + sendrecv_us;
            arrival[k][j] = send_done[prev][j - 1];
        }
    }

    let mut rank_finish_us = Vec::with_capacity(n);
    let mut busy_us = Vec::with_capacity(n);
    for k in 0..n {
        let mut t = 0.0f64;
        let mut busy = 0.0f64;
        for j in 0..n {
            t = t.max(arrival[k][j]) + attn_us[k][j];
            busy += attn_us[k][j];
        }
        rank_finish_us.push(t);
        busy_us.push(busy);
    }
    let makespan_us = rank_finish_us.iter().copied().fold(0.0, f64::max);
    RingSimResult {
        rank_finish_us,
        makespan_us,
        busy_us,
    }
}

/// The closed-form makespan for uniform stage times:
/// `N * attn + (N-1) * max(0, sendrecv - attn)`.
pub fn closed_form_uniform_us(n: usize, attn_us: f64, sendrecv_us: f64) -> f64 {
    n as f64 * attn_us + (n.saturating_sub(1)) as f64 * (sendrecv_us - attn_us).max(0.0)
}

/// Builds the per-(rank, iteration) attention-time matrix implied by a
/// *sharding profile*: `work[k]` is the relative causal work rank `k` owns
/// (e.g. from `cp_sharding::ShardPlan::causal_pairs_for` or its naive
/// counterpart). Iteration times are `work[k] / N` scaled so the *total*
/// work matches `n * n * attn_iter_us` — i.e. the same FLOPs as a balanced
/// ring whose per-iteration time is `attn_iter_us`.
pub fn attn_matrix_from_profile(work: &[u128], attn_iter_us: f64) -> Vec<Vec<f64>> {
    let n = work.len();
    let total: f64 = work.iter().map(|&w| w as f64).sum();
    if total == 0.0 {
        return vec![vec![0.0; n]; n];
    }
    let scale = n as f64 * n as f64 * attn_iter_us / total;
    work.iter()
        .map(|&w| vec![w as f64 * scale / n as f64; n])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, attn: f64) -> Vec<Vec<f64>> {
        vec![vec![attn; n]; n]
    }

    #[test]
    fn matches_closed_form_when_compute_bound() {
        // sendrecv < attn: fully hidden, makespan = N * attn.
        let r = simulate_ring(&uniform(4, 100.0), 60.0);
        assert!((r.makespan_us - closed_form_uniform_us(4, 100.0, 60.0)).abs() < 1e-9);
        assert!((r.makespan_us - 400.0).abs() < 1e-9);
    }

    #[test]
    fn matches_closed_form_when_comm_bound() {
        // sendrecv > attn: exposed communication each hop.
        let r = simulate_ring(&uniform(4, 50.0), 120.0);
        let expected = closed_form_uniform_us(4, 50.0, 120.0); // 200 + 3*70
        assert!((r.makespan_us - expected).abs() < 1e-9, "{}", r.makespan_us);
    }

    #[test]
    fn boundary_case_equal_times() {
        let r = simulate_ring(&uniform(8, 75.0), 75.0);
        assert!((r.makespan_us - 600.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_is_just_compute() {
        let r = simulate_ring(&uniform(1, 42.0), 999.0);
        assert_eq!(r.makespan_us, 42.0);
        assert_eq!(r.max_idle_us(), 0.0);
    }

    #[test]
    fn zero_comm_reduces_to_max_rank_work() {
        let attn = vec![vec![10.0, 20.0], vec![5.0, 5.0]];
        let r = simulate_ring(&attn, 0.0);
        assert_eq!(r.makespan_us, 30.0);
        assert_eq!(r.busy_us, vec![30.0, 10.0]);
        assert_eq!(r.max_idle_us(), 20.0);
    }

    #[test]
    fn straggler_inflates_makespan_beyond_balanced() {
        // Same total work, one slow rank: the ring waits for it.
        let n = 4;
        let balanced = simulate_ring(&uniform(n, 100.0), 10.0);
        let mut skewed = uniform(n, 75.0);
        skewed[2] = vec![175.0; n]; // total work unchanged: 3*75+175 = 400
        let strag = simulate_ring(&skewed, 10.0);
        assert!(strag.makespan_us > 1.6 * balanced.makespan_us);
    }

    #[test]
    fn naive_sharding_profile_is_slower_than_balanced() {
        // The §3.5.1 ablation in simulator form: causal work of naive
        // contiguous shards [1, 3, 5, 7] (quadratic triangle) vs the
        // balanced profile [4, 4, 4, 4].
        let attn_iter = 100.0;
        let balanced = attn_matrix_from_profile(&[4, 4, 4, 4], attn_iter);
        let naive = attn_matrix_from_profile(&[1, 3, 5, 7], attn_iter);
        let b = simulate_ring(&balanced, 20.0);
        let s = simulate_ring(&naive, 20.0);
        assert!((b.makespan_us - 400.0).abs() < 1e-6);
        // The rank with 7/4 of the mean work sets the pace: ~1.75x.
        assert!(s.makespan_us > 1.6 * b.makespan_us, "{}", s.makespan_us);
        assert!(s.max_idle_us() > b.max_idle_us());
    }

    #[test]
    fn profile_matrix_preserves_total_work() {
        let m = attn_matrix_from_profile(&[1, 3, 5, 7], 100.0);
        let total: f64 = m.iter().flatten().sum();
        assert!((total - 4.0 * 4.0 * 100.0).abs() < 1e-6);
        let zero = attn_matrix_from_profile(&[0, 0], 100.0);
        assert!(zero.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn makespan_monotone_in_sendrecv() {
        let attn = uniform(4, 50.0);
        let mut last = 0.0;
        for sr in [0.0, 25.0, 50.0, 75.0, 150.0] {
            let r = simulate_ring(&attn, sr);
            assert!(r.makespan_us >= last);
            last = r.makespan_us;
        }
    }

    #[test]
    #[should_panic(expected = "exactly N iterations")]
    fn ragged_matrix_panics() {
        simulate_ring(&[vec![1.0, 2.0], vec![1.0]], 0.0);
    }
}
