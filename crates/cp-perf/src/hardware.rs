//! Cluster hardware constants, calibrated against the paper's measurements.

use serde::{Deserialize, Serialize};

/// Hardware and calibration constants of an H100 inference cluster.
///
/// Peak numbers come from §4.1 and Appendix A of the paper (Grand Teton
/// hosts use power-limited 500 W H100s with 96 GB HBM2e at 2.4 TB/s and an
/// 800 TF/s BF16 peak). *Achieved* numbers are calibrated once against the
/// paper's own measurements and then reused for every experiment:
///
/// * `attn_tflops = 500` — Table 5 reports 414 µs per ring-loop attention
///   iteration at (T=3200, P=124800, CP4), which back-solves to ~500 TF/s;
///   Appendix A independently reports 502 TF/s achieved and 540 TF/s for
///   standalone FA3.
/// * `gemm_tflops = 600` — back-solved from the TP8 128K TTFT of 42.0 s
///   (Table 6) after subtracting attention and AllReduce time.
/// * `inter_bw_gbs = 26` (GTT) — Table 5's 627 µs SendRecv for a 16.4 MB
///   per-GPU KV message; the paper's stated peak is 50 GB/s (400 Gb/s).
///   For GTI the paper states ~3 GB/s achieved over front-end TCP.
/// * `net_latency_us = 35` — back-solved from the 166 µs pass-Q SendRecv of
///   a 3.3 MB message in Table 5.
/// * `ring_iter_overhead_us = 500` — per-ring-iteration ramp/tail and
///   wave-quantisation overhead; back-solved from the gap between the pure
///   roofline and the measured CP8/CP16 prefill latencies.
/// * `prefill_overhead_s = 0.3` — fixed per-request serving overhead,
///   back-solved from the T→0 intercept of Table 4's TTFT column.
/// * Decode constants (`launch_overhead_us`, `ar_small_*`) are back-solved
///   from Tables 6–8 (see `decode` module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Human-readable name.
    pub name: String,
    /// GPUs per node (the TP group size; 8 on Grand Teton).
    pub gpus_per_node: usize,
    /// Marketed peak BF16 TF/s per GPU (power-limited H100: 800).
    pub peak_tflops: f64,
    /// Achieved TF/s per GPU on large GEMMs.
    pub gemm_tflops: f64,
    /// Achieved TF/s per GPU inside attention kernels.
    pub attn_tflops: f64,
    /// HBM bandwidth per GPU, GB/s (HBM2e: 2400).
    pub hbm_bw_gbs: f64,
    /// HBM capacity per GPU, GB.
    pub hbm_capacity_gb: f64,
    /// Effective intra-node (NVLink) bandwidth per GPU for collectives,
    /// GB/s.
    pub intra_bw_gbs: f64,
    /// Achieved inter-node bandwidth per GPU, GB/s.
    pub inter_bw_gbs: f64,
    /// Fixed latency of one inter-node message, µs.
    pub net_latency_us: f64,
    /// Fixed overhead per ring-loop iteration, µs.
    pub ring_iter_overhead_us: f64,
    /// Fixed per-request prefill overhead, seconds.
    pub prefill_overhead_s: f64,
    /// Kernel-launch overhead per decode attention op, µs.
    pub launch_overhead_us: f64,
    /// Extra decode attention overhead per sequence in the batch, µs.
    pub per_seq_overhead_us: f64,
    /// Small-message intra-node AllReduce time (decode), µs.
    pub ar_small_intra_us: f64,
    /// Small-message inter-node AllReduce base time (decode), µs.
    pub ar_small_inter_base_us: f64,
    /// Small-message inter-node AllReduce per-node slope (decode), µs.
    pub ar_small_inter_per_node_us: f64,
}

impl HardwareSpec {
    /// Grand Teton Training: back-end RDMA at 400 Gb/s per GPU
    /// (~26 GB/s achieved).
    pub fn gtt() -> Self {
        HardwareSpec {
            name: "GTT (H100 x8, RDMA 400Gb/s)".to_string(),
            gpus_per_node: 8,
            peak_tflops: 800.0,
            gemm_tflops: 600.0,
            attn_tflops: 500.0,
            hbm_bw_gbs: 2400.0,
            hbm_capacity_gb: 96.0,
            intra_bw_gbs: 800.0,
            inter_bw_gbs: 26.0,
            net_latency_us: 35.0,
            ring_iter_overhead_us: 500.0,
            prefill_overhead_s: 0.3,
            launch_overhead_us: 10.0,
            per_seq_overhead_us: 8.0,
            ar_small_intra_us: 85.0,
            ar_small_inter_base_us: 58.0,
            ar_small_inter_per_node_us: 25.5,
        }
    }

    /// Grand Teton Inference: front-end TCP at 100 Gb/s per GPU (~3 GB/s
    /// achieved per rank, as the paper reports from GPU traces in §4.2.1).
    pub fn gti() -> Self {
        HardwareSpec {
            inter_bw_gbs: 3.0,
            net_latency_us: 50.0,
            name: "GTI (H100 x8, TCP 100Gb/s)".to_string(),
            ..HardwareSpec::gtt()
        }
    }

    /// An idealised H100-HBM3 host (700 W, 3.35 TB/s, 989 TF/s peak) for
    /// what-if sweeps.
    pub fn h100_hbm3() -> Self {
        HardwareSpec {
            name: "H100 HBM3 x8".to_string(),
            peak_tflops: 989.0,
            gemm_tflops: 740.0,
            attn_tflops: 620.0,
            hbm_bw_gbs: 3350.0,
            hbm_capacity_gb: 80.0,
            ..HardwareSpec::gtt()
        }
    }

    /// The achieved-GEMM fraction of arithmetic peak this spec models
    /// (`gemm_tflops / peak_tflops`; 0.75 for the paper-calibrated GTT).
    pub fn gemm_efficiency(&self) -> f64 {
        self.gemm_tflops / self.peak_tflops
    }

    /// Calibration hook: replaces the paper-calibrated `gemm_tflops` with
    /// `peak_tflops * efficiency`, where `efficiency` is a *measured*
    /// achieved-fraction-of-peak from a real GEMM harness (cp-bench's
    /// `gemm` binary reports the tiled+pool kernel's fraction of this
    /// host's arithmetic peak). The fraction transfers across hardware;
    /// the absolute GFLOP/s does not. Clamped to `(0, 1]`.
    #[must_use]
    pub fn with_measured_gemm_efficiency(mut self, efficiency: f64) -> Self {
        let eff = efficiency.clamp(f64::MIN_POSITIVE, 1.0);
        self.gemm_tflops = self.peak_tflops * eff;
        self
    }

    /// Effective seconds to move `bytes` between nodes (per-GPU link):
    /// fixed latency plus bandwidth term.
    pub fn inter_node_time_s(&self, bytes: f64) -> f64 {
        self.net_latency_us * 1e-6 + bytes / (self.inter_bw_gbs * 1e9)
    }

    /// Small-message AllReduce time in seconds for a TP group spanning
    /// `n_nodes` nodes (decode regime, latency-dominated).
    pub fn ar_small_s(&self, n_nodes: usize) -> f64 {
        if n_nodes <= 1 {
            self.ar_small_intra_us * 1e-6
        } else {
            (self.ar_small_inter_base_us + self.ar_small_inter_per_node_us * n_nodes as f64) * 1e-6
        }
    }

    /// Large-message hierarchical AllReduce time in seconds over
    /// `n_nodes` nodes of `gpus_per_node` GPUs: NVLink reduce-scatter /
    /// all-gather within the node plus a per-GPU inter-node ring on
    /// `bytes / gpus_per_node`.
    pub fn ar_large_s(&self, bytes: f64, n_nodes: usize) -> f64 {
        let g = self.gpus_per_node as f64;
        let intra = 2.0 * bytes * (g - 1.0) / g / (self.intra_bw_gbs * 1e9);
        if n_nodes <= 1 {
            return intra;
        }
        let n = n_nodes as f64;
        let inter = 2.0 * (bytes / g) * (n - 1.0) / n / (self.inter_bw_gbs * 1e9);
        intra + inter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sanity() {
        let gtt = HardwareSpec::gtt();
        assert_eq!(gtt.gpus_per_node, 8);
        assert!(gtt.attn_tflops < gtt.gemm_tflops);
        assert!(gtt.gemm_tflops < gtt.peak_tflops);
        let gti = HardwareSpec::gti();
        assert_eq!(gti.inter_bw_gbs, 3.0);
        // GTI differs from GTT only on the inter-node network.
        assert_eq!(gti.gpus_per_node, gtt.gpus_per_node);
        assert_eq!(gti.attn_tflops, gtt.attn_tflops);
    }

    #[test]
    fn measured_gemm_efficiency_recalibrates_the_roofline() {
        let gtt = HardwareSpec::gtt();
        assert!((gtt.gemm_efficiency() - 0.75).abs() < 1e-12);
        // Re-applying the spec's own efficiency is the identity.
        let same = gtt.clone().with_measured_gemm_efficiency(0.75);
        assert_eq!(same.gemm_tflops, gtt.gemm_tflops);
        // A lower measured fraction slows the modeled GEMMs; out-of-range
        // inputs clamp instead of producing zero or super-peak rates.
        let slow = gtt.clone().with_measured_gemm_efficiency(0.5);
        assert_eq!(slow.gemm_tflops, 400.0);
        assert!(gtt.clone().with_measured_gemm_efficiency(7.0).gemm_tflops <= gtt.peak_tflops);
        assert!(gtt.with_measured_gemm_efficiency(-1.0).gemm_tflops > 0.0);
    }

    #[test]
    fn inter_node_time_matches_table5_sendrecv() {
        // Table 5, 2.5% miss, CP4, pass-KV: the per-GPU message is one KV
        // head of (124800/4 + 3200/4) = 32000 tokens: 2 * 32000 * 128 * 2 B
        // = 16.4 MB, measured at 627 µs.
        let gtt = HardwareSpec::gtt();
        let bytes = 2.0 * 32000.0 * 128.0 * 2.0;
        let t_us = gtt.inter_node_time_s(bytes) * 1e6;
        assert!((t_us - 627.0).abs() / 627.0 < 0.1, "{t_us} vs 627");
        // pass-Q message: 800 tokens * 16 heads * 128 * 2 B = 3.3 MB,
        // measured at 166 µs.
        let qbytes = 800.0 * 16.0 * 128.0 * 2.0;
        let tq_us = gtt.inter_node_time_s(qbytes) * 1e6;
        assert!((tq_us - 166.0).abs() / 166.0 < 0.1, "{tq_us} vs 166");
    }

    #[test]
    fn ar_small_grows_with_nodes() {
        let gtt = HardwareSpec::gtt();
        let one = gtt.ar_small_s(1);
        let two = gtt.ar_small_s(2);
        let four = gtt.ar_small_s(4);
        assert!(one < two && two < four);
        // Back-solved values: ~85 µs intra, ~109 µs for 2 nodes, ~160 µs
        // for 4 nodes (Table 6/7 decode decomposition).
        assert!((one * 1e6 - 85.0).abs() < 1.0);
        assert!((two * 1e6 - 109.0).abs() < 2.0);
        assert!((four * 1e6 - 160.0).abs() < 2.0);
    }

    #[test]
    fn ar_large_hierarchical_shape() {
        let gtt = HardwareSpec::gtt();
        let bytes = 4.3e9; // 128K tokens * 16384 dim * 2 B
        let intra_only = gtt.ar_large_s(bytes, 1);
        // ~9.4 ms for the single-node NVLink AllReduce (TP8 prefill).
        assert!((intra_only * 1e3 - 9.4).abs() < 1.0, "{intra_only}");
        // Adding nodes adds the inter-node term monotonically.
        assert!(gtt.ar_large_s(bytes, 2) > intra_only);
        assert!(gtt.ar_large_s(bytes, 4) > gtt.ar_large_s(bytes, 2));
    }

    #[test]
    fn serde_roundtrip() {
        let h = HardwareSpec::gti();
        let json = serde_json::to_string(&h).unwrap();
        let back: HardwareSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
