//! Calibrated performance models of context-parallel and tensor-parallel
//! LLM inference on H100 clusters.
//!
//! The paper's evaluation runs on Meta's Grand Teton H100 hosts — hardware
//! this reproduction does not have. This crate substitutes a **roofline +
//! ring-pipeline model** of those clusters, calibrated against the paper's
//! own published measurements (see [`HardwareSpec`] field docs for the
//! provenance of every constant). The model reproduces, to within a few
//! percent, the paper's headline numbers:
//!
//! * TP8 full prefill of 128K tokens ≈ 42 s (Table 6),
//! * CP8 on GTT ≈ 5.85 s, CP16 ≈ 3.8 s for 128K (Fig. 6a / Fig. 8),
//! * CP16 1M-token prefill ≈ 77 s at ~502 TF/s/GPU (Fig. 8 / Appendix A),
//! * the per-ring-iteration SendRecv/ATTN/All2All breakdown of Table 5,
//! * the pass-KV ↔ pass-Q crossover near 5% KV-cache miss rate (Fig. 9).
//!
//! Components:
//!
//! * [`ModelSpec`] / [`HardwareSpec`] — model and cluster constants,
//! * [`cost`] — the closed-form communication/FLOP formulas of Tables 2–3,
//! * [`prefill`] — CP full/partial prefill TTFT with ring-overlap modelling,
//! * [`tp`] — the multi-node tensor-parallel baseline (hierarchical
//!   AllReduce, KV-head replication),
//! * [`decode`] — TTIT models for CP pass-Q decode and TP decode (Tables
//!   6–8),
//! * [`event`] — a discrete-event simulator of the ring pipeline that
//!   validates the closed forms and exposes straggler effects under
//!   imbalanced sharding,
//! * [`mfu`] — the Appendix A FLOPS-utilisation accounting.
//!
//! # Example
//!
//! ```
//! use cp_perf::{prefill, HardwareSpec, ModelSpec, RingVariant};
//!
//! let model = ModelSpec::llama3_405b();
//! let hw = HardwareSpec::gtt();
//! // 1M-token prefill on 16 nodes (128 GPUs): the paper reports 77 s.
//! let b = prefill::cp_prefill(&model, &hw, 16, 1_000_000, 0, RingVariant::PassKv);
//! assert!((b.total_s - 77.0).abs() / 77.0 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod decode;
pub mod event;
mod hardware;
pub mod memory;
pub mod mfu;
mod model;
pub mod prefill;
pub mod schedule;
pub mod serve;
pub mod tp;
pub mod trace;

pub use hardware::HardwareSpec;
pub use model::ModelSpec;
pub use prefill::{cp_prefill, PrefillBreakdown, RingIterCosts, RingVariant};
pub use schedule::{
    choose_decode_strategy, ranked_decode_strategies, DecodeStrategy, RingDirection,
    RingTopologyKind, ScheduleFamily, TopologySpec,
};
