//! HBM capacity model: how much context fits, and how CP's KV
//! distribution extends it (the paper's third motivation — "KV cache
//! distribution ... enabling larger batch sizes with the addition of more
//! CP ranks").

use serde::{Deserialize, Serialize};

use crate::{HardwareSpec, ModelSpec};

/// Per-GPU memory budget decomposition for a CP(+TP8) deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// CP nodes.
    pub n_nodes: usize,
    /// Weight bytes resident per GPU (TP-sharded within the node,
    /// replicated across CP nodes).
    pub weights_per_gpu: f64,
    /// KV-cache bytes per token per GPU (this GPU's share of the heads
    /// and, across CP ranks, of the sequence).
    pub kv_per_token_per_gpu: f64,
    /// Bytes reserved for activations / fragmentation / runtime.
    pub reserve_per_gpu: f64,
    /// Bytes left for KV cache per GPU.
    pub kv_budget_per_gpu: f64,
    /// Maximum total cached tokens (context × batch) the deployment holds.
    pub max_cached_tokens: usize,
}

/// Fraction of HBM held back for activations, CUDA graphs, fragmentation.
pub const DEFAULT_RESERVE_FRAC: f64 = 0.10;

/// Computes the memory budget of a CP deployment over `n_nodes` nodes of
/// `hw.gpus_per_node` GPUs with TP within each node.
///
/// KV per token per GPU is `2 * (N_KV / G) * D_H * e * L / N`: the GPU
/// stores its TP share of the heads for its CP rank's `1/N` of the
/// tokens.
pub fn memory_budget(model: &ModelSpec, hw: &HardwareSpec, n_nodes: usize) -> MemoryBudget {
    let n = n_nodes.max(1);
    let g = hw.gpus_per_node as f64;
    let weights_per_gpu = model.weight_total_bytes() / g;
    let hbm = hw.hbm_capacity_gb * 1e9;
    let reserve_per_gpu = hbm * DEFAULT_RESERVE_FRAC;
    let kv_budget_per_gpu = (hbm - weights_per_gpu - reserve_per_gpu).max(0.0);
    // Per cached token, each GPU holds its head share; the token itself
    // lands on one CP rank, so per-GPU-per-token cost *for tokens this
    // rank holds* is kv_bytes_per_token / G. Across the deployment, the
    // total KV capacity is what matters:
    let kv_per_token_per_gpu = model.kv_bytes_per_token() / g;
    let per_rank_tokens = if kv_per_token_per_gpu > 0.0 {
        kv_budget_per_gpu / kv_per_token_per_gpu
    } else {
        0.0
    };
    MemoryBudget {
        n_nodes: n,
        weights_per_gpu,
        kv_per_token_per_gpu,
        reserve_per_gpu,
        kv_budget_per_gpu,
        max_cached_tokens: (per_rank_tokens * n as f64) as usize,
    }
}

/// Maximum single-sequence context length servable at the given batch
/// size (tokens are spread evenly over CP ranks by load-balanced
/// sharding, so capacity divides by batch).
pub fn max_context(model: &ModelSpec, hw: &HardwareSpec, n_nodes: usize, batch: usize) -> usize {
    memory_budget(model, hw, n_nodes).max_cached_tokens / batch.max(1)
}

/// Minimum CP nodes needed to hold `context * batch` cached tokens.
pub fn min_nodes_for(model: &ModelSpec, hw: &HardwareSpec, context: usize, batch: usize) -> usize {
    let per_node = memory_budget(model, hw, 1).max_cached_tokens.max(1);
    (context * batch.max(1)).div_ceil(per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    #[test]
    fn weights_dominate_single_gpu_budget() {
        // FP8 405B over 8 GPUs: ~50.6 GB weights of 96 GB HBM.
        let b = memory_budget(&m(), &HardwareSpec::gtt(), 1);
        assert!(
            (b.weights_per_gpu - 50.6e9).abs() < 1e9,
            "{}",
            b.weights_per_gpu
        );
        assert!(b.kv_budget_per_gpu > 30e9 && b.kv_budget_per_gpu < 40e9);
    }

    #[test]
    fn kv_cost_per_token() {
        // 2 * 8 heads * 128 * 2B * 126 layers / 8 GPUs = 64.5 KB per
        // token per GPU.
        let b = memory_budget(&m(), &HardwareSpec::gtt(), 1);
        assert!((b.kv_per_token_per_gpu - 64_512.0).abs() < 1.0);
    }

    #[test]
    fn capacity_scales_linearly_with_nodes() {
        let hw = HardwareSpec::gtt();
        let c1 = memory_budget(&m(), &hw, 1).max_cached_tokens;
        let c4 = memory_budget(&m(), &hw, 4).max_cached_tokens;
        let c16 = memory_budget(&m(), &hw, 16).max_cached_tokens;
        assert!(
            (c4 as i64 - 4 * c1 as i64).unsigned_abs() < 8,
            "{c4} vs {}",
            4 * c1
        );
        assert!(
            (c16 as i64 - 16 * c1 as i64).unsigned_abs() < 32,
            "{c16} vs {}",
            16 * c1
        );
        // One node holds roughly half a million tokens of KV.
        assert!(c1 > 400_000 && c1 < 700_000, "{c1}");
    }

    #[test]
    fn million_token_context_fits_on_paper_configs() {
        // The paper runs 1M contexts on 8 and 16 nodes — both must fit,
        // with capacity to spare on 16.
        let hw = HardwareSpec::gtt();
        assert!(max_context(&m(), &hw, 8, 1) >= 1_000_000);
        assert!(max_context(&m(), &hw, 16, 2) >= 1_000_000);
        // Two nodes is the memory floor for 1M (latency wants more).
        let need = min_nodes_for(&m(), &hw, 1_000_000, 1);
        assert!(need <= 2, "{need}");
        assert!(min_nodes_for(&m(), &hw, 1_000_000, 8) >= 8);
    }

    #[test]
    fn batch_divides_context() {
        let hw = HardwareSpec::gtt();
        let c_b1 = max_context(&m(), &hw, 4, 1);
        let c_b4 = max_context(&m(), &hw, 4, 4);
        assert_eq!(c_b1 / 4, c_b4);
    }

    #[test]
    fn hbm3_has_less_kv_room_than_gtt() {
        // 80 GB HBM3 vs 96 GB HBM2e: less capacity despite more bandwidth
        // (the trade-off §4.1 notes about the power-limited fleet).
        let gtt = memory_budget(&m(), &HardwareSpec::gtt(), 1);
        let hbm3 = memory_budget(&m(), &HardwareSpec::h100_hbm3(), 1);
        assert!(hbm3.kv_budget_per_gpu < gtt.kv_budget_per_gpu);
    }

    #[test]
    fn small_model_leaves_more_room() {
        let hw = HardwareSpec::gtt();
        let big = memory_budget(&m(), &hw, 1).max_cached_tokens;
        let small = memory_budget(&ModelSpec::llama3_8b(), &hw, 1).max_cached_tokens;
        assert!(small > 4 * big);
    }
}
