//! Model FLOPS utilisation accounting (Appendix A).

use serde::{Deserialize, Serialize};

use crate::{cost, HardwareSpec, ModelSpec};

/// FLOPS-utilisation report for a prefill run (Appendix A's accounting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfuReport {
    /// Total GEMM FLOPs.
    pub gemm_flops: f64,
    /// Total attention FLOPs (causal).
    pub attn_flops: f64,
    /// Total FLOPs.
    pub total_flops: f64,
    /// Achieved TF/s per GPU.
    pub achieved_tflops_per_gpu: f64,
    /// Achieved / standalone-kernel TF/s (the paper's "parallelization
    /// efficiency", 93% for 1M on 128 GPUs vs standalone FA3's 540).
    pub parallelization_efficiency: f64,
    /// Achieved / peak TF/s (the paper's ~63% FLOPS utilisation against
    /// the 800 TF/s power-limited peak).
    pub mfu: f64,
}

/// Standalone FlashAttention-3 throughput on one H100 for the per-GPU
/// chunk size (8K of a 1M context over 128 GPUs), from Appendix A.
pub const STANDALONE_FA3_TFLOPS: f64 = 540.0;

/// Computes the Appendix A utilisation report for a full prefill of `t`
/// tokens that took `seconds` on `n_gpus` GPUs.
pub fn mfu_report(
    model: &ModelSpec,
    hw: &HardwareSpec,
    t: usize,
    n_gpus: usize,
    seconds: f64,
) -> MfuReport {
    let gemm = cost::gemm_flops(model, t);
    let attn = cost::attn_flops_total(model, t, 0);
    let total = gemm + attn;
    let achieved = total / seconds / n_gpus as f64 / 1e12;
    MfuReport {
        gemm_flops: gemm,
        attn_flops: attn,
        total_flops: total,
        achieved_tflops_per_gpu: achieved,
        parallelization_efficiency: achieved / STANDALONE_FA3_TFLOPS,
        mfu: achieved / hw.peak_tflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_1m_numbers() {
        // "With 77 seconds for 1M context length using 128 H100 GPUs, each
        // H100 achieves 4.9e18/77/128 = 502 TF/sec", 93% parallelization
        // efficiency, ~63% utilisation of the 800 TF/s peak.
        let model = ModelSpec::llama3_405b();
        let hw = HardwareSpec::gtt();
        let r = mfu_report(&model, &hw, 1_000_000, 128, 77.0);
        assert!((r.gemm_flops - 8.1e17).abs() / 8.1e17 < 1e-6);
        assert!((r.attn_flops - 4.13e18).abs() / 4.13e18 < 0.01);
        assert!(
            (r.achieved_tflops_per_gpu - 502.0).abs() < 10.0,
            "{}",
            r.achieved_tflops_per_gpu
        );
        assert!((r.parallelization_efficiency - 0.93).abs() < 0.02);
        assert!((r.mfu - 0.63).abs() < 0.02, "{}", r.mfu);
    }

    #[test]
    fn attention_dominates_gemm_at_1m() {
        // Appendix A: attention FLOPs dominate at 1M context.
        let model = ModelSpec::llama3_405b();
        let hw = HardwareSpec::gtt();
        let r = mfu_report(&model, &hw, 1_000_000, 128, 77.0);
        assert!(r.attn_flops > 4.0 * r.gemm_flops);
        // While at 8K context GEMM dominates.
        let r8k = mfu_report(&model, &hw, 8_000, 8, 1.0);
        assert!(r8k.gemm_flops > r8k.attn_flops);
    }

    #[test]
    fn model_prediction_yields_high_mfu_end_to_end() {
        // The prefill model's own predicted 1M/CP16 latency must imply the
        // same ~0.6 MFU the paper reports — closing the loop between the
        // latency model and the utilisation accounting.
        let model = ModelSpec::llama3_405b();
        let hw = HardwareSpec::gtt();
        let predicted = crate::prefill::cp_full_prefill_s(&model, &hw, 16, 1_000_000);
        let r = mfu_report(&model, &hw, 1_000_000, 128, predicted);
        assert!(r.mfu > 0.55 && r.mfu < 0.72, "{}", r.mfu);
    }
}
