//! Model architecture constants (paper Table 9 and Llama3 herd configs).

use serde::{Deserialize, Serialize};

/// Architecture constants of a dense GQA transformer, as the performance
/// model needs them.
///
/// `act_bytes` is the element size of activations/KV on the wire and in the
/// KV cache (BF16 = 2 in the paper's serving setup); `weight_bytes` is the
/// stored weight precision (row-wise FP8 = 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Model (hidden) dimension `D`.
    pub model_dim: usize,
    /// FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Query heads `N_H`.
    pub n_heads: usize,
    /// Key/value heads `N_KV`.
    pub n_kv_heads: usize,
    /// Per-head dimension `D_H`.
    pub head_dim: usize,
    /// Total parameter count `W`.
    pub params: f64,
    /// Bytes per activation / KV element (`e` in the paper).
    pub act_bytes: f64,
    /// Bytes per stored weight element.
    pub weight_bytes: f64,
}

impl ModelSpec {
    /// Llama3 405B exactly as in Table 9: 126 layers, D = 16384,
    /// `N_H` = 128, `N_KV` = 8, FP8 weights, BF16 activations.
    pub fn llama3_405b() -> Self {
        ModelSpec {
            name: "llama3-405b".to_string(),
            n_layers: 126,
            model_dim: 16_384,
            ffn_dim: 53_248,
            n_heads: 128,
            n_kv_heads: 8,
            head_dim: 128,
            params: 405e9,
            act_bytes: 2.0,
            weight_bytes: 1.0,
        }
    }

    /// Llama3 70B (for scale-sensitivity experiments).
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "llama3-70b".to_string(),
            n_layers: 80,
            model_dim: 8_192,
            ffn_dim: 28_672,
            n_heads: 64,
            n_kv_heads: 8,
            head_dim: 128,
            params: 70e9,
            act_bytes: 2.0,
            weight_bytes: 1.0,
        }
    }

    /// Llama3 8B (for scale-sensitivity experiments).
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "llama3-8b".to_string(),
            n_layers: 32,
            model_dim: 4_096,
            ffn_dim: 14_336,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            params: 8e9,
            act_bytes: 2.0,
            weight_bytes: 1.0,
        }
    }

    /// Queries per KV head (`N_H / N_KV`) — 16 for Llama3 405B, the factor
    /// that makes pass-KV messages 16x smaller than pass-Q for full
    /// prefill.
    pub fn group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// The KV-cache miss-rate threshold `2 * N_KV / N_H` of Equation 1:
    /// below it, Q embeddings are smaller than KV embeddings.
    pub fn pass_q_miss_threshold(&self) -> f64 {
        2.0 * self.n_kv_heads as f64 / self.n_heads as f64
    }

    /// KV-cache bytes per token per layer: `2 * N_KV * D_H * e`.
    pub fn kv_bytes_per_token_layer(&self) -> f64 {
        2.0 * (self.n_kv_heads * self.head_dim) as f64 * self.act_bytes
    }

    /// KV-cache bytes per token over all layers.
    pub fn kv_bytes_per_token(&self) -> f64 {
        self.kv_bytes_per_token_layer() * self.n_layers as f64
    }

    /// Total weight bytes.
    pub fn weight_total_bytes(&self) -> f64 {
        self.params * self.weight_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_constants() {
        let m = ModelSpec::llama3_405b();
        assert_eq!(m.n_layers, 126);
        assert_eq!(m.model_dim, 16_384);
        assert_eq!(m.ffn_dim, 53_248);
        assert_eq!(m.n_heads, 128);
        assert_eq!(m.n_kv_heads, 8);
        // D = N_H * D_H must be consistent.
        assert_eq!(m.n_heads * m.head_dim, m.model_dim);
        assert_eq!(m.group_size(), 16);
    }

    #[test]
    fn pass_q_threshold_is_12_5_percent_for_405b() {
        // Section 4.2.4: "when the KV cache miss rate exceeds 12.5%
        // (= 2 * N_KV / N_H), pass-KV is always selected".
        let m = ModelSpec::llama3_405b();
        assert!((m.pass_q_miss_threshold() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn kv_bytes_per_token() {
        let m = ModelSpec::llama3_405b();
        // 2 * 8 heads * 128 dim * 2 bytes = 4096 B per token per layer.
        assert_eq!(m.kv_bytes_per_token_layer(), 4096.0);
        // ~516 KB per token across 126 layers: 1M tokens ~ 516 GB of KV,
        // which is why the paper needs multi-node KV distribution.
        assert_eq!(m.kv_bytes_per_token(), 4096.0 * 126.0);
    }

    #[test]
    fn other_presets_are_consistent() {
        for m in [ModelSpec::llama3_70b(), ModelSpec::llama3_8b()] {
            assert_eq!(m.n_heads * m.head_dim, m.model_dim, "{}", m.name);
            assert!(m.group_size() >= 1);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = ModelSpec::llama3_405b();
        let json = serde_json::to_string(&m).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
