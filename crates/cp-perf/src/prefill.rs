//! Context-parallel prefill latency model (TTFT) with ring overlap.
//!
//! Per transformer layer, a CP rank runs:
//!
//! 1. the TP8-sharded linear layers on its `T/N` tokens (two intra-node
//!    AllReduces),
//! 2. the ring loop: `N` partial attention computes, overlapped with `N-1`
//!    SendRecv transfers of KV (pass-KV) or Q (pass-Q) messages,
//! 3. for pass-Q, a final `All2All` returning partial outputs to their
//!    source ranks (exposed on the critical path — Appendix C).
//!
//! The ring-loop makespan uses the classic pipeline bound
//! `N*attn + (N-1)*max(0, sendrecv - attn)`, which the discrete-event
//! simulator in [`crate::event`] reproduces exactly for uniform stage
//! times.

use serde::{Deserialize, Serialize};

use crate::{cost, HardwareSpec, ModelSpec};

/// Which embedding circulates in the ring (§3.4–3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingVariant {
    /// Keys and values circulate; queries stay put (Algorithm 2).
    PassKv,
    /// Queries circulate; keys/values stay put, partial outputs return via
    /// All2All (Algorithm 3).
    PassQ,
}

impl std::fmt::Display for RingVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingVariant::PassKv => write!(f, "pass-KV"),
            RingVariant::PassQ => write!(f, "pass-Q"),
        }
    }
}

/// Per-ring-iteration costs, the quantities Table 5 reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingIterCosts {
    /// One SendRecv of the circulating message, µs (per iteration).
    pub sendrecv_us: f64,
    /// One partial-attention compute, µs (per iteration, per GPU).
    pub attn_us: f64,
    /// The pass-Q All2All at the end of the loop, µs (0 for pass-KV).
    pub all2all_us: f64,
}

/// TTFT decomposition of one context-parallel prefill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefillBreakdown {
    /// CP nodes.
    pub n_nodes: usize,
    /// New tokens `T`.
    pub t: usize,
    /// Cached tokens `P`.
    pub p: usize,
    /// Ring variant used.
    pub variant: RingVariant,
    /// Linear-layer (GEMM) seconds, summed over layers.
    pub gemm_s: f64,
    /// Attention compute seconds, summed over layers and ring iterations.
    pub attn_s: f64,
    /// Communication seconds *exposed* on the critical path (SendRecv not
    /// hidden under attention, plus the pass-Q All2All).
    pub exposed_comm_s: f64,
    /// Intra-node tensor-parallel AllReduce seconds.
    pub allreduce_s: f64,
    /// Fixed overheads (per-iteration ramp/tail + per-request serving).
    pub overhead_s: f64,
    /// End-to-end TTFT in seconds.
    pub total_s: f64,
    /// The per-iteration costs behind the totals (Table 5's columns).
    pub iter: RingIterCosts,
}

impl PrefillBreakdown {
    /// TTFT in milliseconds (the unit of Tables 4, 6, 7).
    pub fn ttft_ms(&self) -> f64 {
        self.total_s * 1e3
    }
}

/// Per-iteration ring costs for a CP prefill of `t` new tokens against `p`
/// cached tokens over `n_nodes` nodes.
pub fn ring_iter_costs(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    t: usize,
    p: usize,
    variant: RingVariant,
) -> RingIterCosts {
    let n = n_nodes.max(1);
    let g = hw.gpus_per_node;
    let t_rank = t.div_ceil(n);
    let p_rank = p.div_ceil(n);

    // Per-GPU attention compute of one ring iteration: the layer's causal
    // FLOPs divided by N ranks, N iterations and G GPUs.
    let attn_us =
        cost::attn_flops_layer(model, t, p) / (n * n * g) as f64 / (hw.attn_tflops * 1e12) * 1e6;

    if n == 1 {
        return RingIterCosts {
            sendrecv_us: 0.0,
            attn_us,
            all2all_us: 0.0,
        };
    }

    let (sendrecv_us, all2all_us) = match variant {
        RingVariant::PassKv => {
            // §3.5.2: messages are padded to max_i(P_i) + ceil(T/N) tokens.
            let msg_tokens = p_rank + t_rank;
            let bytes = cost::kv_message_bytes(model, g, msg_tokens);
            (hw.inter_node_time_s(bytes) * 1e6, 0.0)
        }
        RingVariant::PassQ => {
            let bytes = cost::q_message_bytes(model, g, t_rank);
            let a2a = cost::all2all_bytes(model, g, n, t_rank);
            (
                hw.inter_node_time_s(bytes) * 1e6,
                hw.inter_node_time_s(a2a) * 1e6,
            )
        }
    };
    RingIterCosts {
        sendrecv_us,
        attn_us,
        all2all_us,
    }
}

/// Full TTFT model for a context-parallel prefill (full prefill when
/// `p == 0`, persistent-KV partial prefill otherwise).
pub fn cp_prefill(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    t: usize,
    p: usize,
    variant: RingVariant,
) -> PrefillBreakdown {
    let n = n_nodes.max(1);
    let g = hw.gpus_per_node;
    let layers = model.n_layers as f64;
    let t_rank = t.div_ceil(n);

    // Linear layers: compute-bound on large T, weight-read-bound on tiny T.
    let gemm_compute_layer =
        2.0 * (model.params / layers) * t_rank as f64 / (g as f64 * hw.gemm_tflops * 1e12);
    let weight_read_layer = model.weight_total_bytes() / layers / g as f64 / (hw.hbm_bw_gbs * 1e9);
    let gemm_layer_s = gemm_compute_layer.max(weight_read_layer);

    // Two intra-node AllReduces per layer on [T/N, D] activations.
    let ar_bytes = t_rank as f64 * model.model_dim as f64 * model.act_bytes;
    let ar_layer_s = 2.0 * hw.ar_large_s(ar_bytes, 1);

    let iter = ring_iter_costs(model, hw, n, t, p, variant);
    let attn_layer_s = n as f64 * iter.attn_us * 1e-6;
    let exposed_sr_layer_s =
        (n.saturating_sub(1)) as f64 * (iter.sendrecv_us - iter.attn_us).max(0.0) * 1e-6;
    let exposed_layer_s = exposed_sr_layer_s + iter.all2all_us * 1e-6;
    let ring_overhead_layer_s = n as f64 * hw.ring_iter_overhead_us * 1e-6;

    let gemm_s = gemm_layer_s * layers;
    let attn_s = attn_layer_s * layers;
    let exposed_comm_s = exposed_layer_s * layers;
    let allreduce_s = ar_layer_s * layers;
    let overhead_s = ring_overhead_layer_s * layers + hw.prefill_overhead_s;
    let total_s = gemm_s + attn_s + exposed_comm_s + allreduce_s + overhead_s;

    PrefillBreakdown {
        n_nodes: n,
        t,
        p,
        variant,
        gemm_s,
        attn_s,
        exposed_comm_s,
        allreduce_s,
        overhead_s,
        total_s,
        iter,
    }
}

/// Convenience: TTFT seconds for a full prefill of `t` tokens with pass-KV.
pub fn cp_full_prefill_s(model: &ModelSpec, hw: &HardwareSpec, n_nodes: usize, t: usize) -> f64 {
    cp_prefill(model, hw, n_nodes, t, 0, RingVariant::PassKv).total_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    #[test]
    fn matches_paper_gtt_full_prefill_latencies() {
        // Table 6 / §4.2.1 / Fig 8: TP8(=CP1) 42.0s, CP2 21.0s, CP4 10.95s,
        // CP8 5.85s, CP16 3.8s for 128K full prefill on GTT.
        let hw = HardwareSpec::gtt();
        let expect = [(1, 42.0), (2, 21.0), (4, 10.95), (8, 5.85), (16, 3.8)];
        for (n, exp) in expect {
            let got = cp_full_prefill_s(&m(), &hw, n, 128_000);
            assert!(within(got, exp, 0.10), "CP{n}: {got:.2} vs {exp}");
        }
    }

    #[test]
    fn matches_paper_million_token_prefill() {
        // Fig 8 / Appendix A: 1M tokens on CP16 in 77 s.
        let hw = HardwareSpec::gtt();
        let got = cp_full_prefill_s(&m(), &hw, 16, 1_000_000);
        assert!(within(got, 77.0, 0.05), "{got:.1} vs 77");
    }

    #[test]
    fn near_linear_scaling_at_128k() {
        // §4.2.1: latency halves as nodes double (sufficiently long ctx).
        let hw = HardwareSpec::gtt();
        let t1 = cp_full_prefill_s(&m(), &hw, 1, 128_000);
        let t8 = cp_full_prefill_s(&m(), &hw, 8, 128_000);
        let ratio = t1 / t8;
        assert!(ratio > 6.5 && ratio <= 8.0, "scaling ratio {ratio}");
    }

    #[test]
    fn gti_scales_to_four_nodes() {
        // Fig 6b: the TCP cluster (3 GB/s) still scales well to 4 nodes for
        // long contexts because pass-KV comm hides under attention.
        let hw = HardwareSpec::gti();
        let t1 = cp_full_prefill_s(&m(), &hw, 1, 128_000);
        let t4 = cp_full_prefill_s(&m(), &hw, 4, 128_000);
        assert!(t1 / t4 > 3.3, "GTI scaling {:.2}", t1 / t4);
        let b = cp_prefill(&m(), &hw, 4, 128_000, 0, RingVariant::PassKv);
        // pass-KV communication fully overlapped even at 3 GB/s.
        assert!(b.iter.sendrecv_us < b.iter.attn_us);
    }

    #[test]
    fn table5_iteration_breakdown() {
        // Table 5, CP4, T+P = 128000: at 2.5% miss (T=3200) pass-KV
        // SendRecv 627µs / ATTN 414µs; pass-Q SendRecv 166µs, All2All
        // 424µs. At 10% (T=12800) ATTN 1608µs.
        let hw = HardwareSpec::gtt();
        let kv = ring_iter_costs(&m(), &hw, 4, 3200, 124_800, RingVariant::PassKv);
        assert!(within(kv.attn_us, 414.0, 0.05), "attn {}", kv.attn_us);
        assert!(within(kv.sendrecv_us, 627.0, 0.10), "sr {}", kv.sendrecv_us);
        assert_eq!(kv.all2all_us, 0.0);

        let q = ring_iter_costs(&m(), &hw, 4, 3200, 124_800, RingVariant::PassQ);
        assert!(within(q.sendrecv_us, 166.0, 0.10), "q sr {}", q.sendrecv_us);
        assert!(within(q.all2all_us, 424.0, 0.10), "a2a {}", q.all2all_us);
        // ATTN identical across variants (Table 5 shows the same column).
        assert!((q.attn_us - kv.attn_us).abs() < 1e-9);

        let kv10 = ring_iter_costs(&m(), &hw, 4, 12_800, 115_200, RingVariant::PassKv);
        assert!(within(kv10.attn_us, 1608.0, 0.06), "attn {}", kv10.attn_us);
    }

    #[test]
    fn pass_q_wins_at_low_miss_rate_pass_kv_at_high() {
        // Fig 9: crossover near 5% miss rate (T=6400 of 128000) on CP4.
        let hw = HardwareSpec::gtt();
        let total = 128_000;
        for (t, kv_should_win) in [
            (1_280, false),  // 1%
            (3_200, false),  // 2.5%
            (12_800, true),  // 10%
            (64_000, true),  // 50%
            (128_000, true), // 100%
        ] {
            let p = total - t;
            let kv = cp_prefill(&m(), &hw, 4, t, p, RingVariant::PassKv).total_s;
            let q = cp_prefill(&m(), &hw, 4, t, p, RingVariant::PassQ).total_s;
            assert_eq!(
                kv < q,
                kv_should_win,
                "T={t}: pass-KV {kv:.3}s vs pass-Q {q:.3}s"
            );
        }
    }

    #[test]
    fn ttft_linear_in_miss_rate() {
        // §4.2.4: TTFT is linearly proportional to the miss rate. Check
        // that the marginal cost of doubling T roughly doubles the
        // T-dependent part.
        let hw = HardwareSpec::gtt();
        let total = 128_000;
        let at = |t: usize| cp_prefill(&m(), &hw, 4, t, total - t, RingVariant::PassKv).total_s;
        let base = at(12_800);
        let double = at(25_600);
        let quad = at(51_200);
        let inc1 = double - base;
        let inc2 = quad - double;
        assert!(within(inc2, 2.0 * inc1, 0.15), "{inc1} {inc2}");
    }

    #[test]
    fn single_node_has_no_ring_traffic() {
        let hw = HardwareSpec::gtt();
        let b = cp_prefill(&m(), &hw, 1, 8192, 0, RingVariant::PassKv);
        assert_eq!(b.iter.sendrecv_us, 0.0);
        assert_eq!(b.exposed_comm_s, 0.0);
        let q = cp_prefill(&m(), &hw, 1, 8192, 0, RingVariant::PassQ);
        assert_eq!(q.iter.all2all_us, 0.0);
    }

    #[test]
    fn tiny_prefill_is_weight_read_bound() {
        // With T=1 the linear layers cannot go faster than reading the FP8
        // weights from HBM once: >= 405GB / 8 GPUs / 2.4TB/s ~ 21 ms.
        let hw = HardwareSpec::gtt();
        let b = cp_prefill(&m(), &hw, 1, 1, 0, RingVariant::PassKv);
        assert!(b.gemm_s > 0.020, "{}", b.gemm_s);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let hw = HardwareSpec::gtt();
        let b = cp_prefill(&m(), &hw, 8, 100_000, 20_000, RingVariant::PassQ);
        let sum = b.gemm_s + b.attn_s + b.exposed_comm_s + b.allreduce_s + b.overhead_s;
        assert!((sum - b.total_s).abs() < 1e-12);
        assert!(b.ttft_ms() > 0.0);
    }

    #[test]
    fn display_variant() {
        assert_eq!(RingVariant::PassKv.to_string(), "pass-KV");
        assert_eq!(RingVariant::PassQ.to_string(), "pass-Q");
    }
}
