//! Analytic cost model for the ring *schedule families*: unidirectional
//! vs. bidirectional payload routing × flat vs. hierarchical
//! (topology-aware) link layout.
//!
//! The paper's ring (Algorithms 2–4) rotates payloads one direction
//! around a single flat ring, so every one of the `W-1` lockstep hops is
//! gated by the slowest link it crosses. Two refinements from follow-up
//! work change only the *routing*, not the math:
//!
//! * **Bidirectional rings** (TokenRing, arXiv:2412.20501) split each
//!   hop's payload into two halves sent simultaneously clockwise and
//!   counter-clockwise, halving per-link bytes per step whenever the two
//!   directions travel disjoint links.
//! * **Hierarchical rings** (TASP, arXiv:2509.26541) reorder the ring so
//!   all ranks of a node exchange over fast intra-node links between
//!   consecutive cross-node hops: of the `W-1` hops only `N-1` touch the
//!   slow fabric, vs. every hop for a flat ring laid across nodes.
//!
//! This module prices all four combinations with the same
//! latency-plus-bandwidth link model the rest of the crate uses, so the
//! Algorithm 1/5 heuristics can fold schedule-family selection into the
//! existing pass-KV/pass-Q choice. The concrete loops in `cp-core` are
//! bit-exact under every family; this model only decides which one is
//! fastest for a given `(T, P, topology)` operating point.

use crate::{HardwareSpec, ModelSpec, RingVariant};

/// Payload routing direction around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingDirection {
    /// Classic single-direction rotation (the paper's Algorithms 2–4).
    Uni,
    /// Half the payload each way (TokenRing-style).
    Bidi,
}

/// Physical layout of the ring across the node topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingTopologyKind {
    /// One flat ring in rank order.
    Flat,
    /// Intra-node rotation with one cross-node exchange per super-step.
    Hierarchical,
}

/// One of the four ring schedule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleFamily {
    /// Payload routing direction.
    pub direction: RingDirection,
    /// Link layout.
    pub topology: RingTopologyKind,
}

impl ScheduleFamily {
    /// All four families, in preference order for ties: simpler schedules
    /// first (uni before bidi, flat before hierarchical).
    pub const ALL: [ScheduleFamily; 4] = [
        ScheduleFamily {
            direction: RingDirection::Uni,
            topology: RingTopologyKind::Flat,
        },
        ScheduleFamily {
            direction: RingDirection::Bidi,
            topology: RingTopologyKind::Flat,
        },
        ScheduleFamily {
            direction: RingDirection::Uni,
            topology: RingTopologyKind::Hierarchical,
        },
        ScheduleFamily {
            direction: RingDirection::Bidi,
            topology: RingTopologyKind::Hierarchical,
        },
    ];

    /// The paper's default: unidirectional flat ring.
    pub const UNI_FLAT: ScheduleFamily = Self::ALL[0];

    /// Short display name, e.g. `"bidi-hier"`.
    pub fn name(&self) -> &'static str {
        match (self.direction, self.topology) {
            (RingDirection::Uni, RingTopologyKind::Flat) => "uni-flat",
            (RingDirection::Bidi, RingTopologyKind::Flat) => "bidi-flat",
            (RingDirection::Uni, RingTopologyKind::Hierarchical) => "uni-hier",
            (RingDirection::Bidi, RingTopologyKind::Hierarchical) => "bidi-hier",
        }
    }
}

/// The link topology a CP ring is scheduled onto: `nodes ×
/// ranks_per_node` ranks, fast intra-node links and slow cross-node
/// links, plus a per-message launch latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Number of nodes (hosts).
    pub nodes: usize,
    /// CP ranks per node.
    pub ranks_per_node: usize,
    /// Intra-node per-link bandwidth in GB/s.
    pub intra_gbs: f64,
    /// Cross-node per-link bandwidth in GB/s.
    pub cross_gbs: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl TopologySpec {
    /// A `nodes × ranks_per_node` topology with explicit link speeds.
    pub fn new(
        nodes: usize,
        ranks_per_node: usize,
        intra_gbs: f64,
        cross_gbs: f64,
        latency_us: f64,
    ) -> Self {
        TopologySpec {
            nodes,
            ranks_per_node,
            intra_gbs,
            cross_gbs,
            latency_us,
        }
    }

    /// A single-node (uniform-link) topology: every link runs at
    /// `gbs` GB/s, so hierarchical scheduling cannot help.
    pub fn uniform(world: usize, gbs: f64, latency_us: f64) -> Self {
        TopologySpec::new(1, world, gbs, gbs, latency_us)
    }

    /// Derives the CP-rank topology from a calibrated [`HardwareSpec`]:
    /// intra-node links at NVLink speed, cross-node at the achieved
    /// inter-node bandwidth, latency from the spec's network latency.
    pub fn from_hardware(hw: &HardwareSpec, nodes: usize, ranks_per_node: usize) -> Self {
        TopologySpec::new(
            nodes,
            ranks_per_node,
            hw.intra_bw_gbs,
            hw.inter_bw_gbs,
            hw.net_latency_us,
        )
    }

    /// Total CP ranks on the ring.
    pub fn world(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Whether the ring spans more than one node (so some links are slow).
    pub fn is_multinode(&self) -> bool {
        self.nodes > 1 && self.ranks_per_node >= 1
    }

    fn latency_s(&self) -> f64 {
        self.latency_us * 1e-6
    }

    fn intra_bytes_per_s(&self) -> f64 {
        self.intra_gbs * 1e9
    }

    fn cross_bytes_per_s(&self) -> f64 {
        self.cross_gbs * 1e9
    }
}

/// Per-hop circulating payload bytes per layer for one ring iteration of
/// `variant` at CP degree `world`: the pass-KV block is the rank's KV
/// shard (`2 e (T+P)/W N_KV d`), the pass-Q block is the rank's query
/// shard (`e T/W N_H d`). Matches the Table 2 volumes the concrete loops
/// meter on the wire.
pub fn hop_bytes_per_layer(
    model: &ModelSpec,
    variant: RingVariant,
    world: usize,
    t: usize,
    p: usize,
) -> f64 {
    let w = world.max(1) as f64;
    let d = model.head_dim as f64;
    match variant {
        RingVariant::PassKv => {
            2.0 * model.act_bytes * ((t + p) as f64 / w) * model.n_kv_heads as f64 * d
        }
        RingVariant::PassQ => model.act_bytes * (t as f64 / w) * model.n_heads as f64 * d,
    }
}

/// Per-hop circulating payload bytes per layer when the pass-KV block is
/// compressed to the INT8 wire format: each circulating `(token, head)`
/// vector travels as `d` one-byte codes plus one f32 scale, so a hop
/// carries `2 (T+P)/W N_KV (d + 4)` bytes independent of the model's
/// activation precision — a `4d/(d+4) ≈ 3.9×` reduction vs the f32 wire
/// at `d = 128`. Folding this into the roofline lets the schedule
/// heuristics price compressed hops: in comm-bound regimes the smaller
/// payload shifts family selection toward latency-dominated choices.
pub fn quant_kv_hop_bytes_per_layer(model: &ModelSpec, world: usize, t: usize, p: usize) -> f64 {
    let w = world.max(1) as f64;
    let d = model.head_dim as f64;
    2.0 * ((t + p) as f64 / w) * model.n_kv_heads as f64 * (d + 4.0)
}

/// Whether the family's forward and reverse payload streams travel
/// disjoint directed links, so splitting actually halves per-link bytes.
/// A 2-rank flat ring reuses the single channel pair; the 2×2
/// hierarchical grid is the degenerate case where every hop is a swap and
/// the reverse path retraces the forward links.
fn bidi_links_disjoint(spec: &TopologySpec, topology: RingTopologyKind) -> bool {
    match topology {
        RingTopologyKind::Flat => spec.world() > 2,
        RingTopologyKind::Hierarchical => spec.ranks_per_node >= 3 || spec.nodes >= 3,
    }
}

/// Wall-clock seconds of ring communication for one full rotation
/// (`W - 1` hops) of `payload_bytes` under `family` on `spec`.
///
/// The hops are lockstep, so each step costs `latency + bytes / link`
/// with the slowest link used that step:
///
/// * flat rings laid across nodes pay the cross-node link every step;
/// * hierarchical rings pay it only on the `N-1` cross-node exchanges,
///   running the remaining `N (g-1)` hops at intra-node speed;
/// * bidirectional variants move `bytes / 2` per direction when the two
///   directions are link-disjoint, and otherwise serialise both halves
///   over the shared links (no bandwidth win, one extra message launch).
pub fn comm_time_s(family: ScheduleFamily, spec: &TopologySpec, payload_bytes: f64) -> f64 {
    let world = spec.world();
    if world <= 1 {
        return 0.0;
    }
    let lat = spec.latency_s();
    let disjoint = bidi_links_disjoint(spec, family.topology);
    // Per-step cost over a link of `bw` bytes/s.
    let step = |bytes: f64, bw: f64| -> f64 {
        match family.direction {
            RingDirection::Uni => lat + bytes / bw,
            RingDirection::Bidi if disjoint => lat + (bytes / 2.0) / bw,
            RingDirection::Bidi => 2.0 * lat + bytes / bw,
        }
    };
    match family.topology {
        RingTopologyKind::Flat => {
            let bw = if spec.is_multinode() {
                spec.cross_bytes_per_s()
            } else {
                spec.intra_bytes_per_s()
            };
            (world - 1) as f64 * step(payload_bytes, bw)
        }
        RingTopologyKind::Hierarchical => {
            let n = spec.nodes as f64;
            let g = spec.ranks_per_node.saturating_sub(1) as f64;
            n * g * step(payload_bytes, spec.intra_bytes_per_s())
                + (spec.nodes.saturating_sub(1)) as f64
                    * step(payload_bytes, spec.cross_bytes_per_s())
        }
    }
}

/// Every family's predicted communication wall time, cheapest first
/// (stable under the [`ScheduleFamily::ALL`] tie-break order: simpler
/// schedules win exact ties).
pub fn ranked_families(spec: &TopologySpec, payload_bytes: f64) -> Vec<(ScheduleFamily, f64)> {
    let mut ranked: Vec<(ScheduleFamily, f64)> = ScheduleFamily::ALL
        .iter()
        .map(|&f| (f, comm_time_s(f, spec, payload_bytes)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Picks the fastest schedule family for circulating `payload_bytes` per
/// hop on `spec` — the topology-aware leg of the extended Algorithm 1/5
/// heuristics.
pub fn choose_family(spec: &TopologySpec, payload_bytes: f64) -> ScheduleFamily {
    ranked_families(spec, payload_bytes)
        .first()
        .map_or(ScheduleFamily::UNI_FLAT, |&(f, _)| f)
}

/// How a decode step distributes attention and the FFN across CP ranks.
///
/// All three strategies compute the same merged attention output (the
/// partial-softmax merge is exact), so selection is purely a performance
/// question — which the terms in [`decode_strategy_comm_s`] price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeStrategy {
    /// Helix-style decode: one AllGather replicates every rank's query
    /// slots, each rank attends the whole batch over its local KV shard,
    /// partials return via the All2All merge, and activations reshard to
    /// the TP layout for the FFN.
    Helix,
    /// The paper's Algorithm 4: queries rotate around the ring in `W-1`
    /// serialized SendRecv hops, then the All2All merge.
    PassQ,
    /// KV-gather decode: every rank AllGathers the batch's KV shards and
    /// each slot's owner attends the full context locally. No output
    /// exchange, but `O(T)` KV bytes move every step.
    TpOnly,
}

impl DecodeStrategy {
    /// All three strategies, in preference order for exact ties: Helix
    /// first (fewest serialized launches at `W > 1`), then the paper's
    /// pass-Q, then TP-only.
    pub const ALL: [DecodeStrategy; 3] = [
        DecodeStrategy::Helix,
        DecodeStrategy::PassQ,
        DecodeStrategy::TpOnly,
    ];

    /// Short display name, e.g. `"helix"`.
    pub fn name(&self) -> &'static str {
        match self {
            DecodeStrategy::Helix => "helix",
            DecodeStrategy::PassQ => "pass-q",
            DecodeStrategy::TpOnly => "tp-only",
        }
    }
}

/// Per-layer decode-step communication seconds for `strategy` on `spec`,
/// for a batch of `batch` sequences totalling `ctx_total` cached context
/// tokens across the batch.
///
/// Attention compute is strategy-invariant — every strategy reads
/// `batch · T/W` KV rows per rank per layer (pass-Q and Helix attend the
/// whole batch over the local shard; TP-only concentrates `batch/W` owned
/// slots over the full context) — so ranking the strategies only needs
/// the communication terms:
///
/// * **pass-Q** pays `W-1` *serialized* query hops plus the All2All of
///   partial outputs: `(W-1)(λ + q/bw) + λ + (W-1)·o/bw`;
/// * **Helix** collapses the hop chain into one AllGather launch:
///   `λ + (W-1)·q/bw + λ + (W-1)·o/bw` — strictly fewer launches for
///   `W > 2` and never more;
/// * **TP-only** moves the KV itself: `λ + (W-1) · 2e(T/W)·N_KV·d / bw`,
///   which is `O(T)` per step and only wins when the context is tiny —
///   degenerating to free local decode at `W = 1`, where pass-Q and
///   Helix still launch their merge collectives.
pub fn decode_strategy_comm_s(
    strategy: DecodeStrategy,
    model: &ModelSpec,
    spec: &TopologySpec,
    ctx_total: usize,
    batch: usize,
) -> f64 {
    let w = spec.world().max(1);
    let lat = spec.latency_s();
    let bw = if spec.is_multinode() {
        spec.cross_bytes_per_s()
    } else {
        spec.intra_bytes_per_s()
    };
    let d = model.head_dim as f64;
    let e = model.act_bytes;
    // Slots are padded to a multiple of W (§4.3's decode overhead).
    let slots = batch.div_ceil(w).max(1) as f64;
    // One origin's DecodeQ payload and its per-source partial outputs
    // (out rows plus one LSE per head).
    let q_bytes = e * slots * model.n_heads as f64 * d;
    let out_bytes = e * slots * model.n_heads as f64 * (d + 1.0);
    let hops = (w - 1) as f64;
    match strategy {
        DecodeStrategy::PassQ => {
            if w == 1 {
                return lat; // the self-delivered merge All2All still launches
            }
            hops * (lat + q_bytes / bw) + (lat + hops * out_bytes / bw)
        }
        DecodeStrategy::Helix => {
            // AllGather + All2All always launch, even self-delivered.
            2.0 * lat + hops * q_bytes / bw + hops * out_bytes / bw
        }
        DecodeStrategy::TpOnly => {
            if w == 1 {
                return 0.0; // pure local decode, no collectives issued
            }
            let kv_shard = 2.0 * e * (ctx_total as f64 / w as f64) * model.n_kv_heads as f64 * d;
            lat + hops * kv_shard / bw
        }
    }
}

/// Every decode strategy's predicted per-layer communication wall time,
/// cheapest first (stable under the [`DecodeStrategy::ALL`] tie-break
/// order, so Helix wins the exact `W = 2` tie with pass-Q).
pub fn ranked_decode_strategies(
    model: &ModelSpec,
    spec: &TopologySpec,
    ctx_total: usize,
    batch: usize,
) -> Vec<(DecodeStrategy, f64)> {
    let mut ranked: Vec<(DecodeStrategy, f64)> = DecodeStrategy::ALL
        .iter()
        .map(|&s| (s, decode_strategy_comm_s(s, model, spec, ctx_total, batch)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Picks the cheapest decode strategy for `(T, batch)` on `spec` — the
/// decode leg of `SchedulePolicy::Auto`.
pub fn choose_decode_strategy(
    model: &ModelSpec,
    spec: &TopologySpec,
    ctx_total: usize,
    batch: usize,
) -> DecodeStrategy {
    ranked_decode_strategies(model, spec, ctx_total, batch)
        .first()
        .map_or(DecodeStrategy::PassQ, |&(s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asym(nodes: usize, g: usize) -> TopologySpec {
        // Fast 200 GB/s intra links, slow 20 GB/s cross links, 10 us.
        TopologySpec::new(nodes, g, 200.0, 20.0, 10.0)
    }

    const MB: f64 = 1e6;

    #[test]
    fn bidi_flat_halves_the_bandwidth_term() {
        let spec = TopologySpec::uniform(4, 50.0, 0.0);
        let uni = comm_time_s(ScheduleFamily::ALL[0], &spec, 8.0 * MB);
        let bidi = comm_time_s(ScheduleFamily::ALL[1], &spec, 8.0 * MB);
        assert!((bidi - uni / 2.0).abs() < 1e-12, "{bidi} vs {uni}");
    }

    #[test]
    fn two_rank_ring_gets_no_bidi_win() {
        let spec = TopologySpec::uniform(2, 50.0, 5.0);
        let uni = comm_time_s(ScheduleFamily::ALL[0], &spec, MB);
        let bidi = comm_time_s(ScheduleFamily::ALL[1], &spec, MB);
        assert!(bidi > uni, "shared channel serialises both halves");
        assert_eq!(choose_family(&spec, MB), ScheduleFamily::UNI_FLAT);
    }

    #[test]
    fn hierarchical_beats_flat_on_asymmetric_links() {
        let spec = asym(2, 3);
        let flat = comm_time_s(ScheduleFamily::ALL[0], &spec, 8.0 * MB);
        let hier = comm_time_s(ScheduleFamily::ALL[2], &spec, 8.0 * MB);
        // Flat pays the 20 GB/s link 5 times; hier only once.
        assert!(hier < flat * 0.5, "hier {hier} flat {flat}");
    }

    #[test]
    fn degenerate_2x2_grid_gets_no_bidi_hier_win() {
        let spec = asym(2, 2);
        let uni_hier = comm_time_s(ScheduleFamily::ALL[2], &spec, MB);
        let bidi_hier = comm_time_s(ScheduleFamily::ALL[3], &spec, MB);
        assert!(bidi_hier > uni_hier, "fwd and rev share every link at 2x2");
    }

    #[test]
    fn bandwidth_bound_multinode_picks_bidi_hier() {
        let spec = asym(2, 3);
        assert_eq!(choose_family(&spec, 64.0 * MB).name(), "bidi-hier");
    }

    #[test]
    fn single_node_picks_bidi_flat() {
        let spec = TopologySpec::uniform(6, 100.0, 5.0);
        assert_eq!(choose_family(&spec, 64.0 * MB).name(), "bidi-flat");
    }

    #[test]
    fn ranked_families_orders_by_cost() {
        let ranked = ranked_families(&asym(3, 2), 16.0 * MB);
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn hop_bytes_match_table2_volumes() {
        let model = ModelSpec::llama3_405b();
        // Pass-KV: 2 * e * (T+P)/W * N_KV * d.
        let kv = hop_bytes_per_layer(&model, RingVariant::PassKv, 4, 1000, 3000);
        assert!((kv - 2.0 * 2.0 * 1000.0 * 8.0 * 128.0).abs() < 1e-6, "{kv}");
        // Pass-Q: e * T/W * N_H * d.
        let q = hop_bytes_per_layer(&model, RingVariant::PassQ, 4, 1000, 3000);
        assert!((q - 2.0 * 250.0 * 128.0 * 128.0).abs() < 1e-6, "{q}");
    }

    #[test]
    fn quant_hop_bytes_shrink_by_the_code_plus_scale_ratio() {
        let model = ModelSpec::llama3_405b();
        let f32_wire = 2.0 * 4.0 * 1000.0 * 8.0 * 128.0; // e = 4 on the wire
        let quant = quant_kv_hop_bytes_per_layer(&model, 4, 1000, 3000);
        assert!((quant - 2.0 * 1000.0 * 8.0 * 132.0).abs() < 1e-6, "{quant}");
        let ratio = f32_wire / quant;
        assert!((ratio - 4.0 * 128.0 / 132.0).abs() < 1e-9, "{ratio}");
        assert!(ratio > 3.8);
    }

    #[test]
    fn compressed_payload_cuts_comm_bound_time_by_the_wire_ratio() {
        // In a comm-bound regime (negligible latency) compression cuts
        // every family's ring time by the full 4d/(d+4) wire ratio and
        // leaves the family ranking unchanged — so Auto keeps its routing
        // choice and banks the byte reduction.
        let spec = asym(2, 3);
        let model = ModelSpec::llama3_405b();
        let f32_bytes =
            4.0 / model.act_bytes * hop_bytes_per_layer(&model, RingVariant::PassKv, 6, 60_000, 0);
        let quant_bytes = quant_kv_hop_bytes_per_layer(&model, 6, 60_000, 0);
        let no_lat = TopologySpec {
            latency_us: 0.0,
            ..spec
        };
        for family in ScheduleFamily::ALL {
            let full = comm_time_s(family, &no_lat, f32_bytes);
            let compressed = comm_time_s(family, &no_lat, quant_bytes);
            let speedup = full / compressed;
            assert!((speedup - 4.0 * 128.0 / 132.0).abs() < 1e-9, "{speedup}");
        }
        assert_eq!(
            choose_family(&spec, f32_bytes).name(),
            choose_family(&spec, quant_bytes).name()
        );
    }

    #[test]
    fn from_hardware_uses_calibrated_links() {
        let hw = HardwareSpec::gtt();
        let spec = TopologySpec::from_hardware(&hw, 2, 4);
        assert_eq!(spec.world(), 8);
        assert!(spec.intra_gbs > spec.cross_gbs);
    }

    #[test]
    fn single_rank_decode_prefers_tp_only() {
        // At CP=1 TP-only is pure local decode while pass-Q/Helix still
        // launch their merge collectives — the paper's "TP wins decode"
        // conclusion falls out of the latency terms.
        let model = ModelSpec::llama3_405b();
        let spec = TopologySpec::uniform(1, 100.0, 5.0);
        assert_eq!(
            choose_decode_strategy(&model, &spec, 128_000, 4),
            DecodeStrategy::TpOnly
        );
        assert_eq!(
            decode_strategy_comm_s(DecodeStrategy::TpOnly, &model, &spec, 128_000, 4),
            0.0
        );
    }

    #[test]
    fn helix_wins_multi_rank_long_context_decode() {
        let model = ModelSpec::llama3_405b();
        for world in [2usize, 4, 8] {
            let spec = TopologySpec::uniform(world, 100.0, 5.0);
            for ctx in [8_192usize, 65_536, 262_144] {
                assert_eq!(
                    choose_decode_strategy(&model, &spec, ctx, 4),
                    DecodeStrategy::Helix,
                    "world={world} ctx={ctx}"
                );
            }
        }
    }

    #[test]
    fn helix_ties_pass_q_at_two_ranks_and_beats_it_beyond() {
        let model = ModelSpec::llama3_405b();
        let two = TopologySpec::uniform(2, 100.0, 5.0);
        let helix2 = decode_strategy_comm_s(DecodeStrategy::Helix, &model, &two, 65_536, 4);
        let passq2 = decode_strategy_comm_s(DecodeStrategy::PassQ, &model, &two, 65_536, 4);
        assert!((helix2 - passq2).abs() < 1e-15, "{helix2} vs {passq2}");
        let four = TopologySpec::uniform(4, 100.0, 5.0);
        let helix4 = decode_strategy_comm_s(DecodeStrategy::Helix, &model, &four, 65_536, 4);
        let passq4 = decode_strategy_comm_s(DecodeStrategy::PassQ, &model, &four, 65_536, 4);
        // Same bytes either way; pass-Q pays W-1 serialized launches
        // where Helix pays two.
        assert!(helix4 < passq4, "{helix4} vs {passq4}");
        let lat = 5.0e-6;
        assert!((passq4 - helix4 - 2.0 * lat).abs() < 1e-12);
    }

    #[test]
    fn tp_only_decode_comm_scales_with_context() {
        let model = ModelSpec::llama3_405b();
        let spec = TopologySpec::uniform(4, 100.0, 5.0);
        let short = decode_strategy_comm_s(DecodeStrategy::TpOnly, &model, &spec, 1_024, 4);
        let long = decode_strategy_comm_s(DecodeStrategy::TpOnly, &model, &spec, 1_048_576, 4);
        assert!(long > 100.0 * short, "{short} vs {long}");
        // Helix comm is context-independent at decode.
        let h_short = decode_strategy_comm_s(DecodeStrategy::Helix, &model, &spec, 1_024, 4);
        let h_long = decode_strategy_comm_s(DecodeStrategy::Helix, &model, &spec, 1_048_576, 4);
        assert_eq!(h_short, h_long);
    }

    #[test]
    fn ranked_decode_strategies_orders_by_cost() {
        let model = ModelSpec::llama3_405b();
        let ranked = ranked_decode_strategies(&model, &asym(2, 2), 65_536, 8);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
