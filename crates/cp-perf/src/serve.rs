//! Serving-deployment simulation: co-located vs disaggregated
//! prefill/decode (the paper's §4.3 conclusion).
//!
//! The paper finds CP "best suited for improving prefill performance and
//! can be best leveraged with a serving system that decouples the
//! parallelization scheme for prefill and decode" (citing Mooncake /
//! DistServe); in a standalone deployment, CP improves TTFT at the cost
//! of decode regression, and long prefills head-of-line-block decode.
//! This module quantifies that with a small deterministic queueing
//! simulation driven by the calibrated latency models.

use serde::{Deserialize, Serialize};

use crate::{decode, prefill, tp, HardwareSpec, ModelSpec};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Prompt length (full prefill).
    pub prompt_tokens: usize,
    /// Response length (decode steps).
    pub decode_tokens: usize,
}

/// How the cluster is organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Deployment {
    /// One CP pool serves both phases; a request occupies the whole pool
    /// from prefill start to last decoded token (standalone deployment).
    Colocated {
        /// CP nodes in the pool.
        n_nodes: usize,
    },
    /// A CP prefill pool hands off to independent single-node TP8 decode
    /// replicas (Mooncake/DistServe-style disaggregation).
    Disaggregated {
        /// CP nodes in the prefill pool.
        prefill_nodes: usize,
        /// Independent decode replicas (one node each).
        decode_replicas: usize,
    },
}

/// Timing of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServedRequest {
    /// Time to first token (queueing + prefill), seconds.
    pub ttft_s: f64,
    /// Per-output-token latency during decode, seconds.
    pub ttit_s: f64,
    /// Completion time (absolute), seconds.
    pub finish_s: f64,
}

/// Aggregate results of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-request timings, in input order.
    pub requests: Vec<ServedRequest>,
    /// Mean TTFT, seconds.
    pub mean_ttft_s: f64,
    /// Worst TTFT, seconds.
    pub max_ttft_s: f64,
    /// Mean TTIT, seconds.
    pub mean_ttit_s: f64,
    /// Time the last request finishes, seconds.
    pub makespan_s: f64,
}

fn summarize(requests: Vec<ServedRequest>) -> ServeReport {
    let n = requests.len().max(1) as f64;
    let mean_ttft_s = requests.iter().map(|r| r.ttft_s).sum::<f64>() / n;
    let max_ttft_s = requests.iter().map(|r| r.ttft_s).fold(0.0, f64::max);
    let mean_ttit_s = requests.iter().map(|r| r.ttit_s).sum::<f64>() / n;
    let makespan_s = requests.iter().map(|r| r.finish_s).fold(0.0, f64::max);
    ServeReport {
        requests,
        mean_ttft_s,
        max_ttft_s,
        mean_ttit_s,
        makespan_s,
    }
}

/// Simulates serving `requests` (must be sorted by arrival) on the given
/// deployment, using the calibrated prefill/decode latency models.
///
/// # Panics
///
/// Panics if requests are not sorted by arrival time.
pub fn simulate(
    model: &ModelSpec,
    hw: &HardwareSpec,
    deployment: Deployment,
    requests: &[Request],
) -> ServeReport {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival"
    );
    match deployment {
        Deployment::Colocated { n_nodes } => {
            let mut busy_until = 0.0f64;
            let served = requests
                .iter()
                .map(|r| {
                    let prefill_s = prefill::cp_full_prefill_s(model, hw, n_nodes, r.prompt_tokens);
                    let ttit_s = decode::cp_ttit_s(
                        model,
                        hw,
                        n_nodes,
                        r.prompt_tokens + r.decode_tokens / 2,
                        1,
                    );
                    let start = busy_until.max(r.arrival_s);
                    let first_token = start + prefill_s;
                    let finish = first_token + ttit_s * r.decode_tokens as f64;
                    busy_until = finish; // decode blocks the whole pool
                    ServedRequest {
                        ttft_s: first_token - r.arrival_s,
                        ttit_s,
                        finish_s: finish,
                    }
                })
                .collect();
            summarize(served)
        }
        Deployment::Disaggregated {
            prefill_nodes,
            decode_replicas,
        } => {
            let mut prefill_busy = 0.0f64;
            let mut replica_busy = vec![0.0f64; decode_replicas.max(1)];
            let served = requests
                .iter()
                .map(|r| {
                    let prefill_s =
                        prefill::cp_full_prefill_s(model, hw, prefill_nodes, r.prompt_tokens);
                    let start = prefill_busy.max(r.arrival_s);
                    let first_token = start + prefill_s;
                    prefill_busy = first_token; // pool freed after prefill

                    // Decode on the earliest-free single-node replica.
                    let ttit_s =
                        tp::tp_ttit_s(model, hw, 1, r.prompt_tokens + r.decode_tokens / 2, 1);
                    let (idx, _) = replica_busy
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                        .expect("at least one replica");
                    let decode_start = replica_busy[idx].max(first_token);
                    let finish = decode_start + ttit_s * r.decode_tokens as f64;
                    replica_busy[idx] = finish;
                    ServedRequest {
                        ttft_s: first_token - r.arrival_s,
                        ttit_s,
                        finish_s: finish,
                    }
                })
                .collect();
            summarize(served)
        }
    }
}

/// A deterministic open-loop arrival pattern: `n` requests, one every
/// `gap_s` seconds, uniform prompt/decode lengths.
pub fn uniform_trace(
    n: usize,
    gap_s: f64,
    prompt_tokens: usize,
    decode_tokens: usize,
) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            arrival_s: i as f64 * gap_s,
            prompt_tokens,
            decode_tokens,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    #[test]
    fn single_request_has_no_queueing() {
        let hw = HardwareSpec::gtt();
        let reqs = uniform_trace(1, 0.0, 128_000, 100);
        let colo = simulate(&m(), &hw, Deployment::Colocated { n_nodes: 4 }, &reqs);
        let expected = prefill::cp_full_prefill_s(&m(), &hw, 4, 128_000);
        assert!((colo.mean_ttft_s - expected).abs() < 1e-9);
    }

    #[test]
    fn disaggregation_fixes_head_of_line_blocking() {
        // Decode-heavy traffic: in the co-located pool each request's
        // long decode blocks the next prefill; disaggregation overlaps
        // them, so TTFT collapses.
        let hw = HardwareSpec::gtt();
        let reqs = uniform_trace(6, 5.0, 64_000, 800);
        let colo = simulate(&m(), &hw, Deployment::Colocated { n_nodes: 4 }, &reqs);
        let disagg = simulate(
            &m(),
            &hw,
            Deployment::Disaggregated {
                prefill_nodes: 4,
                decode_replicas: 4,
            },
            &reqs,
        );
        assert!(
            disagg.max_ttft_s < 0.5 * colo.max_ttft_s,
            "disagg {:.1}s vs colo {:.1}s",
            disagg.max_ttft_s,
            colo.max_ttft_s
        );
        // And decode on TP8 replicas is also faster per token than CP4
        // decode (Table 7's TTIT column).
        assert!(disagg.mean_ttit_s < colo.mean_ttit_s);
    }

    #[test]
    fn colocated_is_fine_at_low_load() {
        // With arrivals slower than service, nobody queues and the two
        // deployments' TTFTs match (same CP prefill pool).
        let hw = HardwareSpec::gtt();
        let reqs = uniform_trace(3, 1_000.0, 128_000, 10);
        let colo = simulate(&m(), &hw, Deployment::Colocated { n_nodes: 8 }, &reqs);
        let disagg = simulate(
            &m(),
            &hw,
            Deployment::Disaggregated {
                prefill_nodes: 8,
                decode_replicas: 1,
            },
            &reqs,
        );
        assert!((colo.mean_ttft_s - disagg.mean_ttft_s).abs() < 1e-6);
    }

    #[test]
    fn more_prefill_nodes_cut_ttft_under_load() {
        let hw = HardwareSpec::gtt();
        let reqs = uniform_trace(5, 10.0, 128_000, 0);
        let small = simulate(&m(), &hw, Deployment::Colocated { n_nodes: 2 }, &reqs);
        let big = simulate(&m(), &hw, Deployment::Colocated { n_nodes: 8 }, &reqs);
        assert!(big.mean_ttft_s < 0.5 * small.mean_ttft_s);
        assert!(big.makespan_s < small.makespan_s);
    }

    #[test]
    fn replica_count_bounds_decode_throughput() {
        // One decode replica serializes completions; four roughly
        // quarter the makespan's decode tail.
        let hw = HardwareSpec::gtt();
        let reqs = uniform_trace(4, 0.1, 8_000, 2_000);
        let one = simulate(
            &m(),
            &hw,
            Deployment::Disaggregated {
                prefill_nodes: 2,
                decode_replicas: 1,
            },
            &reqs,
        );
        let four = simulate(
            &m(),
            &hw,
            Deployment::Disaggregated {
                prefill_nodes: 2,
                decode_replicas: 4,
            },
            &reqs,
        );
        assert!(four.makespan_s < 0.5 * one.makespan_s);
        // TTFT unaffected by the decode side.
        assert!((one.mean_ttft_s - four.mean_ttft_s).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_panic() {
        let hw = HardwareSpec::gtt();
        let reqs = vec![
            Request {
                arrival_s: 5.0,
                prompt_tokens: 10,
                decode_tokens: 1,
            },
            Request {
                arrival_s: 1.0,
                prompt_tokens: 10,
                decode_tokens: 1,
            },
        ];
        simulate(&m(), &hw, Deployment::Colocated { n_nodes: 1 }, &reqs);
    }

    #[test]
    fn uniform_trace_structure() {
        let t = uniform_trace(3, 2.0, 100, 5);
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].arrival_s, 4.0);
        assert!(t.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }
}
