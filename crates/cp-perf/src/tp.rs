//! Multi-node tensor-parallel baseline (§4.2.2).
//!
//! To parallelize Llama3 405B's 8 KV heads across more than 8 GPUs, the
//! paper replicates each KV head over `N_TP / N_KV` GPUs and spreads the
//! 128 query heads evenly; computation stays fully parallel but every
//! linear layer pays two AllReduces over activations, which become
//! inter-node (hierarchical) collectives past one node — the bottleneck
//! Figure 7 shows.

use serde::{Deserialize, Serialize};

use crate::{cost, HardwareSpec, ModelSpec};

/// TTFT decomposition of a multi-node tensor-parallel prefill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpPrefillBreakdown {
    /// Nodes in the TP group (`N_TP = nodes * gpus_per_node`).
    pub n_nodes: usize,
    /// Prefill tokens.
    pub t: usize,
    /// Linear-layer seconds.
    pub gemm_s: f64,
    /// Attention seconds.
    pub attn_s: f64,
    /// AllReduce seconds (2 per layer, hierarchical across nodes).
    pub allreduce_s: f64,
    /// Fixed overheads.
    pub overhead_s: f64,
    /// End-to-end TTFT seconds.
    pub total_s: f64,
}

impl TpPrefillBreakdown {
    /// TTFT in milliseconds.
    pub fn ttft_ms(&self) -> f64 {
        self.total_s * 1e3
    }
}

/// TTFT of a full prefill of `t` tokens on a TP group spanning `n_nodes`
/// nodes (TP8 for one node, TP16 for two, ...).
pub fn tp_prefill(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    t: usize,
) -> TpPrefillBreakdown {
    let n_gpus = (n_nodes.max(1) * hw.gpus_per_node) as f64;
    let layers = model.n_layers as f64;

    let gemm_compute = cost::gemm_flops(model, t) / (n_gpus * hw.gemm_tflops * 1e12);
    let weight_read = model.weight_total_bytes() / n_gpus / (hw.hbm_bw_gbs * 1e9);
    let gemm_s = gemm_compute.max(weight_read);

    let attn_s = cost::attn_flops_total(model, t, 0) / (n_gpus * hw.attn_tflops * 1e12);

    let ar_bytes = t as f64 * model.model_dim as f64 * model.act_bytes;
    let allreduce_s = 2.0 * hw.ar_large_s(ar_bytes, n_nodes) * layers;

    // Same per-layer fixed overhead as one CP ring iteration, plus the
    // per-request serving overhead (keeps TP8 == CP1 by construction).
    let overhead_s = layers * hw.ring_iter_overhead_us * 1e-6 + hw.prefill_overhead_s;
    let total_s = gemm_s + attn_s + allreduce_s + overhead_s;
    TpPrefillBreakdown {
        n_nodes: n_nodes.max(1),
        t,
        gemm_s,
        attn_s,
        allreduce_s,
        overhead_s,
        total_s,
    }
}

/// TTIT (per-token decode latency) of multi-node TP decode with CUDA
/// graphs: per layer, weight-read-bound linears, two small-message
/// AllReduces, and a flash-decode attention read of the full context for
/// this GPU's (replicated) KV head.
pub fn tp_ttit_s(
    model: &ModelSpec,
    hw: &HardwareSpec,
    n_nodes: usize,
    ctx: usize,
    batch: usize,
) -> f64 {
    let n_gpus = (n_nodes.max(1) * hw.gpus_per_node) as f64;
    let layers = model.n_layers as f64;
    let linear_s = model.weight_total_bytes() / layers / n_gpus / (hw.hbm_bw_gbs * 1e9);
    let ar_s = 2.0 * hw.ar_small_s(n_nodes.max(1));
    let attn_s = decode_attn_op_s(model, hw, ctx, batch);
    layers * (linear_s + ar_s + attn_s)
}

/// One decode attention op: HBM-bound read of `batch` sequences' KV for
/// one KV head over `ctx` tokens, plus launch overheads. Shared by the TP
/// and CP decode models (Table 8's "individual attention op").
pub fn decode_attn_op_s(model: &ModelSpec, hw: &HardwareSpec, ctx: usize, batch: usize) -> f64 {
    let kv_heads_per_gpu = (model.n_kv_heads as f64 / hw.gpus_per_node as f64).max(1.0);
    let bytes = batch as f64
        * ctx as f64
        * 2.0
        * kv_heads_per_gpu
        * model.head_dim as f64
        * model.act_bytes;
    bytes / (hw.hbm_bw_gbs * 1e9)
        + hw.launch_overhead_us * 1e-6
        + batch.saturating_sub(1) as f64 * hw.per_seq_overhead_us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ModelSpec {
        ModelSpec::llama3_405b()
    }

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    #[test]
    fn matches_table6_tp8_prefill() {
        let hw = HardwareSpec::gtt();
        // Table 6: TP8 TTFT 1740ms @ 8K, 7658ms @ 32K, 42010ms @ 128K.
        for (t, exp_ms) in [(8_000, 1_740.0), (32_000, 7_658.0), (128_000, 42_010.0)] {
            let got = tp_prefill(&m(), &hw, 1, t).ttft_ms();
            assert!(within(got, exp_ms, 0.15), "T={t}: {got:.0} vs {exp_ms}");
        }
    }

    #[test]
    fn matches_table7_multi_node_prefill() {
        let hw = HardwareSpec::gtt();
        // Table 7: TP16 29917ms, TP32 19841ms at 128K.
        let tp16 = tp_prefill(&m(), &hw, 2, 128_000).ttft_ms();
        assert!(within(tp16, 29_917.0, 0.12), "{tp16:.0}");
        let tp32 = tp_prefill(&m(), &hw, 4, 128_000).ttft_ms();
        assert!(within(tp32, 19_841.0, 0.12), "{tp32:.0}");
    }

    #[test]
    fn tp_scales_worse_than_cp() {
        // Figure 7: CP's scaling ratio stays near-linear; TP's flattens.
        let hw = HardwareSpec::gtt();
        let t = 128_000;
        let tp1 = tp_prefill(&m(), &hw, 1, t).total_s;
        let tp8 = tp_prefill(&m(), &hw, 8, t).total_s;
        let tp_ratio = tp1 / tp8;
        let cp1 = crate::prefill::cp_full_prefill_s(&m(), &hw, 1, t);
        let cp8 = crate::prefill::cp_full_prefill_s(&m(), &hw, 8, t);
        let cp_ratio = cp1 / cp8;
        assert!(cp_ratio > 6.5, "cp {cp_ratio}");
        assert!(tp_ratio < 4.0, "tp {tp_ratio}");
        assert!(cp_ratio > 1.8 * tp_ratio);
    }

    #[test]
    fn tp_allreduce_share_grows_with_nodes() {
        let hw = HardwareSpec::gtt();
        let share = |n| {
            let b = tp_prefill(&m(), &hw, n, 128_000);
            b.allreduce_s / b.total_s
        };
        assert!(share(2) > share(1));
        assert!(share(4) > share(2));
        assert!(share(8) > share(4));
    }

    #[test]
    fn matches_table6_and_7_ttit() {
        let hw = HardwareSpec::gtt();
        // Table 6: TP8 TTIT ~44.5-46.3ms across 8K..128K contexts.
        for (ctx, exp_ms) in [(8_000, 44.51), (32_000, 44.64), (128_000, 46.26)] {
            let got = tp_ttit_s(&m(), &hw, 1, ctx, 1) * 1e3;
            assert!(within(got, exp_ms, 0.12), "ctx={ctx}: {got:.1} vs {exp_ms}");
        }
        // Table 7: TP16 39.52ms, TP32 47.3ms at 128K.
        let tp16 = tp_ttit_s(&m(), &hw, 2, 128_000, 1) * 1e3;
        assert!(within(tp16, 39.52, 0.12), "{tp16:.1}");
        let tp32 = tp_ttit_s(&m(), &hw, 4, 128_000, 1) * 1e3;
        assert!(within(tp32, 47.3, 0.12), "{tp32:.1}");
    }

    #[test]
    fn ttit_nearly_flat_in_context_length() {
        // Table 6's observation: TTIT barely grows with context.
        let hw = HardwareSpec::gtt();
        let short = tp_ttit_s(&m(), &hw, 1, 8_000, 1);
        let long = tp_ttit_s(&m(), &hw, 1, 128_000, 1);
        assert!(long / short < 1.10);
    }

    #[test]
    fn decode_attn_op_matches_table8() {
        let hw = HardwareSpec::gtt();
        // Table 8: individual attention op, TP8: 38.9µs @ 128K B=1,
        // 60.1µs @ 32K B=4.
        let a = decode_attn_op_s(&m(), &hw, 128_000, 1) * 1e6;
        assert!(within(a, 38.9, 0.25), "{a:.1}");
        let b = decode_attn_op_s(&m(), &hw, 32_000, 4) * 1e6;
        assert!(within(b, 60.1, 0.25), "{b:.1}");
        // And it shrinks with effective context (the CP columns).
        let half = decode_attn_op_s(&m(), &hw, 64_000, 1) * 1e6;
        assert!(half < a);
    }

    #[test]
    fn breakdown_sums() {
        let hw = HardwareSpec::gtt();
        let b = tp_prefill(&m(), &hw, 2, 50_000);
        let sum = b.gemm_s + b.attn_s + b.allreduce_s + b.overhead_s;
        assert!((sum - b.total_s).abs() < 1e-12);
    }
}
