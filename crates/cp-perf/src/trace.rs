//! Chrome-trace export of the simulated ring pipeline.
//!
//! The paper diagnoses overlap by "inspecting the GPU trace" (§4.2.1);
//! this module gives the reproduction the same tool: a per-rank timeline
//! of compute and communication intervals from the discrete-event ring
//! simulation, exported in the Chrome tracing JSON format
//! (`chrome://tracing` / Perfetto). Compute lanes show the `N` partial
//! attention blocks; comm lanes show each forwarded hop — exposed
//! communication is visible as compute-lane gaps.

use serde::{Deserialize, Serialize};

/// One interval on a rank's compute or communication lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Rank the event belongs to.
    pub rank: usize,
    /// `"compute"` or `"comm"`.
    pub lane: String,
    /// Human-readable label (e.g. `attn block 2`).
    pub name: String,
    /// Start time, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Portion of the interval hidden under concurrent compute, µs.
    /// Always 0 for compute-lane events; for comm-lane events this is
    /// the overlapped share of the wire time (`dur_us` when the hop is
    /// fully hidden, 0 when fully exposed).
    pub overlap_us: f64,
}

/// A traced ring simulation: the makespan plus every interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingTrace {
    /// Pipeline makespan, µs.
    pub makespan_us: f64,
    /// All compute and comm intervals.
    pub events: Vec<TraceEvent>,
}

impl RingTrace {
    /// Serialises to the Chrome tracing "traceEvents" JSON format:
    /// one complete (`"ph": "X"`) event per interval, ranks as processes,
    /// lanes as threads.
    pub fn to_chrome_json(&self) -> String {
        let mut entries = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let tid = if e.lane == "compute" { 0 } else { 1 };
            entries.push(serde_json::json!({
                "name": e.name,
                "cat": e.lane,
                "ph": "X",
                "ts": e.start_us,
                "dur": e.dur_us,
                "pid": e.rank,
                "tid": tid,
                "args": { "overlap_us": e.overlap_us },
            }));
        }
        serde_json::to_string_pretty(&serde_json::json!({ "traceEvents": entries }))
            .expect("trace serialises")
    }

    /// Total busy compute time of a rank, µs.
    pub fn compute_busy_us(&self, rank: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.rank == rank && e.lane == "compute")
            .map(|e| e.dur_us)
            .sum()
    }

    /// Exposed (idle) time on a rank's compute lane: makespan minus busy.
    pub fn exposed_us(&self, rank: usize) -> f64 {
        self.makespan_us - self.compute_busy_us(rank)
    }
}

/// Runs the same dependency schedule as [`crate::event::simulate_ring`]
/// but records every compute and communication interval.
///
/// `attn_us[k][j]` is rank `k`'s compute time for ring iteration `j`;
/// `sendrecv_us` the per-hop transfer time.
///
/// # Panics
///
/// Panics if `attn_us` is empty or rows have unequal lengths ≠ `N`.
pub fn trace_ring(attn_us: &[Vec<f64>], sendrecv_us: f64) -> RingTrace {
    let n = attn_us.len();
    assert!(n > 0, "ring needs at least one rank");
    for row in attn_us {
        assert_eq!(row.len(), n, "each rank must run exactly N iterations");
    }

    // Identical recurrence to event::simulate_ring.
    let mut arrival = vec![vec![0.0f64; n]; n];
    let mut send_done = vec![vec![0.0f64; n]; n];
    let mut events = Vec::new();
    for j in 1..n {
        for k in 0..n {
            let prev = (k + n - 1) % n;
            let ready = arrival[prev][j - 1];
            let stream_free = if j >= 2 { send_done[prev][j - 2] } else { 0.0 };
            let start = ready.max(stream_free);
            send_done[prev][j - 1] = start + sendrecv_us;
            arrival[k][j] = send_done[prev][j - 1];
            events.push(TraceEvent {
                rank: prev,
                lane: "comm".to_string(),
                name: format!("send block {} -> rank {k}", (prev + n - j) % n),
                start_us: start,
                dur_us: sendrecv_us,
                overlap_us: 0.0, // filled in once compute intervals are placed
            });
        }
    }

    let mut makespan = 0.0f64;
    for k in 0..n {
        let mut t = 0.0f64;
        for j in 0..n {
            let start = t.max(arrival[k][j]);
            events.push(TraceEvent {
                rank: k,
                lane: "compute".to_string(),
                name: format!("attn block {}", (k + n - j) % n),
                start_us: start,
                dur_us: attn_us[k][j],
                overlap_us: 0.0,
            });
            t = start + attn_us[k][j];
        }
        makespan = makespan.max(t);
    }

    // A hop is hidden exactly where its wire interval runs concurrently
    // with the sending rank's compute lane; the remainder is exposed.
    let compute_spans: Vec<(usize, f64, f64)> = events
        .iter()
        .filter(|e| e.lane == "compute")
        .map(|e| (e.rank, e.start_us, e.start_us + e.dur_us))
        .collect();
    for e in events.iter_mut().filter(|e| e.lane == "comm") {
        let end = e.start_us + e.dur_us;
        e.overlap_us = compute_spans
            .iter()
            .filter(|&&(rank, _, _)| rank == e.rank)
            .map(|&(_, lo, hi)| (end.min(hi) - e.start_us.max(lo)).max(0.0))
            .sum();
    }

    RingTrace {
        makespan_us: makespan,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::simulate_ring;

    fn uniform(n: usize, attn: f64) -> Vec<Vec<f64>> {
        vec![vec![attn; n]; n]
    }

    #[test]
    fn trace_makespan_matches_simulator() {
        for (n, attn, sr) in [(4usize, 100.0, 60.0), (4, 50.0, 120.0), (8, 75.0, 75.0)] {
            let m = uniform(n, attn);
            let trace = trace_ring(&m, sr);
            let sim = simulate_ring(&m, sr);
            assert!(
                (trace.makespan_us - sim.makespan_us).abs() < 1e-9,
                "n={n} attn={attn} sr={sr}"
            );
        }
    }

    #[test]
    fn event_counts_and_lanes() {
        let n = 4;
        let trace = trace_ring(&uniform(n, 10.0), 5.0);
        let compute = trace.events.iter().filter(|e| e.lane == "compute").count();
        let comm = trace.events.iter().filter(|e| e.lane == "comm").count();
        // N compute blocks per rank; N-1 forwarded hops per rank.
        assert_eq!(compute, n * n);
        assert_eq!(comm, n * (n - 1));
    }

    #[test]
    fn compute_bound_has_no_exposure() {
        let trace = trace_ring(&uniform(4, 100.0), 10.0);
        for r in 0..4 {
            assert!(
                trace.exposed_us(r) < 1e-9,
                "rank {r}: {}",
                trace.exposed_us(r)
            );
        }
    }

    #[test]
    fn comm_bound_exposes_idle_time() {
        let (attn, sr, n) = (50.0, 120.0, 4usize);
        let trace = trace_ring(&uniform(n, attn), sr);
        // Closed form: exposure = (N-1) * (sr - attn) on every rank.
        let expected = (n - 1) as f64 * (sr - attn);
        for r in 0..n {
            assert!(
                (trace.exposed_us(r) - expected).abs() < 1e-9,
                "rank {r}: {}",
                trace.exposed_us(r)
            );
        }
    }

    #[test]
    fn events_never_overlap_within_a_lane() {
        let trace = trace_ring(&uniform(5, 33.0), 41.0);
        for rank in 0..5 {
            for lane in ["compute", "comm"] {
                let mut intervals: Vec<(f64, f64)> = trace
                    .events
                    .iter()
                    .filter(|e| e.rank == rank && e.lane == lane)
                    .map(|e| (e.start_us, e.start_us + e.dur_us))
                    .collect();
                intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                for w in intervals.windows(2) {
                    assert!(w[1].0 >= w[0].1 - 1e-9, "rank {rank} {lane}: {w:?} overlap");
                }
            }
        }
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let trace = trace_ring(&uniform(2, 10.0), 5.0);
        let json = trace.to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), trace.events.len());
        assert!(events.iter().all(|e| e["ph"] == "X"));
        assert!(events.iter().any(|e| e["cat"] == "comm"));
        assert!(events
            .iter()
            .all(|e| e["args"]["overlap_us"].as_f64().is_some()));
    }

    #[test]
    fn compute_bound_hops_are_fully_overlapped() {
        let trace = trace_ring(&uniform(4, 100.0), 10.0);
        for e in trace.events.iter().filter(|e| e.lane == "comm") {
            assert!(
                (e.overlap_us - e.dur_us).abs() < 1e-9,
                "compute-bound hop must hide entirely: {e:?}"
            );
        }
    }

    #[test]
    fn overlap_never_exceeds_hop_duration() {
        let trace = trace_ring(&uniform(4, 50.0), 120.0);
        for e in trace.events.iter().filter(|e| e.lane == "comm") {
            assert!(
                e.overlap_us >= -1e-9 && e.overlap_us <= e.dur_us + 1e-9,
                "{e:?}"
            );
        }
        for e in trace.events.iter().filter(|e| e.lane == "compute") {
            assert_eq!(e.overlap_us, 0.0);
        }
    }

    #[test]
    fn single_rank_trace() {
        let trace = trace_ring(&uniform(1, 42.0), 99.0);
        assert_eq!(trace.makespan_us, 42.0);
        assert_eq!(trace.events.len(), 1);
        assert!(trace.events.iter().all(|e| e.lane == "compute"));
    }
}
