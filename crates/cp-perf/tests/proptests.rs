//! Property-based sanity of the performance models: monotonicity,
//! positivity and conservation laws that must hold for *any* parameter
//! combination, not just the paper's configurations.

use cp_perf::event::{closed_form_uniform_us, simulate_ring};
use cp_perf::{cost, decode, memory, prefill, tp, HardwareSpec, ModelSpec, RingVariant};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::llama3_405b()),
        Just(ModelSpec::llama3_70b()),
        Just(ModelSpec::llama3_8b()),
    ]
}

fn hardware() -> impl Strategy<Value = HardwareSpec> {
    prop_oneof![
        Just(HardwareSpec::gtt()),
        Just(HardwareSpec::gti()),
        Just(HardwareSpec::h100_hbm3()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TTFT is strictly increasing in the number of new tokens.
    #[test]
    fn ttft_monotone_in_tokens(
        m in models(),
        hw in hardware(),
        n in 1usize..17,
        t in 1_000usize..500_000,
        extra in 1_000usize..100_000,
        p in 0usize..200_000,
    ) {
        let a = prefill::cp_prefill(&m, &hw, n, t, p, RingVariant::PassKv).total_s;
        let b = prefill::cp_prefill(&m, &hw, n, t + extra, p, RingVariant::PassKv).total_s;
        prop_assert!(b > a);
    }

    /// Every breakdown component is non-negative and they sum to the total.
    #[test]
    fn breakdown_components_consistent(
        m in models(),
        hw in hardware(),
        n in 1usize..17,
        t in 1usize..300_000,
        p in 0usize..300_000,
        pass_q in any::<bool>(),
    ) {
        let variant = if pass_q { RingVariant::PassQ } else { RingVariant::PassKv };
        let b = prefill::cp_prefill(&m, &hw, n, t, p, variant);
        for part in [b.gemm_s, b.attn_s, b.exposed_comm_s, b.allreduce_s, b.overhead_s] {
            prop_assert!(part >= 0.0);
        }
        let sum = b.gemm_s + b.attn_s + b.exposed_comm_s + b.allreduce_s + b.overhead_s;
        prop_assert!((sum - b.total_s).abs() < 1e-9);
    }

    /// For the paper's model at long contexts, more nodes never increases
    /// pass-KV TTFT. (Small models at high node counts legitimately
    /// regress — per-rank work shrinks below the fixed ring overheads,
    /// the same effect Figure 6a shows for 2K contexts.)
    #[test]
    fn more_nodes_never_hurt_long_prefill(t in 100_000usize..1_000_000) {
        let m = ModelSpec::llama3_405b();
        let hw = HardwareSpec::gtt();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16] {
            let s = prefill::cp_prefill(&m, &hw, n, t, 0, RingVariant::PassKv).total_s;
            prop_assert!(s <= last * 1.001, "n={n}: {s} vs {last}");
            last = s;
        }
    }

    /// The event simulator's makespan always matches the closed form for
    /// uniform stage times and never goes below pure compute.
    #[test]
    fn event_sim_bounds(
        n in 1usize..12,
        attn in 1.0f64..5_000.0,
        sr in 0.0f64..5_000.0,
    ) {
        let sim = simulate_ring(&vec![vec![attn; n]; n], sr);
        let closed = closed_form_uniform_us(n, attn, sr);
        prop_assert!((sim.makespan_us - closed).abs() < 1e-6 * closed.max(1.0));
        prop_assert!(sim.makespan_us >= n as f64 * attn - 1e-9);
    }

    /// Imbalance never speeds up the ring: any work redistribution with the
    /// same total is at least as slow as the balanced schedule.
    #[test]
    fn imbalance_never_helps(
        n in 2usize..7,
        skew in prop::collection::vec(1u128..20, 2..7),
        sr in 0.0f64..100.0,
    ) {
        let n = n.min(skew.len());
        let work = &skew[..n];
        let balanced = vec![1u128; n];
        let m_bal = cp_perf::event::attn_matrix_from_profile(&balanced, 100.0);
        let m_skew = cp_perf::event::attn_matrix_from_profile(work, 100.0);
        let bal = simulate_ring(&m_bal, sr).makespan_us;
        let skewed = simulate_ring(&m_skew, sr).makespan_us;
        prop_assert!(skewed >= bal - 1e-6, "{skewed} < {bal}");
    }

    /// Decode attention time decreases with CP size while whole pass-Q
    /// time (attention + comm) does not improve beyond CP1 — the Table 8
    /// shape. (At large batches the two converge: total KV bytes read are
    /// conserved across the ring loop, so we allow a small tolerance.)
    #[test]
    fn decode_shape_invariants(
        m in models(),
        ctx in 8_000usize..256_000,
        batch in 1usize..9,
    ) {
        let hw = HardwareSpec::gtt();
        let c1 = decode::cp_decode_attn(&m, &hw, 1, ctx, batch);
        let c2 = decode::cp_decode_attn(&m, &hw, 2, ctx, batch);
        let c4 = decode::cp_decode_attn(&m, &hw, 4, ctx, batch);
        prop_assert!(c2.attn_op_us <= c1.attn_op_us);
        prop_assert!(c4.attn_op_us <= c2.attn_op_us);
        // The whole-pass-Q regression is the paper's claim at its batch
        // sizes (1 and 4); at batch >= 8 per-sequence overheads amortize
        // and CP2 converges with CP1, so only the attn_op monotonicity
        // above is asserted there.
        if batch <= 4 {
            prop_assert!(c2.whole_us >= c1.whole_us, "{} < {}", c2.whole_us, c1.whole_us);
            prop_assert!(c4.whole_us > c1.whole_us);
        }
    }

    /// Memory capacity is monotone in nodes and inversely so in batch.
    #[test]
    fn capacity_monotonicity(
        m in models(),
        hw in hardware(),
        n in 1usize..16,
        batch in 1usize..8,
    ) {
        let a = memory::max_context(&m, &hw, n, batch);
        let b = memory::max_context(&m, &hw, n + 1, batch);
        prop_assert!(b >= a);
        let c = memory::max_context(&m, &hw, n, batch + 1);
        prop_assert!(c <= a);
    }

    /// Attention FLOPs closed form equals the per-token sum for any (T, P).
    #[test]
    fn attn_flops_closed_form(m in models(), t in 0usize..300, p in 0usize..300) {
        let d = m.model_dim as f64;
        let expected: f64 = (0..t).map(|i| 4.0 * d * (p + i + 1) as f64).sum();
        let got = cost::attn_flops_layer(&m, t, p);
        prop_assert!((got - expected).abs() <= 1e-6 * expected.max(1.0));
    }

    /// TP prefill AllReduce share grows with node count for any model.
    #[test]
    fn tp_allreduce_share_grows(m in models(), t in 16_000usize..256_000) {
        let hw = HardwareSpec::gtt();
        let share = |n: usize| {
            let b = tp::tp_prefill(&m, &hw, n, t);
            b.allreduce_s / b.total_s
        };
        prop_assert!(share(2) > share(1));
        prop_assert!(share(4) > share(2));
    }
}
