//! Persistent compute worker pool.
//!
//! The ring hot path used to pay a `std::thread::scope` spawn/join per
//! layer per hop (once in `cp_core::ring::map_seqs`, once more inside
//! `blocked_gqa_attention_with_threads`). A 126-layer forward at CP8 spawns
//! thousands of short-lived OS threads that way. [`ComputePool`] replaces
//! that with a fixed set of workers created once (per rank, owned by the
//! `Communicator`) and reused for every batch of jobs.
//!
//! Design:
//!
//! - Each worker owns an `mpsc` receiver (std channels are single-consumer,
//!   so there is no shared injector queue). A batch is an
//!   `Arc<Batch>` holding the jobs behind a mutex; [`ComputePool::run`]
//!   broadcasts the `Arc` to every worker and then *participates*, popping
//!   jobs itself until the queue is empty.
//! - Caller participation makes nested `run` calls deadlock-free: a job
//!   that itself calls `run` drains its own batch before blocking, so every
//!   claimed job completes without waiting on an idle worker.
//! - Jobs may borrow from the caller's stack (`'s` lifetime). This is sound
//!   because `run` does not return until every job has been executed *and
//!   dropped* (the pending latch is decremented only after
//!   `catch_unwind` consumes the closure), exactly the guarantee scoped
//!   threads provide. The one `unsafe` block in this workspace erases the
//!   lifetime to ship jobs across the channel; every other crate keeps
//!   `#![forbid(unsafe_code)]`.
//! - A panicking job is caught on the worker, recorded, and re-raised on
//!   the calling thread after the batch completes — same observable
//!   behavior as a panicking scoped thread.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A type-erased unit of work, already promoted to `'static`.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion state of one batch, guarded by [`Batch::state`].
struct BatchState {
    /// Jobs not yet executed-and-dropped.
    pending: usize,
    /// First panic payload observed while running this batch.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// One broadcast batch of jobs, shared between the caller and all workers.
struct Batch {
    jobs: Mutex<Vec<Job>>,
    state: Mutex<BatchState>,
    done: Condvar,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A poisoned lock only means another job panicked; the panic payload is
    // propagated through `BatchState::panic`, so keep the pool usable.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Batch {
    /// Pops and runs jobs until the queue is empty, decrementing the
    /// pending latch after each job is consumed.
    fn work_off(&self) {
        loop {
            let job = relock(self.jobs.lock()).pop();
            let Some(job) = job else { return };
            // `catch_unwind` consumes the closure whether it returns or
            // unwinds, so by the time it returns the job and everything it
            // borrowed are dropped — only then may `pending` fall.
            let outcome = catch_unwind(AssertUnwindSafe(job));
            let mut state = relock(self.state.lock());
            if let Err(payload) = outcome {
                state.panic.get_or_insert(payload);
            }
            state.pending -= 1;
            if state.pending == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// Promotes a scoped job to `'static` so it can cross the worker channel.
///
/// # Safety
///
/// The caller must not return until the job has been executed and dropped.
/// [`ComputePool::run`] guarantees this by blocking on the batch's pending
/// latch, which reaches zero only after every job was consumed.
unsafe fn erase<'s>(job: Box<dyn FnOnce() + Send + 's>) -> Job {
    // SAFETY: wide-pointer transmute between the same trait object type
    // differing only in lifetime; validity is the caller's contract above.
    unsafe { std::mem::transmute(job) }
}

/// A fixed set of persistent worker threads plus the calling thread.
///
/// `parallelism()` threads execute each batch: `parallelism() - 1` workers
/// and the caller of [`run`](ComputePool::run) itself.
pub struct ComputePool {
    injectors: Vec<Sender<Arc<Batch>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ComputePool {
    /// Creates a pool executing batches with `parallelism` total threads
    /// (`parallelism - 1` spawned workers; the caller is the last thread).
    /// `parallelism` of 0 or 1 spawns no workers and runs jobs inline.
    #[must_use]
    pub fn new(parallelism: usize) -> Self {
        let workers = parallelism.saturating_sub(1);
        let mut pool = ComputePool {
            injectors: Vec::with_capacity(workers),
            workers: Vec::with_capacity(workers),
        };
        for i in 0..workers {
            let (tx, rx): (Sender<Arc<Batch>>, Receiver<Arc<Batch>>) = mpsc::channel();
            let handle = std::thread::Builder::new()
                .name(format!("cp-pool-{i}"))
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        batch.work_off();
                    }
                })
                .expect("spawn cp-pool worker");
            pool.injectors.push(tx);
            pool.workers.push(handle);
        }
        pool
    }

    /// Total threads applied to a batch (workers plus the calling thread).
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.workers.len() + 1
    }

    /// The process-wide pool sized to `available_parallelism`, created on
    /// first use. Entry points that are not handed a per-rank pool (e.g.
    /// single-process attention kernels) fall back to this.
    #[must_use]
    pub fn global() -> &'static ComputePool {
        static GLOBAL: OnceLock<ComputePool> = OnceLock::new();
        GLOBAL.get_or_init(ComputePool::default)
    }

    /// Runs every job to completion, in parallel across the pool, blocking
    /// until all have finished. Jobs may borrow from the caller's stack.
    /// If any job panics, the first panic is re-raised here after the whole
    /// batch has completed.
    pub fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        if jobs.is_empty() {
            return;
        }
        if self.workers.is_empty() || jobs.len() == 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let pending = jobs.len();
        // SAFETY: this function blocks on the pending latch below and does
        // not return until every erased job has been executed and dropped,
        // so no job observes the end of 's.
        let jobs: Vec<Job> = jobs.into_iter().map(|j| unsafe { erase(j) }).collect();
        let batch = Arc::new(Batch {
            jobs: Mutex::new(jobs),
            state: Mutex::new(BatchState {
                pending,
                panic: None,
            }),
            done: Condvar::new(),
        });
        for injector in &self.injectors {
            // A send only fails if the worker exited, which happens solely
            // during pool teardown; the caller-participation loop below
            // still drains the batch in that case.
            let _ = injector.send(Arc::clone(&batch));
        }
        batch.work_off();
        let mut state = relock(batch.state.lock());
        while state.pending > 0 {
            state = relock(batch.done.wait(state));
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("parallelism", &self.parallelism())
            .finish()
    }
}

impl Default for ComputePool {
    /// A pool sized to the machine: `available_parallelism` total threads.
    fn default() -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ComputePool::new(n)
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.injectors.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn jobs_filling<'s>(slots: &'s mut [Option<usize>]) -> Vec<Box<dyn FnOnce() + Send + 's>> {
        slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let job: Box<dyn FnOnce() + Send + 's> = Box::new(move || *slot = Some(i * i));
                job
            })
            .collect()
    }

    #[test]
    fn runs_scoped_borrows_in_order_preserving_slots() {
        let pool = ComputePool::new(4);
        let mut slots = vec![None; 64];
        pool.run(jobs_filling(&mut slots));
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, Some(i * i));
        }
    }

    #[test]
    fn inline_pool_matches_parallel_pool() {
        let inline = ComputePool::new(1);
        assert_eq!(inline.parallelism(), 1);
        let mut slots = vec![None; 8];
        inline.run(jobs_filling(&mut slots));
        assert!(slots.iter().all(Option::is_some));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        ComputePool::new(2).run(Vec::new());
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = Arc::new(ComputePool::new(2));
        let counter = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = &counter;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                            job
                        })
                        .collect();
                    pool.run(inner);
                });
                job
            })
            .collect();
        pool.run(outer);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panic_in_job_propagates_after_batch_completes() {
        let pool = ComputePool::new(3);
        let finished = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let finished = &finished;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                job
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(jobs)));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        assert_eq!(finished.load(Ordering::SeqCst), 7);
        // The pool must stay usable after a panicking batch.
        let mut slots = vec![None; 4];
        pool.run(jobs_filling(&mut slots));
        assert!(slots.iter().all(Option::is_some));
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ComputePool::global();
        let b = ComputePool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.parallelism() >= 1);
    }
}
