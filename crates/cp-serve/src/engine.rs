//! The distributed full-model serving engine.

use std::sync::Mutex;

use cp_attention::PAD;
use cp_comm::{CommPlan, RankPlan, TrafficReport};
use cp_core::heuristics::{choose_variant, HeuristicKind, SystemContext};
use cp_core::ring::{
    ring_pass_kv_prefill, ring_pass_q_decode_kv, ring_pass_q_prefill_kv, run_ring_on, RankKv,
};
use cp_core::schedule::{decode_plan, pass_kv_plan, pass_q_plan};
use cp_core::{CoreError, DecodeSlot, LocalSeq, RingMsg, SeqKv, SeqQ};
use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_model::rope::apply_rope;
use cp_model::{rms_norm_on, Linear, Transformer};
use cp_perf::RingVariant;
use cp_pool::ComputePool;
use cp_sharding::shard_new_tokens;
use cp_tensor::Tensor;

/// The single conversation a `TransformerEngine` serves (one engine, one
/// session — the fused multi-sequence path is `cp-core`'s engine).
const SEQ: SeqId = SeqId(0);

/// Result of one serving operation (prefill turn or decode step).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Final activations of the new tokens, `[t, D]`, original order.
    pub activations: Tensor,
    /// Ring variant used for prefill (`None` for decode, which is always
    /// pass-Q per §3.6).
    pub variant: Option<RingVariant>,
    /// Fabric traffic of the operation (all layers).
    pub traffic: TrafficReport,
}

/// A full-model context-parallel serving engine: every rank owns one
/// paged KV cache **per transformer layer**; prefill and decode run the
/// whole layer stack distributed, with ring attention per layer.
///
/// See the crate docs for the exactness contract.
#[derive(Debug)]
pub struct TransformerEngine {
    model: Transformer,
    n_ranks: usize,
    /// `ranks[r]` holds rank `r`'s per-layer caches; each rank thread
    /// locks only its own entry during a fabric session.
    ranks: Vec<Mutex<Vec<PagedKvCache>>>,
    heuristic_ctx: SystemContext,
    len: usize,
    decode_step: usize,
    /// When set, every turn runs under a `CheckedFabric` that validates
    /// live traffic against the declared per-layer ring schedule.
    check_schedules: bool,
    /// Per-rank compute-pool width (`0` = fabric default).
    pool_threads: usize,
    /// When set, every projection runs the naive audit GEMM instead of
    /// the packed tiled kernel (bit-identical, slower).
    reference_gemm: bool,
    /// When set, the pass-Q prefill and decode hot paths materialize the
    /// per-layer cache with [`PagedKvCache::gather`] instead of borrowing
    /// it zero-copy via [`cp_kvcache::KvView`] (bit-identical, slower).
    gather_hot_kv: bool,
}

/// One projection, routed through the pooled tiled kernel or — in
/// reference mode — the naive audit GEMM. Bit-identical either way.
fn project(
    reference: bool,
    pool: &ComputePool,
    layer: &Linear,
    x: &Tensor,
) -> Result<Tensor, CoreError> {
    if reference {
        layer.forward_naive(x)
    } else {
        layer.forward_on(pool, x)
    }
}

/// Repeats one layer's per-rank schedule `layers` times: the serving loops
/// issue exactly one ring schedule per transformer layer inside a single
/// fabric session, so the session plan is the layer plan stacked.
fn stacked_plan(layer_plan: CommPlan, layers: usize) -> CommPlan {
    let ranks = layer_plan
        .ranks
        .into_iter()
        .map(|rp| {
            let mut ops = Vec::with_capacity(rp.ops.len() * layers);
            for _ in 0..layers {
                ops.extend(rp.ops.iter().cloned());
            }
            RankPlan { rank: rp.rank, ops }
        })
        .collect();
    CommPlan::from_ranks(ranks)
}

impl TransformerEngine {
    /// Creates an engine over `model` with `n_ranks` CP ranks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn new(model: Transformer, n_ranks: usize) -> Result<Self, CoreError> {
        Self::with_cache_limit(model, n_ranks, None)
    }

    /// [`TransformerEngine::new`] with a per-(rank, layer) page-pool limit
    /// (16-token pages), for capacity experiments.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn with_cache_limit(
        model: Transformer,
        n_ranks: usize,
        max_pages: Option<usize>,
    ) -> Result<Self, CoreError> {
        if n_ranks == 0 {
            return Err(CoreError::BadRequest {
                reason: "engine needs at least one rank".to_string(),
            });
        }
        let shape = model.config().shape;
        let layers = model.config().n_layers;
        let mut cache_cfg = KvCacheConfig::new(16, shape.n_kv_heads(), shape.head_dim());
        if let Some(max) = max_pages {
            cache_cfg = cache_cfg.with_max_pages(max);
        }
        let ranks = (0..n_ranks)
            .map(|_| {
                let mut layer_caches = Vec::with_capacity(layers);
                for _ in 0..layers {
                    let mut c = PagedKvCache::new(cache_cfg);
                    c.create_sequence(SEQ).expect("fresh cache");
                    layer_caches.push(c);
                }
                Mutex::new(layer_caches)
            })
            .collect();
        Ok(TransformerEngine {
            heuristic_ctx: SystemContext::llama3_405b_gtt(n_ranks),
            model,
            n_ranks,
            ranks,
            len: 0,
            decode_step: 0,
            check_schedules: false,
            pool_threads: 0,
            reference_gemm: false,
            gather_hot_kv: false,
        })
    }

    /// Sets each rank's persistent compute-pool width (`0` restores the
    /// fabric default). `1` forces the fully serial projection and
    /// attention paths.
    #[must_use]
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }

    /// Routes every projection (and FFN) through the naive audit GEMM
    /// instead of the packed register-tiled kernel. Outputs are
    /// bit-identical; only the speed changes. Together with
    /// [`TransformerEngine::with_pool_threads`]`(1)` this reproduces the
    /// pre-tiling engine — the A-side of the cp-bench `gemm` end-to-end
    /// A/B.
    #[must_use]
    pub fn with_reference_gemm(mut self, enabled: bool) -> Self {
        self.reference_gemm = enabled;
        self
    }

    /// Routes the pass-Q prefill and decode hot paths through
    /// [`PagedKvCache::gather`] — the O(context) materializing copy —
    /// instead of the zero-copy [`cp_kvcache::KvView`]. Outputs are
    /// bit-identical; only the bytes touched per token change. This is
    /// the A-side of the cp-bench `decode_steady` A/B. Pass-KV prefill
    /// always gathers, because its KV circulates on the wire.
    #[must_use]
    pub fn with_gathered_hot_kv(mut self, enabled: bool) -> Self {
        self.gather_hot_kv = enabled;
        self
    }

    /// Enables (or disables) live schedule validation: every subsequent
    /// prefill and decode builds its declared [`CommPlan`] from the
    /// production schedule builders and runs under a `CheckedFabric`, so
    /// any drift between declared and actual traffic fails the turn
    /// instead of silently mismeasuring. Debug aid — adds plan-building
    /// overhead per turn, off by default.
    #[must_use]
    pub fn with_schedule_checking(mut self, enabled: bool) -> Self {
        self.check_schedules = enabled;
        self
    }

    /// Whether live schedule validation is on.
    pub fn schedule_checking(&self) -> bool {
        self.check_schedules
    }

    /// Tokens in the conversation so far.
    pub fn context_len(&self) -> usize {
        self.len
    }

    /// Number of CP ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Per-rank cached-token counts (layer 0; all layers are identical).
    pub fn rank_kv_lens(&self) -> Vec<usize> {
        self.ranks
            .iter()
            .map(|r| {
                r.lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0))
            })
            .collect()
    }

    /// Prefills a user turn (full prefill on the first call, partial
    /// prefill with persistent per-layer caches afterwards); the
    /// Algorithm 1 heuristic picks the ring variant.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<ServeOutcome, CoreError> {
        self.prefill_with(tokens, None)
    }

    /// [`TransformerEngine::prefill`] with a forced ring variant.
    ///
    /// # Errors
    ///
    /// Same as [`TransformerEngine::prefill`].
    pub fn prefill_with(
        &mut self,
        tokens: &[u32],
        forced: Option<RingVariant>,
    ) -> Result<ServeOutcome, CoreError> {
        let p = self.len;
        let t = tokens.len();
        let n = self.n_ranks;
        let shards = shard_new_tokens(p, t, n)?;
        let variant = forced
            .unwrap_or_else(|| choose_variant(HeuristicKind::Threshold, &self.heuristic_ctx, t, p));

        // §3.5.2 padding target: the longest (cache + new) length.
        let ring_len = (0..n)
            .map(|r| {
                let cached = self.ranks[r]
                    .lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0));
                cached + shards[r].len()
            })
            .max()
            .unwrap_or(0);

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;
        let shards_ref = &shards;

        // Declared schedule for checked mode: plans depend only on shapes,
        // so zero tensors of the per-rank geometry reproduce exactly what
        // each layer's ring loop will put on the wire.
        let plan = if self.check_schedules {
            let dh = shape.head_dim();
            let locals: Vec<Vec<LocalSeq>> = (0..n)
                .map(|r| {
                    vec![LocalSeq {
                        q: Tensor::zeros(&[shards[r].len(), shape.n_heads(), dh]),
                        q_pos: shards[r].clone(),
                        k: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                        v: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                        kv_pos: vec![PAD; ring_len],
                    }]
                })
                .collect();
            let layer_plan = match variant {
                RingVariant::PassKv => pass_kv_plan(&locals)?,
                RingVariant::PassQ => pass_q_plan(&params, &locals)?,
            };
            Some(stacked_plan(layer_plan, config.n_layers))
        } else {
            None
        };

        // Snapshot per-rank cache lengths (identical across layers) so a
        // failed turn rolls back instead of leaving partial layer appends.
        let snapshot: Vec<usize> = (0..n)
            .map(|r| {
                self.ranks[r]
                    .lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0))
            })
            .collect();

        // Projections and norms run on the rank's persistent compute pool
        // (the same pool the ring attention kernels use), so GEMM
        // row-bands and ring compute share one set of worker threads.
        let reference = self.reference_gemm;
        let gather_hot = self.gather_hot_kv;
        let body = move |comm: &cp_comm::Communicator<RingMsg>| {
            let r = comm.rank();
            let pool = comm.pool();
            let positions = &shards_ref[r];
            let local_tokens: Vec<u32> = positions.iter().map(|&pos| tokens[pos - p]).collect();
            let t_local = positions.len();
            let dh = shape.head_dim();
            let mut caches = ranks[r].lock().expect("one thread per rank");
            let mut x = model.embed(&local_tokens);
            for (l, block) in model.blocks().iter().enumerate() {
                let h = rms_norm_on(pool, &x, config.norm_eps)?;
                let mut q = project(reference, pool, &block.wq, &h)?.reshape(&[
                    t_local,
                    shape.n_heads(),
                    dh,
                ])?;
                let mut k = project(reference, pool, &block.wk, &h)?.reshape(&[
                    t_local,
                    shape.n_kv_heads(),
                    dh,
                ])?;
                let v = project(reference, pool, &block.wv, &h)?.reshape(&[
                    t_local,
                    shape.n_kv_heads(),
                    dh,
                ])?;
                apply_rope(&mut q, positions, config.rope_base)?;
                apply_rope(&mut k, positions, config.rope_base)?;
                caches[l].append(SEQ, &k, &v, positions)?;

                let attn = match variant {
                    // Pass-KV circulates KV on the wire, so it must
                    // materialize (and pad to the ring geometry).
                    RingVariant::PassKv => {
                        let (ck, cv, mut cpos) = caches[l].gather(SEQ)?;
                        let ck = ck.pad_dim0(ring_len, 0.0)?;
                        let cv = cv.pad_dim0(ring_len, 0.0)?;
                        cpos.resize(ring_len, PAD);
                        let local = LocalSeq {
                            q,
                            q_pos: positions.clone(),
                            k: ck,
                            v: cv,
                            kv_pos: cpos,
                        };
                        ring_pass_kv_prefill(comm, &params, std::slice::from_ref(&local))?
                    }
                    // Pass-Q keeps KV resident: attend straight over the
                    // paged cache (zero-copy), or gather in A/B mode.
                    RingVariant::PassQ => {
                        let queries = [SeqQ {
                            q,
                            pos: positions.clone(),
                        }];
                        let kv = if gather_hot {
                            let (ck, cv, cpos) = caches[l].gather(SEQ)?;
                            [RankKv::tensors(SeqKv {
                                k: ck,
                                v: cv,
                                pos: cpos,
                            })]
                        } else {
                            [RankKv::View(caches[l].view(SEQ)?)]
                        };
                        ring_pass_q_prefill_kv(comm, &params, &queries, &kv)?
                    }
                }
                .pop()
                .expect("one sequence in, one out");
                let attn_flat = attn.out.reshape(&[t_local, config.model_dim()])?;
                x.add_assign(&project(reference, pool, &block.wo, &attn_flat)?)?;
                let h = rms_norm_on(pool, &x, config.norm_eps)?;
                let f = if reference {
                    block.ffn.forward_naive(&h)?
                } else {
                    block.ffn.forward_on(pool, &h)?
                };
                x.add_assign(&f)?;
            }
            rms_norm_on(pool, &x, config.norm_eps)
        };
        let ring_result = run_ring_on(n, self.pool_threads, plan.as_ref(), body);
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                for (r, &len) in snapshot.iter().enumerate() {
                    let mut caches = self.ranks[r].lock().expect("threads joined");
                    for c in caches.iter_mut() {
                        let _ = c.truncate(SEQ, len);
                    }
                }
                return Err(e);
            }
        };

        // Un-shard to original order.
        let mut out = Tensor::zeros(&[t, config.model_dim()]);
        for (r, rank_out) in outputs.iter().enumerate() {
            for (row, &pos) in shards[r].iter().enumerate() {
                out.row_mut(pos - p).copy_from_slice(rank_out.row(row));
            }
        }
        self.len += t;
        Ok(ServeOutcome {
            activations: out,
            variant: Some(variant),
            traffic,
        })
    }

    /// Decodes one token: its KV lands on the rotating round-robin rank
    /// (§3.6); each layer's attention is a batched ring pass-Q decode.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn decode(&mut self, token: u32) -> Result<ServeOutcome, CoreError> {
        let n = self.n_ranks;
        let pos = self.len;
        let owner = self.decode_step % n;

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;

        // Declared schedule for checked mode: decode traffic depends only
        // on which ranks own live slots, not on cache contents.
        let plan = if self.check_schedules {
            let slots: Vec<Vec<Option<DecodeSlot>>> = (0..n)
                .map(|r| {
                    vec![(r == owner).then(|| DecodeSlot {
                        bid: 0,
                        q: Tensor::zeros(&[1, shape.n_heads(), shape.head_dim()]),
                        pos,
                    })]
                })
                .collect();
            Some(stacked_plan(decode_plan(&params, &slots)?, config.n_layers))
        } else {
            None
        };

        // Snapshot the owner's cache length for failure rollback (only the
        // owner appends during decode).
        let owner_len = self.ranks[owner]
            .lock()
            .expect("no rank thread running")
            .first()
            .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0));

        let reference = self.reference_gemm;
        let gather_hot = self.gather_hot_kv;
        let body = move |comm: &cp_comm::Communicator<RingMsg>| {
            let r = comm.rank();
            let pool = comm.pool();
            let mut caches = ranks[r].lock().expect("one thread per rank");
            let dh = shape.head_dim();
            let mut x = if r == owner {
                Some(model.embed(&[token]))
            } else {
                None
            };
            for (l, block) in model.blocks().iter().enumerate() {
                // The owner projects the new token and appends its KV.
                let slot = if let Some(x_ref) = &x {
                    let h = rms_norm_on(pool, x_ref, config.norm_eps)?;
                    let mut q = project(reference, pool, &block.wq, &h)?.reshape(&[
                        1,
                        shape.n_heads(),
                        dh,
                    ])?;
                    let mut k = project(reference, pool, &block.wk, &h)?.reshape(&[
                        1,
                        shape.n_kv_heads(),
                        dh,
                    ])?;
                    let v = project(reference, pool, &block.wv, &h)?.reshape(&[
                        1,
                        shape.n_kv_heads(),
                        dh,
                    ])?;
                    apply_rope(&mut q, &[pos], config.rope_base)?;
                    apply_rope(&mut k, &[pos], config.rope_base)?;
                    caches[l].append(SEQ, &k, &v, &[pos])?;
                    Some(DecodeSlot { bid: 0, q, pos })
                } else {
                    None
                };
                // The decode hot path: every rank attends over its own
                // resident cache. The zero-copy view keeps the per-step
                // cost at O(pages) instead of an O(context) gather copy.
                let batch_kv = if gather_hot {
                    let (ck, cv, cpos) = caches[l].gather(SEQ)?;
                    [RankKv::tensors(SeqKv {
                        k: ck,
                        v: cv,
                        pos: cpos,
                    })]
                } else {
                    [RankKv::View(caches[l].view(SEQ)?)]
                };
                let outs = ring_pass_q_decode_kv(comm, &params, &[slot], &batch_kv)?;
                if let Some(x_val) = x.take() {
                    let attn = outs.into_iter().next().expect("owner has one slot");
                    let attn_flat = attn.out.reshape(&[1, config.model_dim()])?;
                    let mut x_new = x_val;
                    x_new.add_assign(&project(reference, pool, &block.wo, &attn_flat)?)?;
                    let h = rms_norm_on(pool, &x_new, config.norm_eps)?;
                    let f = if reference {
                        block.ffn.forward_naive(&h)?
                    } else {
                        block.ffn.forward_on(pool, &h)?
                    };
                    x_new.add_assign(&f)?;
                    x = Some(x_new);
                }
            }
            match x {
                Some(x) => Ok(Some(rms_norm_on(pool, &x, config.norm_eps)?)),
                None => Ok(None),
            }
        };
        let ring_result = run_ring_on(n, self.pool_threads, plan.as_ref(), body);
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                let mut caches = self.ranks[owner].lock().expect("threads joined");
                for c in caches.iter_mut() {
                    let _ = c.truncate(SEQ, owner_len);
                }
                return Err(e);
            }
        };

        let activations = outputs
            .into_iter()
            .flatten()
            .next()
            .expect("exactly one owner rank produced output");
        self.len += 1;
        self.decode_step += 1;
        Ok(ServeOutcome {
            activations,
            variant: None,
            traffic,
        })
    }
}
