//! The distributed full-model serving engine.

use std::sync::Mutex;

use cp_attention::PAD;
use cp_comm::TrafficReport;
use cp_core::heuristics::{choose_variant, HeuristicKind, SystemContext};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_q_decode, ring_pass_q_prefill, run_ring};
use cp_core::{CoreError, DecodeSlot, LocalSeq, SeqKv};
use cp_kvcache::{KvCacheConfig, PagedKvCache, SeqId};
use cp_model::rope::apply_rope;
use cp_model::{rms_norm, Transformer};
use cp_perf::RingVariant;
use cp_sharding::shard_new_tokens;
use cp_tensor::Tensor;

/// The single conversation a `TransformerEngine` serves (one engine, one
/// session — the fused multi-sequence path is `cp-core`'s engine).
const SEQ: SeqId = SeqId(0);

/// Result of one serving operation (prefill turn or decode step).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Final activations of the new tokens, `[t, D]`, original order.
    pub activations: Tensor,
    /// Ring variant used for prefill (`None` for decode, which is always
    /// pass-Q per §3.6).
    pub variant: Option<RingVariant>,
    /// Fabric traffic of the operation (all layers).
    pub traffic: TrafficReport,
}

/// A full-model context-parallel serving engine: every rank owns one
/// paged KV cache **per transformer layer**; prefill and decode run the
/// whole layer stack distributed, with ring attention per layer.
///
/// See the crate docs for the exactness contract.
#[derive(Debug)]
pub struct TransformerEngine {
    model: Transformer,
    n_ranks: usize,
    /// `ranks[r]` holds rank `r`'s per-layer caches; each rank thread
    /// locks only its own entry during a fabric session.
    ranks: Vec<Mutex<Vec<PagedKvCache>>>,
    heuristic_ctx: SystemContext,
    len: usize,
    decode_step: usize,
}

impl TransformerEngine {
    /// Creates an engine over `model` with `n_ranks` CP ranks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn new(model: Transformer, n_ranks: usize) -> Result<Self, CoreError> {
        Self::with_cache_limit(model, n_ranks, None)
    }

    /// [`TransformerEngine::new`] with a per-(rank, layer) page-pool limit
    /// (16-token pages), for capacity experiments.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn with_cache_limit(
        model: Transformer,
        n_ranks: usize,
        max_pages: Option<usize>,
    ) -> Result<Self, CoreError> {
        if n_ranks == 0 {
            return Err(CoreError::BadRequest {
                reason: "engine needs at least one rank".to_string(),
            });
        }
        let shape = model.config().shape;
        let layers = model.config().n_layers;
        let mut cache_cfg = KvCacheConfig::new(16, shape.n_kv_heads(), shape.head_dim());
        if let Some(max) = max_pages {
            cache_cfg = cache_cfg.with_max_pages(max);
        }
        let ranks = (0..n_ranks)
            .map(|_| {
                let mut layer_caches = Vec::with_capacity(layers);
                for _ in 0..layers {
                    let mut c = PagedKvCache::new(cache_cfg);
                    c.create_sequence(SEQ).expect("fresh cache");
                    layer_caches.push(c);
                }
                Mutex::new(layer_caches)
            })
            .collect();
        Ok(TransformerEngine {
            heuristic_ctx: SystemContext::llama3_405b_gtt(n_ranks),
            model,
            n_ranks,
            ranks,
            len: 0,
            decode_step: 0,
        })
    }

    /// Tokens in the conversation so far.
    pub fn context_len(&self) -> usize {
        self.len
    }

    /// Number of CP ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Per-rank cached-token counts (layer 0; all layers are identical).
    pub fn rank_kv_lens(&self) -> Vec<usize> {
        self.ranks
            .iter()
            .map(|r| {
                r.lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0))
            })
            .collect()
    }

    /// Prefills a user turn (full prefill on the first call, partial
    /// prefill with persistent per-layer caches afterwards); the
    /// Algorithm 1 heuristic picks the ring variant.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<ServeOutcome, CoreError> {
        self.prefill_with(tokens, None)
    }

    /// [`TransformerEngine::prefill`] with a forced ring variant.
    ///
    /// # Errors
    ///
    /// Same as [`TransformerEngine::prefill`].
    pub fn prefill_with(
        &mut self,
        tokens: &[u32],
        forced: Option<RingVariant>,
    ) -> Result<ServeOutcome, CoreError> {
        let p = self.len;
        let t = tokens.len();
        let n = self.n_ranks;
        let shards = shard_new_tokens(p, t, n)?;
        let variant = forced
            .unwrap_or_else(|| choose_variant(HeuristicKind::Threshold, &self.heuristic_ctx, t, p));

        // §3.5.2 padding target: the longest (cache + new) length.
        let ring_len = (0..n)
            .map(|r| {
                let cached = self.ranks[r]
                    .lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0));
                cached + shards[r].len()
            })
            .max()
            .unwrap_or(0);

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;
        let shards_ref = &shards;

        // Snapshot per-rank cache lengths (identical across layers) so a
        // failed turn rolls back instead of leaving partial layer appends.
        let snapshot: Vec<usize> = (0..n)
            .map(|r| {
                self.ranks[r]
                    .lock()
                    .expect("no rank thread running")
                    .first()
                    .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0))
            })
            .collect();

        let ring_result = run_ring(n, move |comm| {
            let r = comm.rank();
            let positions = &shards_ref[r];
            let local_tokens: Vec<u32> = positions.iter().map(|&pos| tokens[pos - p]).collect();
            let t_local = positions.len();
            let dh = shape.head_dim();
            let mut caches = ranks[r].lock().expect("one thread per rank");
            let mut x = model.embed(&local_tokens);
            for (l, block) in model.blocks().iter().enumerate() {
                let h = rms_norm(&x, config.norm_eps)?;
                let mut q = block
                    .wq
                    .forward(&h)?
                    .reshape(&[t_local, shape.n_heads(), dh])?;
                let mut k = block
                    .wk
                    .forward(&h)?
                    .reshape(&[t_local, shape.n_kv_heads(), dh])?;
                let v = block
                    .wv
                    .forward(&h)?
                    .reshape(&[t_local, shape.n_kv_heads(), dh])?;
                apply_rope(&mut q, positions, config.rope_base)?;
                apply_rope(&mut k, positions, config.rope_base)?;
                caches[l].append(SEQ, &k, &v, positions)?;

                let (ck, cv, mut cpos) = caches[l].gather(SEQ)?;
                let ck = ck.pad_dim0(ring_len, 0.0)?;
                let cv = cv.pad_dim0(ring_len, 0.0)?;
                cpos.resize(ring_len, PAD);
                let local = LocalSeq {
                    q,
                    q_pos: positions.clone(),
                    k: ck,
                    v: cv,
                    kv_pos: cpos,
                };
                let attn = match variant {
                    RingVariant::PassKv => {
                        ring_pass_kv_prefill(comm, &params, std::slice::from_ref(&local))?
                    }
                    RingVariant::PassQ => {
                        ring_pass_q_prefill(comm, &params, std::slice::from_ref(&local))?
                    }
                }
                .pop()
                .expect("one sequence in, one out");
                let attn_flat = attn.out.reshape(&[t_local, config.model_dim()])?;
                x.add_assign(&block.wo.forward(&attn_flat)?)?;
                let h = rms_norm(&x, config.norm_eps)?;
                x.add_assign(&block.ffn.forward(&h)?)?;
            }
            rms_norm(&x, config.norm_eps)
        });
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                for (r, &len) in snapshot.iter().enumerate() {
                    let mut caches = self.ranks[r].lock().expect("threads joined");
                    for c in caches.iter_mut() {
                        let _ = c.truncate(SEQ, len);
                    }
                }
                return Err(e);
            }
        };

        // Un-shard to original order.
        let mut out = Tensor::zeros(&[t, config.model_dim()]);
        for (r, rank_out) in outputs.iter().enumerate() {
            for (row, &pos) in shards[r].iter().enumerate() {
                out.row_mut(pos - p).copy_from_slice(rank_out.row(row));
            }
        }
        self.len += t;
        Ok(ServeOutcome {
            activations: out,
            variant: Some(variant),
            traffic,
        })
    }

    /// Decodes one token: its KV lands on the rotating round-robin rank
    /// (§3.6); each layer's attention is a batched ring pass-Q decode.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn decode(&mut self, token: u32) -> Result<ServeOutcome, CoreError> {
        let n = self.n_ranks;
        let pos = self.len;
        let owner = self.decode_step % n;

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;
        // Snapshot the owner's cache length for failure rollback (only the
        // owner appends during decode).
        let owner_len = self.ranks[owner]
            .lock()
            .expect("no rank thread running")
            .first()
            .map_or(0, |c| c.seq_len(SEQ).unwrap_or(0));

        let ring_result = run_ring(n, move |comm| {
            let r = comm.rank();
            let mut caches = ranks[r].lock().expect("one thread per rank");
            let dh = shape.head_dim();
            let mut x = if r == owner {
                Some(model.embed(&[token]))
            } else {
                None
            };
            for (l, block) in model.blocks().iter().enumerate() {
                // The owner projects the new token and appends its KV.
                let slot = if let Some(x_ref) = &x {
                    let h = rms_norm(x_ref, config.norm_eps)?;
                    let mut q = block.wq.forward(&h)?.reshape(&[1, shape.n_heads(), dh])?;
                    let mut k = block
                        .wk
                        .forward(&h)?
                        .reshape(&[1, shape.n_kv_heads(), dh])?;
                    let v = block
                        .wv
                        .forward(&h)?
                        .reshape(&[1, shape.n_kv_heads(), dh])?;
                    apply_rope(&mut q, &[pos], config.rope_base)?;
                    apply_rope(&mut k, &[pos], config.rope_base)?;
                    caches[l].append(SEQ, &k, &v, &[pos])?;
                    Some(DecodeSlot { bid: 0, q, pos })
                } else {
                    None
                };
                let (ck, cv, cpos) = caches[l].gather(SEQ)?;
                let batch_kv = [SeqKv {
                    k: ck,
                    v: cv,
                    pos: cpos,
                }];
                let outs = ring_pass_q_decode(comm, &params, &[slot], &batch_kv)?;
                if let Some(x_val) = x.take() {
                    let attn = outs.into_iter().next().expect("owner has one slot");
                    let attn_flat = attn.out.reshape(&[1, config.model_dim()])?;
                    let mut x_new = x_val;
                    x_new.add_assign(&block.wo.forward(&attn_flat)?)?;
                    let h = rms_norm(&x_new, config.norm_eps)?;
                    x_new.add_assign(&block.ffn.forward(&h)?)?;
                    x = Some(x_new);
                }
            }
            match x {
                Some(x) => Ok(Some(rms_norm(&x, config.norm_eps)?)),
                None => Ok(None),
            }
        });
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                let mut caches = self.ranks[owner].lock().expect("threads joined");
                for c in caches.iter_mut() {
                    let _ = c.truncate(SEQ, owner_len);
                }
                return Err(e);
            }
        };

        let activations = outputs
            .into_iter()
            .flatten()
            .next()
            .expect("exactly one owner rank produced output");
        self.len += 1;
        self.decode_step += 1;
        Ok(ServeOutcome {
            activations,
            variant: None,
            traffic,
        })
    }
}
