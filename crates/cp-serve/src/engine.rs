//! The distributed full-model serving engine.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use cp_attention::PAD;
use cp_comm::Topology;
use cp_comm::TrafficReport;
use cp_comm::Wire;
use cp_core::heuristics::{choose_variant, HeuristicKind, SystemContext};
use cp_core::ring::{
    attn_block_for, decode_slot_layout, helix_decode_kv, ring_pass_kv_prefill_bidi,
    ring_pass_kv_prefill_on, ring_pass_kv_prefill_quant_bidi, ring_pass_kv_prefill_quant_on,
    ring_pass_q_decode_bidi_kv, ring_pass_q_decode_kv, ring_pass_q_prefill_bidi_kv,
    ring_pass_q_prefill_kv_on, run_ring_on, tp_only_decode_kv, RankKv,
};
use cp_core::schedule::{
    decode_bidi_plan, decode_plan, helix_layer_plan, pass_kv_bidi_plan, pass_kv_plan_on,
    pass_kv_quant_bidi_plan, pass_kv_quant_plan_on, pass_q_bidi_plan, pass_q_plan_on, stacked_plan,
    tp_only_decode_plan, RingLayout,
};
use cp_core::{CoreError, DecodeSlot, KvPrecision, LocalSeq, RingMsg, SchedulePolicy, SeqKv, SeqQ};
use cp_kvcache::{CacheStats, KvCacheConfig, PagedKvCache, QuantKvCache, SeqId};
use cp_model::rope::apply_rope;
use cp_model::{rms_norm_on, silu, Linear, Transformer};
use cp_perf::schedule::{choose_family, hop_bytes_per_layer, quant_kv_hop_bytes_per_layer};
use cp_perf::{
    choose_decode_strategy, DecodeStrategy, RingDirection, RingTopologyKind, RingVariant,
    TopologySpec,
};
use cp_pool::ComputePool;
use cp_sharding::shard_new_tokens;
use cp_tensor::Tensor;

use crate::ServeError;

/// The session the single-conversation convenience API
/// ([`TransformerEngine::prefill`] / [`TransformerEngine::decode`]) serves.
const DEFAULT_SEQ: SeqId = SeqId(0);

/// Result of one serving operation (prefill turn or decode step).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Final activations of the new tokens, `[t, D]`, original order.
    pub activations: Tensor,
    /// Ring variant used for prefill (`None` for decode, which is always
    /// pass-Q per §3.6).
    pub variant: Option<RingVariant>,
    /// Fabric traffic of the operation (all layers).
    pub traffic: TrafficReport,
}

/// Result of one fused batched decode tick over multiple sessions.
#[derive(Debug, Clone)]
pub struct DecodeBatchOutcome {
    /// Final activations per batch element, `[1, D]`, in batch order.
    pub activations: Vec<Tensor>,
    /// Fabric traffic of the whole tick (shared by the batch).
    pub traffic: TrafficReport,
}

/// Per-session serving state. The engine's session table tracks every
/// live conversation; the per-session decode counter keeps each
/// sequence's round-robin KV rotation (§3.6) independent of what other
/// sessions in the batch are doing — which is what makes batched decode
/// bit-identical to serving each session alone.
#[derive(Debug, Clone, Copy, Default)]
struct SessionState {
    len: usize,
    decode_step: usize,
}

/// One logical prefill turn of one session, executable in fixed-token
/// chunks interleaved with decode ticks.
///
/// The 2N-chunk sharding and the Algorithm 1 variant choice are fixed
/// **once per turn** from the whole turn's `(T, P)`; a chunk merely
/// executes the next slice of that plan. Because per-rank positions
/// ascend and the position-masked kernels ignore not-yet-appended future
/// tokens exactly (masked rows contribute zero bit-for-bit), running a
/// turn in chunks of any size produces activations bit-identical to the
/// one-shot prefill.
#[derive(Debug, Clone)]
pub struct PrefillTurn {
    seq: SeqId,
    tokens: Vec<u32>,
    base: usize,
    shards: Vec<Vec<usize>>,
    variant: RingVariant,
    next: usize,
}

impl PrefillTurn {
    /// The session this turn extends.
    pub fn seq(&self) -> SeqId {
        self.seq
    }

    /// The ring variant the whole turn runs under.
    pub fn variant(&self) -> RingVariant {
        self.variant
    }

    /// New tokens in the whole turn (`T`).
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Tokens not yet executed.
    pub fn remaining(&self) -> usize {
        self.tokens.len() - self.next
    }

    /// Whether every token of the turn has been prefilled.
    pub fn is_done(&self) -> bool {
        self.next == self.tokens.len()
    }
}

/// One layer's tensor-parallel weight shards for the Helix decode
/// reshard: the output projection split by rows (input features), the
/// FFN gate/up split by columns and the FFN down split by rows — the
/// Megatron column→row pairing, pre-split and pre-packed once so the
/// decode hot loop never re-tiles weights.
#[derive(Debug)]
struct LayerTpShards {
    wo_rows: Vec<Linear>,
    gate_cols: Vec<Linear>,
    up_cols: Vec<Linear>,
    down_rows: Vec<Linear>,
}

/// Splits every layer's post-attention weights into `n` TP shards (fails
/// if the model or FFN dimension is not divisible by `n` — the standard
/// tensor-parallel divisibility requirement).
fn split_tp_shards(model: &Transformer, n: usize) -> Result<Vec<LayerTpShards>, CoreError> {
    model
        .blocks()
        .iter()
        .map(|block| {
            Ok(LayerTpShards {
                wo_rows: block.wo.split_rows(n)?,
                gate_cols: block.ffn.gate.split_columns(n)?,
                up_cols: block.ffn.up.split_columns(n)?,
                down_rows: block.ffn.down.split_rows(n)?,
            })
        })
        .collect()
}

/// A full-model context-parallel serving engine: every rank owns one
/// paged KV cache **per transformer layer**; prefill and decode run the
/// whole layer stack distributed, with ring attention per layer.
///
/// The engine serves **multiple sessions** out of the same per-rank
/// caches: [`TransformerEngine::create_session`] registers a sequence on
/// every (rank, layer) cache, [`TransformerEngine::begin_prefill`] /
/// [`TransformerEngine::prefill_chunk`] run a turn in scheduler-sized
/// chunks, and [`TransformerEngine::decode_batch`] runs one fused batched
/// pass-Q decode tick over any subset of live sessions. The single-session
/// [`TransformerEngine::prefill`] / [`TransformerEngine::decode`] API is a
/// thin wrapper over session `SeqId(0)`.
///
/// See the crate docs for the exactness contract.
#[derive(Debug)]
pub struct TransformerEngine {
    model: Transformer,
    n_ranks: usize,
    /// `ranks[r]` holds rank `r`'s per-layer caches; each rank thread
    /// locks only its own entry during a fabric session.
    ranks: Vec<Mutex<Vec<PagedKvCache>>>,
    /// Rank-/layer-parallel INT8 page pools, populated only at
    /// [`KvPrecision::Int8Total`]; kept in lockstep with `ranks`.
    qranks: Vec<Mutex<Vec<QuantKvCache>>>,
    /// The per-(rank, layer) cache geometry, kept so precision builders
    /// can allocate matching INT8 pools.
    cache_cfg: KvCacheConfig,
    heuristic_ctx: SystemContext,
    sessions: BTreeMap<u64, SessionState>,
    /// When set, every turn runs under a `CheckedFabric` that validates
    /// live traffic against the declared per-layer ring schedule.
    check_schedules: bool,
    /// Per-rank compute-pool width (`0` = fabric default).
    pool_threads: usize,
    /// When set, every projection runs the naive audit GEMM instead of
    /// the packed tiled kernel (bit-identical, slower).
    reference_gemm: bool,
    /// When set, the pass-Q prefill and decode hot paths materialize the
    /// per-layer cache with [`PagedKvCache::gather`] instead of borrowing
    /// it zero-copy via [`cp_kvcache::KvView`] (bit-identical, slower).
    gather_hot_kv: bool,
    /// Ring schedule family (direction × layout) for every turn's rings.
    schedule: SchedulePolicy,
    /// KV storage / wire precision (see [`KvPrecision`]).
    kv_precision: KvPrecision,
    /// Pinned decode strategy; `None` defaults to batched pass-Q under a
    /// fixed schedule and to the Appendix-D priced pick under `Auto`.
    decode_strategy: Option<DecodeStrategy>,
    /// Lazily built per-layer TP weight shards for the Helix reshard.
    tp_shards: Option<Vec<LayerTpShards>>,
}

/// One projection, routed through the pooled tiled kernel or — in
/// reference mode — the naive audit GEMM. Bit-identical either way.
fn project(
    reference: bool,
    pool: &ComputePool,
    layer: &Linear,
    x: &Tensor,
) -> Result<Tensor, CoreError> {
    if reference {
        layer.forward_naive(x)
    } else {
        layer.forward_on(pool, x)
    }
}

/// Locks one rank's per-layer caches. A poisoned mutex means another rank
/// thread panicked while holding it; the cache data itself is still
/// consistent (appends are transactional), so serving continues instead of
/// propagating the panic.
fn lock_caches<T>(m: &Mutex<Vec<T>>) -> MutexGuard<'_, Vec<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Copies the `lo..hi` feature columns of a `[t, d]` activation — the
/// input slice a row-parallel weight shard consumes.
fn slice_cols(x: &Tensor, lo: usize, hi: usize) -> Result<Tensor, CoreError> {
    let t = x.dim0();
    let mut out = Tensor::zeros(&[t, hi - lo]);
    for i in 0..t {
        out.row_mut(i).copy_from_slice(&x.row(i)[lo..hi]);
    }
    Ok(out)
}

/// AllReduce-sums one partial activation across every rank — the Helix
/// reshard's output-projection and FFN-down reduction. A single helper so
/// the decode path has exactly one AllReduce issue site and both uses
/// share the declared `AllReduce "Act"` schedule shape.
fn act_all_reduce(
    comm: &cp_comm::Communicator<RingMsg>,
    partial: Tensor,
) -> Result<Tensor, CoreError> {
    let mut mismatch = false;
    let reduced = comm.all_reduce(RingMsg::Act { x: partial }, |mut acc, m| {
        match (&mut acc, m) {
            (RingMsg::Act { x: a }, RingMsg::Act { x: b }) => {
                if a.add_assign(b).is_err() {
                    mismatch = true;
                }
            }
            _ => mismatch = true,
        }
        acc
    })?;
    if mismatch {
        return Err(CoreError::Internal {
            detail: "activation AllReduce mixed mismatched payloads".to_string(),
        });
    }
    match reduced {
        RingMsg::Act { x } => Ok(x),
        other => Err(CoreError::Internal {
            detail: format!("activation AllReduce returned {}", other.variant_name()),
        }),
    }
}

impl TransformerEngine {
    /// Creates an engine over `model` with `n_ranks` CP ranks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn new(model: Transformer, n_ranks: usize) -> Result<Self, ServeError> {
        Self::with_cache_limit(model, n_ranks, None)
    }

    /// [`TransformerEngine::new`] with a per-(rank, layer) page-pool limit
    /// (16-token pages), for capacity experiments.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n_ranks == 0`.
    pub fn with_cache_limit(
        model: Transformer,
        n_ranks: usize,
        max_pages: Option<usize>,
    ) -> Result<Self, ServeError> {
        if n_ranks == 0 {
            return Err(ServeError::Core(CoreError::BadRequest {
                reason: "engine needs at least one rank".to_string(),
            }));
        }
        let shape = model.config().shape;
        let layers = model.config().n_layers;
        let mut cache_cfg = KvCacheConfig::new(16, shape.n_kv_heads(), shape.head_dim());
        if let Some(max) = max_pages {
            cache_cfg = cache_cfg.with_max_pages(max);
        }
        let ranks = (0..n_ranks)
            .map(|_| {
                let layer_caches = (0..layers).map(|_| PagedKvCache::new(cache_cfg)).collect();
                Mutex::new(layer_caches)
            })
            .collect();
        Ok(TransformerEngine {
            heuristic_ctx: SystemContext::llama3_405b_gtt(n_ranks),
            model,
            n_ranks,
            ranks,
            qranks: Vec::new(),
            cache_cfg,
            sessions: BTreeMap::new(),
            check_schedules: false,
            pool_threads: 0,
            reference_gemm: false,
            gather_hot_kv: false,
            schedule: SchedulePolicy::default(),
            kv_precision: KvPrecision::default(),
            decode_strategy: None,
            tp_shards: None,
        })
    }

    /// Pins the decode strategy for every tick: `PassQ` is the §3.6
    /// batched ring (the default under a fixed schedule), `Helix` attends
    /// each rank's resident KV shard for the whole batch and reshards the
    /// merged activations into a tensor-parallel output projection + FFN,
    /// `TpOnly` moves every shard to the slot owners over one KV
    /// AllGather. Unset, [`TransformerEngine::with_auto_schedule`] prices
    /// all three per tick. Helix requires the model and FFN dimensions to
    /// be divisible by the rank count (standard TP divisibility); its
    /// row-split GEMMs regroup floating-point sums, so activations are
    /// numerically equal — not bitwise — to pass-Q, while `TpOnly` stays
    /// bit-identical.
    #[must_use]
    pub fn with_decode_strategy(mut self, strategy: DecodeStrategy) -> Self {
        self.decode_strategy = Some(strategy);
        self
    }

    /// Resolves the decode strategy for one tick: an explicit pin wins;
    /// a fixed schedule defaults to batched pass-Q; `Auto` lets the
    /// Appendix-D comm model price all three strategies at this tick's
    /// (total context, batch) point.
    fn resolve_decode_strategy(&self, ctx_total: usize, batch: usize) -> DecodeStrategy {
        if let Some(pinned) = self.decode_strategy {
            return pinned;
        }
        match &self.schedule {
            SchedulePolicy::Fixed { .. } => DecodeStrategy::PassQ,
            SchedulePolicy::Auto { topo } => {
                choose_decode_strategy(&self.heuristic_ctx.model, topo, ctx_total, batch)
            }
        }
    }

    /// Sets the KV precision level: `F32` is exact, `Int8Wire` compresses
    /// the circulating pass-KV ring payloads (~`4d/(d+4)`× fewer bytes
    /// per hop), `Int8Total` additionally stores KV as INT8 pages and
    /// attends them in place on the pass-Q/decode hot paths. A/B builder
    /// in the [`TransformerEngine::with_gathered_hot_kv`] style — call it
    /// at construction, before any session holds tokens.
    #[must_use]
    pub fn with_kv_precision(mut self, precision: KvPrecision) -> Self {
        self.kv_precision = precision;
        if precision == KvPrecision::Int8Total && self.qranks.is_empty() {
            let layers = self.model.config().n_layers;
            let cfg = self.cache_cfg;
            self.qranks = (0..self.n_ranks)
                .map(|_| {
                    let mut layer_caches: Vec<QuantKvCache> =
                        (0..layers).map(|_| QuantKvCache::new(cfg)).collect();
                    // Mirror already-registered (still empty) sessions.
                    for &sid in self.sessions.keys() {
                        for cache in &mut layer_caches {
                            let _ = cache.create_sequence(SeqId(sid));
                        }
                    }
                    Mutex::new(layer_caches)
                })
                .collect();
        }
        self
    }

    /// Pins the ring schedule family (payload direction × link layout)
    /// for every turn. All four families are bit-exact for pass-Q and
    /// decode; hierarchical pass-KV folds origins in a different order
    /// (exact but not bitwise against the flat default). The checked-mode
    /// declared plans follow the selected family automatically.
    #[must_use]
    pub fn with_schedule(mut self, direction: RingDirection, layout: RingLayout) -> Self {
        self.schedule = SchedulePolicy::Fixed { direction, layout };
        self
    }

    /// Folds schedule-family selection into each turn's heuristics over
    /// the given link topology (`topo.world()` must equal the engine's
    /// rank count — mismatches fail the turn).
    #[must_use]
    pub fn with_auto_schedule(mut self, topo: TopologySpec) -> Self {
        self.schedule = SchedulePolicy::Auto { topo };
        self
    }

    /// Resolves the schedule policy to `(direction, layout)` for one
    /// turn's payload (see `ContextParallelEngine::resolve_schedule`).
    fn resolve_schedule(
        &self,
        variant: RingVariant,
        t: usize,
        p: usize,
    ) -> Result<(RingDirection, RingLayout), ServeError> {
        match &self.schedule {
            SchedulePolicy::Fixed { direction, layout } => Ok((*direction, *layout)),
            SchedulePolicy::Auto { topo } => {
                if topo.world() != self.n_ranks {
                    return Err(ServeError::Core(CoreError::BadRequest {
                        reason: format!(
                            "auto-schedule topology covers {} ranks but the engine has {}",
                            topo.world(),
                            self.n_ranks
                        ),
                    }));
                }
                let bytes = match (variant, self.kv_precision) {
                    (RingVariant::PassKv, KvPrecision::Int8Wire | KvPrecision::Int8Total) => {
                        quant_kv_hop_bytes_per_layer(&self.heuristic_ctx.model, topo.world(), t, p)
                    }
                    _ => {
                        hop_bytes_per_layer(&self.heuristic_ctx.model, variant, topo.world(), t, p)
                    }
                };
                let family = choose_family(topo, bytes);
                let layout = match family.topology {
                    RingTopologyKind::Flat => RingLayout::Flat,
                    RingTopologyKind::Hierarchical => {
                        RingLayout::Hier(Topology::new(topo.nodes, topo.ranks_per_node))
                    }
                };
                Ok((family.direction, layout))
            }
        }
    }

    /// Sets each rank's persistent compute-pool width (`0` restores the
    /// fabric default). `1` forces the fully serial projection and
    /// attention paths.
    #[must_use]
    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }

    /// Routes every projection (and FFN) through the naive audit GEMM
    /// instead of the packed register-tiled kernel. Outputs are
    /// bit-identical; only the speed changes. Together with
    /// [`TransformerEngine::with_pool_threads`]`(1)` this reproduces the
    /// pre-tiling engine — the A-side of the cp-bench `gemm` end-to-end
    /// A/B.
    #[must_use]
    pub fn with_reference_gemm(mut self, enabled: bool) -> Self {
        self.reference_gemm = enabled;
        self
    }

    /// Routes the pass-Q prefill and decode hot paths through
    /// [`PagedKvCache::gather`] — the O(context) materializing copy —
    /// instead of the zero-copy [`cp_kvcache::KvView`]. Outputs are
    /// bit-identical; only the bytes touched per token change. This is
    /// the A-side of the cp-bench `decode_steady` A/B. Pass-KV prefill
    /// always gathers, because its KV circulates on the wire.
    #[must_use]
    pub fn with_gathered_hot_kv(mut self, enabled: bool) -> Self {
        self.gather_hot_kv = enabled;
        self
    }

    /// Enables (or disables) live schedule validation: every subsequent
    /// prefill and decode builds its declared [`CommPlan`] from the
    /// production schedule builders and runs under a `CheckedFabric`, so
    /// any drift between declared and actual traffic fails the turn
    /// instead of silently mismeasuring. Debug aid — adds plan-building
    /// overhead per turn, off by default.
    #[must_use]
    pub fn with_schedule_checking(mut self, enabled: bool) -> Self {
        self.check_schedules = enabled;
        self
    }

    /// Whether live schedule validation is on.
    pub fn schedule_checking(&self) -> bool {
        self.check_schedules
    }

    /// The model being served.
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// Tokens in the default conversation (session `SeqId(0)`) so far.
    pub fn context_len(&self) -> usize {
        self.sessions
            .get(&DEFAULT_SEQ.0)
            .map_or(0, |state| state.len)
    }

    /// Number of CP ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Live sessions, ascending by id.
    pub fn sessions(&self) -> Vec<SeqId> {
        self.sessions.keys().map(|&id| SeqId(id)).collect()
    }

    /// Whether `seq` is in the session table.
    pub fn has_session(&self, seq: SeqId) -> bool {
        self.sessions.contains_key(&seq.0)
    }

    /// Context length of a session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if `seq` is not being served.
    pub fn session_len(&self, seq: SeqId) -> Result<usize, ServeError> {
        Ok(self.state(seq)?.len)
    }

    /// Registers a new session on every (rank, layer) cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::SequenceExists`] if the session is already being
    /// served — the typed replacement for the historical
    /// `expect("fresh cache")` panic; cache errors if a rank's cache
    /// already holds the sequence (a poisoned cache).
    pub fn create_session(&mut self, seq: SeqId) -> Result<(), ServeError> {
        if self.sessions.contains_key(&seq.0) {
            return Err(ServeError::SequenceExists { seq });
        }
        for (r, rank) in self.ranks.iter().enumerate() {
            let mut caches = lock_caches(rank);
            for (l, cache) in caches.iter_mut().enumerate() {
                if let Err(e) = cache.create_sequence(seq) {
                    // Unwind the partial registration so a failed create
                    // leaves no trace.
                    for cache in caches.iter_mut().take(l) {
                        let _ = cache.free_sequence(seq);
                    }
                    drop(caches);
                    for rank in self.ranks.iter().take(r) {
                        for cache in lock_caches(rank).iter_mut() {
                            let _ = cache.free_sequence(seq);
                        }
                    }
                    return Err(ServeError::Cache(e));
                }
            }
        }
        for rank in &self.qranks {
            for cache in lock_caches(rank).iter_mut() {
                let _ = cache.create_sequence(seq);
            }
        }
        self.sessions.insert(seq.0, SessionState::default());
        Ok(())
    }

    /// Frees a session and its pages on every (rank, layer) cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if `seq` is not being served.
    pub fn free_session(&mut self, seq: SeqId) -> Result<(), ServeError> {
        if self.sessions.remove(&seq.0).is_none() {
            return Err(ServeError::UnknownSession { seq });
        }
        for rank in &self.ranks {
            for cache in lock_caches(rank).iter_mut() {
                let _ = cache.free_sequence(seq);
            }
        }
        for rank in &self.qranks {
            for cache in lock_caches(rank).iter_mut() {
                let _ = cache.free_sequence(seq);
            }
        }
        Ok(())
    }

    /// Occupancy statistics of every rank's layer-0 cache (all layers are
    /// identical) — the memory-pressure signal the scheduler's eviction
    /// policy watches.
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.ranks
            .iter()
            .map(|rank| {
                lock_caches(rank)
                    .first()
                    .map(PagedKvCache::stats)
                    .unwrap_or_default()
            })
            .collect()
    }

    fn state(&self, seq: SeqId) -> Result<SessionState, ServeError> {
        self.sessions
            .get(&seq.0)
            .copied()
            .ok_or(ServeError::UnknownSession { seq })
    }

    /// Cached length of `seq` on rank `r` (layer 0; layers agree), with
    /// cache errors **propagated** — a missing or poisoned sequence
    /// surfaces as a typed error instead of silently reading as an empty
    /// cache and feeding a wrong `(T, P)` point into the heuristic.
    fn rank_len(&self, r: usize, seq: SeqId) -> Result<usize, ServeError> {
        let rank = self.ranks.get(r).ok_or_else(|| {
            ServeError::Core(CoreError::Internal {
                detail: format!("rank {r} out of range for world {}", self.n_ranks),
            })
        })?;
        let caches = lock_caches(rank);
        let cache = caches.first().ok_or_else(|| {
            ServeError::Core(CoreError::Internal {
                detail: "engine has no layers".to_string(),
            })
        })?;
        cache.seq_len(seq).map_err(ServeError::Cache)
    }

    fn rank_lens(&self, seq: SeqId) -> Result<Vec<usize>, ServeError> {
        (0..self.n_ranks).map(|r| self.rank_len(r, seq)).collect()
    }

    /// Per-rank cached-token counts of the default session (layer 0; all
    /// layers are identical). Zeros before the first turn.
    ///
    /// # Errors
    ///
    /// Propagates cache inconsistencies (a registered session missing
    /// from a rank's cache).
    pub fn rank_kv_lens(&self) -> Result<Vec<usize>, ServeError> {
        if !self.sessions.contains_key(&DEFAULT_SEQ.0) {
            return Ok(vec![0; self.n_ranks]);
        }
        self.rank_lens(DEFAULT_SEQ)
    }

    /// Per-rank cached-token counts of one session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered session; cache
    /// errors are propagated.
    pub fn rank_kv_lens_for(&self, seq: SeqId) -> Result<Vec<usize>, ServeError> {
        self.state(seq)?;
        self.rank_lens(seq)
    }

    fn ensure_default_session(&mut self) -> Result<(), ServeError> {
        if self.sessions.contains_key(&DEFAULT_SEQ.0) {
            return Ok(());
        }
        self.create_session(DEFAULT_SEQ)
    }

    /// Prefills a user turn of the default session (full prefill on the
    /// first call, partial prefill with persistent per-layer caches
    /// afterwards); the Algorithm 1 heuristic picks the ring variant.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<ServeOutcome, ServeError> {
        self.prefill_with(tokens, None)
    }

    /// [`TransformerEngine::prefill`] with a forced ring variant.
    ///
    /// # Errors
    ///
    /// Same as [`TransformerEngine::prefill`].
    pub fn prefill_with(
        &mut self,
        tokens: &[u32],
        forced: Option<RingVariant>,
    ) -> Result<ServeOutcome, ServeError> {
        self.ensure_default_session()?;
        self.prefill_session_with(DEFAULT_SEQ, tokens, forced)
    }

    /// One-shot prefill of a turn for an explicit session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered session, plus
    /// layer, cache and communication failures.
    pub fn prefill_session(
        &mut self,
        seq: SeqId,
        tokens: &[u32],
    ) -> Result<ServeOutcome, ServeError> {
        self.prefill_session_with(seq, tokens, None)
    }

    /// [`TransformerEngine::prefill_session`] with a forced ring variant.
    ///
    /// # Errors
    ///
    /// Same as [`TransformerEngine::prefill_session`].
    pub fn prefill_session_with(
        &mut self,
        seq: SeqId,
        tokens: &[u32],
        forced: Option<RingVariant>,
    ) -> Result<ServeOutcome, ServeError> {
        let mut turn = self.begin_prefill(seq, tokens, forced)?;
        self.prefill_chunk(&mut turn, tokens.len().max(1))
    }

    /// Opens a prefill turn: validates the session against the per-rank
    /// caches, fixes the whole turn's 2N-chunk sharding, and runs the
    /// Algorithm 1 heuristic **once** on the turn's full `(T, P)` — the
    /// chunk schedule is an execution detail, not an algorithmic one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered session;
    /// [`ServeError::SessionDesync`] (or a propagated cache error) when
    /// the per-rank caches disagree with the session table — the poisoned
    /// state that previously read as "empty cache" and flipped the
    /// variant heuristic.
    pub fn begin_prefill(
        &mut self,
        seq: SeqId,
        tokens: &[u32],
        forced: Option<RingVariant>,
    ) -> Result<PrefillTurn, ServeError> {
        let state = self.state(seq)?;
        let p = state.len;
        let cached: usize = self.rank_lens(seq)?.iter().sum();
        if cached != p {
            return Err(ServeError::SessionDesync {
                seq,
                expected: p,
                actual: cached,
            });
        }
        let t = tokens.len();
        let mut shards = shard_new_tokens(p, t, self.n_ranks)?;
        // Per-rank positions must ascend so chunked appends land in the
        // same per-rank order as the one-shot append (the chunk-prefix
        // property behind bitwise chunk == one-shot).
        for shard in &mut shards {
            shard.sort_unstable();
        }
        let variant = forced
            .unwrap_or_else(|| choose_variant(HeuristicKind::Threshold, &self.heuristic_ctx, t, p));
        Ok(PrefillTurn {
            seq,
            tokens: tokens.to_vec(),
            base: p,
            shards,
            variant,
            next: 0,
        })
    }

    /// Executes the next `max_tokens`-token chunk of an open turn (the
    /// final chunk may be shorter; an empty turn runs one empty chunk).
    /// Returns the chunk's activations `[c, D]`; concatenating every
    /// chunk's activations reproduces the one-shot prefill bit for bit.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionDesync`] if the session advanced since
    /// [`TransformerEngine::begin_prefill`] (e.g. a decode tick ran for
    /// the same session mid-turn); layer, cache and communication
    /// failures roll the chunk back and propagate.
    pub fn prefill_chunk(
        &mut self,
        turn: &mut PrefillTurn,
        max_tokens: usize,
    ) -> Result<ServeOutcome, ServeError> {
        let state = self.state(turn.seq)?;
        if state.len != turn.base + turn.next {
            return Err(ServeError::SessionDesync {
                seq: turn.seq,
                expected: turn.base + turn.next,
                actual: state.len,
            });
        }
        let n = self.n_ranks;
        let seq = turn.seq;
        let c = max_tokens.min(turn.remaining());
        let start = turn.base + turn.next;
        let end = start + c;

        // This chunk's slice of the turn's per-rank positions (ascending,
        // so each chunk is a contiguous window per rank).
        let chunk_shards: Vec<Vec<usize>> = turn
            .shards
            .iter()
            .map(|shard| {
                let lo = shard.partition_point(|&pos| pos < start);
                let hi = shard.partition_point(|&pos| pos < end);
                shard[lo..hi].to_vec()
            })
            .collect();

        // Snapshot per-rank cache lengths (identical across layers) so a
        // failed chunk rolls back instead of leaving partial layer
        // appends; errors propagate (no silent "empty cache" reads).
        let snapshot = self.rank_lens(seq)?;

        // §3.5.2 padding target: the longest (cache + new) length.
        let ring_len = snapshot
            .iter()
            .zip(&chunk_shards)
            .map(|(&cached, shard)| cached + shard.len())
            .max()
            .unwrap_or(0);

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;
        let shards_ref = &chunk_shards;
        let variant = turn.variant;
        let base = turn.base;
        let tokens = &turn.tokens;
        let (direction, layout) = self.resolve_schedule(variant, turn.tokens.len(), turn.base)?;

        // Declared schedule for checked mode: plans depend only on shapes,
        // so zero tensors of the per-rank geometry reproduce exactly what
        // each layer's ring loop will put on the wire.
        let plan = if self.check_schedules {
            let dh = shape.head_dim();
            let locals: Vec<Vec<LocalSeq>> = chunk_shards
                .iter()
                .map(|shard| {
                    vec![LocalSeq {
                        q: Tensor::zeros(&[shard.len(), shape.n_heads(), dh]),
                        q_pos: shard.clone(),
                        k: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                        v: Tensor::zeros(&[ring_len, shape.n_kv_heads(), dh]),
                        kv_pos: vec![PAD; ring_len],
                    }]
                })
                .collect();
            let compressed = self.kv_precision != KvPrecision::F32;
            let layer_plan = match (variant, direction, compressed) {
                (RingVariant::PassKv, RingDirection::Uni, false) => {
                    pass_kv_plan_on(&locals, layout)?
                }
                (RingVariant::PassKv, RingDirection::Bidi, false) => {
                    pass_kv_bidi_plan(&locals, layout)?
                }
                (RingVariant::PassKv, RingDirection::Uni, true) => {
                    pass_kv_quant_plan_on(&locals, layout)?
                }
                (RingVariant::PassKv, RingDirection::Bidi, true) => {
                    pass_kv_quant_bidi_plan(&locals, layout)?
                }
                (RingVariant::PassQ, RingDirection::Uni, _) => {
                    pass_q_plan_on(&params, &locals, layout)?
                }
                (RingVariant::PassQ, RingDirection::Bidi, _) => {
                    pass_q_bidi_plan(&params, &locals, layout)?
                }
            };
            Some(stacked_plan(layer_plan, config.n_layers))
        } else {
            None
        };

        // Projections and norms run on the rank's persistent compute pool
        // (the same pool the ring attention kernels use), so GEMM
        // row-bands and ring compute share one set of worker threads.
        let reference = self.reference_gemm;
        let gather_hot = self.gather_hot_kv;
        let compressed = self.kv_precision != KvPrecision::F32;
        let total_quant = self.kv_precision == KvPrecision::Int8Total;
        let qranks = &self.qranks;
        let body = move |comm: &cp_comm::Communicator<RingMsg>| {
            let r = comm.rank();
            let pool = comm.pool();
            let positions = shards_ref.get(r).map(Vec::as_slice).unwrap_or(&[]);
            let local_tokens: Vec<u32> = positions
                .iter()
                .filter_map(|&pos| tokens.get(pos - base).copied())
                .collect();
            let t_local = positions.len();
            let dh = shape.head_dim();
            let mut caches = lock_caches(&ranks[r]);
            let mut qcaches = qranks.get(r).filter(|_| total_quant).map(lock_caches);
            let mut x = model.embed(&local_tokens);
            for (l, block) in model.blocks().iter().enumerate() {
                let h = rms_norm_on(pool, &x, config.norm_eps)?;
                let mut q = project(reference, pool, &block.wq, &h)?.reshape(&[
                    t_local,
                    shape.n_heads(),
                    dh,
                ])?;
                let mut k = project(reference, pool, &block.wk, &h)?.reshape(&[
                    t_local,
                    shape.n_kv_heads(),
                    dh,
                ])?;
                let v = project(reference, pool, &block.wv, &h)?.reshape(&[
                    t_local,
                    shape.n_kv_heads(),
                    dh,
                ])?;
                apply_rope(&mut q, positions, config.rope_base)?;
                apply_rope(&mut k, positions, config.rope_base)?;
                caches[l].append(seq, &k, &v, positions)?;
                if let Some(qc) = qcaches.as_mut() {
                    qc[l].append(seq, &k, &v, positions)?;
                }

                let attn = match variant {
                    // Pass-KV circulates KV on the wire, so it must
                    // materialize (and pad to the ring geometry).
                    RingVariant::PassKv => {
                        let (ck, cv, mut cpos) = caches[l].gather(seq)?;
                        let ck = ck.pad_dim0(ring_len, 0.0)?;
                        let cv = cv.pad_dim0(ring_len, 0.0)?;
                        cpos.resize(ring_len, PAD);
                        let local = LocalSeq {
                            q,
                            q_pos: positions.to_vec(),
                            k: ck,
                            v: cv,
                            kv_pos: cpos,
                        };
                        let local = std::slice::from_ref(&local);
                        match (direction, compressed) {
                            (RingDirection::Uni, false) => {
                                ring_pass_kv_prefill_on(comm, &params, local, layout)?
                            }
                            (RingDirection::Bidi, false) => {
                                ring_pass_kv_prefill_bidi(comm, &params, local, layout)?
                            }
                            (RingDirection::Uni, true) => {
                                ring_pass_kv_prefill_quant_on(comm, &params, local, layout)?
                            }
                            (RingDirection::Bidi, true) => {
                                ring_pass_kv_prefill_quant_bidi(comm, &params, local, layout)?
                            }
                        }
                    }
                    // Pass-Q keeps KV resident: attend straight over the
                    // paged cache (zero-copy f32 or INT8 pages), or gather
                    // in A/B mode.
                    RingVariant::PassQ => {
                        let queries = [SeqQ {
                            q,
                            pos: positions.to_vec(),
                        }];
                        let kv = if let Some(qc) = qcaches.as_ref() {
                            [RankKv::QuantView(qc[l].view(seq)?)]
                        } else if gather_hot {
                            let (ck, cv, cpos) = caches[l].gather(seq)?;
                            [RankKv::tensors(SeqKv {
                                k: ck,
                                v: cv,
                                pos: cpos,
                            })]
                        } else {
                            [RankKv::View(caches[l].view(seq)?)]
                        };
                        match direction {
                            RingDirection::Uni => {
                                ring_pass_q_prefill_kv_on(comm, &params, &queries, &kv, layout)?
                            }
                            RingDirection::Bidi => {
                                ring_pass_q_prefill_bidi_kv(comm, &params, &queries, &kv, layout)?
                            }
                        }
                    }
                }
                .pop()
                .ok_or_else(|| CoreError::Internal {
                    detail: "ring returned no output for the rank's sequence".to_string(),
                })?;
                let attn_flat = attn.out.reshape(&[t_local, config.model_dim()])?;
                x.add_assign(&project(reference, pool, &block.wo, &attn_flat)?)?;
                let h = rms_norm_on(pool, &x, config.norm_eps)?;
                let f = if reference {
                    block.ffn.forward_naive(&h)?
                } else {
                    block.ffn.forward_on(pool, &h)?
                };
                x.add_assign(&f)?;
            }
            rms_norm_on(pool, &x, config.norm_eps)
        };
        let ring_result = run_ring_on(n, self.pool_threads, plan.as_ref(), body);
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                for (rank, &len) in self.ranks.iter().zip(&snapshot) {
                    for cache in lock_caches(rank).iter_mut() {
                        let _ = cache.truncate(seq, len);
                    }
                }
                for (rank, &len) in self.qranks.iter().zip(&snapshot) {
                    for cache in lock_caches(rank).iter_mut() {
                        let _ = cache.truncate(seq, len);
                    }
                }
                return Err(ServeError::Core(e));
            }
        };

        // Un-shard to original order.
        let mut out = Tensor::zeros(&[c, config.model_dim()]);
        for (shard, rank_out) in chunk_shards.iter().zip(&outputs) {
            for (row, &pos) in shard.iter().enumerate() {
                out.row_mut(pos - start).copy_from_slice(rank_out.row(row));
            }
        }
        turn.next += c;
        if let Some(state) = self.sessions.get_mut(&seq.0) {
            state.len += c;
        }
        Ok(ServeOutcome {
            activations: out,
            variant: Some(variant),
            traffic,
        })
    }

    /// Decodes one token of the default session: its KV lands on the
    /// rotating round-robin rank (§3.6); each layer's attention is a
    /// batched ring pass-Q decode.
    ///
    /// # Errors
    ///
    /// Propagates layer, cache and communication failures.
    pub fn decode(&mut self, token: u32) -> Result<ServeOutcome, ServeError> {
        self.ensure_default_session()?;
        let mut outcome = self.decode_batch(&[(DEFAULT_SEQ, token)])?;
        let activations = outcome.activations.pop().ok_or_else(|| {
            ServeError::Core(CoreError::Internal {
                detail: "decode batch of one produced no output".to_string(),
            })
        })?;
        Ok(ServeOutcome {
            activations,
            variant: None,
            traffic: outcome.traffic,
        })
    }

    /// One fused batched decode tick: every `(session, token)` pair
    /// contributes exactly one new token; each session's KV lands on its
    /// **own** rotating round-robin rank (per-session step counters keep
    /// the rotation independent of batch composition), owner ranks run
    /// their projections batched over all owned tokens, and each layer's
    /// attention runs under the resolved [`DecodeStrategy`]: the batched
    /// ring pass-Q decode (default), the Helix KV-parallel decode with a
    /// tensor-parallel reshard, or the TP-only KV AllGather.
    ///
    /// Per-session outputs are bit-identical to decoding each session
    /// alone: attention is per-slot over that session's caches, and the
    /// batched GEMMs are row-independent.
    ///
    /// # Errors
    ///
    /// Rejects empty batches and duplicate sessions; unknown sessions
    /// surface as [`ServeError::UnknownSession`]; layer, cache and
    /// communication failures roll the tick back and propagate.
    pub fn decode_batch(
        &mut self,
        batch: &[(SeqId, u32)],
    ) -> Result<DecodeBatchOutcome, ServeError> {
        let n = self.n_ranks;
        if batch.is_empty() {
            return Err(ServeError::Core(CoreError::BadRequest {
                reason: "decode batch is empty".to_string(),
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for (seq, _) in batch {
            if !seen.insert(seq.0) {
                return Err(ServeError::Core(CoreError::BadRequest {
                    reason: format!("session {seq} appears twice in one decode batch"),
                }));
            }
        }

        // Per-session owner assignment: each session's own decode counter
        // drives its §3.6 rotation.
        let owners: Vec<usize> = batch
            .iter()
            .map(|&(seq, _)| Ok(self.state(seq)?.decode_step % n))
            .collect::<Result<_, ServeError>>()?;
        let (per_rank_bids, slots_per_rank) = decode_slot_layout(&owners, n)?;

        // (bid, token, position, session) per rank, in slot order.
        let assigned: Vec<Vec<(usize, u32, usize, SeqId)>> = per_rank_bids
            .iter()
            .map(|bids| {
                bids.iter()
                    .map(|&b| {
                        let (seq, token) = batch[b];
                        Ok((b, token, self.state(seq)?.len, seq))
                    })
                    .collect::<Result<_, ServeError>>()
            })
            .collect::<Result<_, ServeError>>()?;

        // Snapshot each owner's cache length for failure rollback (only
        // owners append during decode); errors propagate.
        let snapshots: Vec<(usize, SeqId, usize)> = batch
            .iter()
            .zip(&owners)
            .map(|(&(seq, _), &owner)| Ok((owner, seq, self.rank_len(owner, seq)?)))
            .collect::<Result<_, ServeError>>()?;

        let config = *self.model.config();
        let shape = config.shape;
        let params = *self.model.attention_params();
        let model = &self.model;
        let ranks = &self.ranks;
        let assigned_ref = &assigned;
        let batch_seqs: Vec<SeqId> = batch.iter().map(|&(seq, _)| seq).collect();
        let batch_seqs_ref = &batch_seqs;

        // Pick the tick's decode strategy from the batch's total live
        // context (pin > fixed default > Appendix-D priced Auto), and
        // pre-split the TP weight shards once if Helix will reshard.
        let ctx_total: usize = batch
            .iter()
            .map(|&(seq, _)| Ok(self.state(seq)?.len + 1))
            .sum::<Result<usize, ServeError>>()?;
        let strategy = self.resolve_decode_strategy(ctx_total, batch.len());
        if strategy == DecodeStrategy::Helix && self.tp_shards.is_none() {
            self.tp_shards = Some(split_tp_shards(&self.model, n)?);
        }

        // The decode rings are layout-free (the batched All2All return is
        // direct), so only the direction of the schedule family applies
        // here — and only to the pass-Q strategy's ring.
        let (direction, _) = self.resolve_schedule(RingVariant::PassQ, batch.len(), 0)?;

        // Declared schedule for checked mode: decode traffic depends only
        // on which ranks own live slots, not on cache contents.
        let plan = if self.check_schedules {
            let slots: Vec<Vec<Option<DecodeSlot>>> = assigned
                .iter()
                .map(|owned| {
                    let mut rank_slots: Vec<Option<DecodeSlot>> = owned
                        .iter()
                        .map(|&(bid, _, pos, _)| {
                            Some(DecodeSlot {
                                bid,
                                q: Tensor::zeros(&[1, shape.n_heads(), shape.head_dim()]),
                                pos,
                            })
                        })
                        .collect();
                    rank_slots.resize(slots_per_rank, None);
                    rank_slots
                })
                .collect();
            let layer_plan = match strategy {
                DecodeStrategy::PassQ => match direction {
                    RingDirection::Uni => decode_plan(&params, &slots)?,
                    RingDirection::Bidi => decode_bidi_plan(&params, &slots)?,
                },
                // One Helix layer = the decode exchange plus the three
                // reshard collectives, in exactly the order the body
                // issues them.
                DecodeStrategy::Helix => helix_layer_plan(&params, &slots, config.model_dim())?,
                // TP-only moves each rank's post-append shard of every
                // batched session over one KV AllGather per layer.
                DecodeStrategy::TpOnly => {
                    let (n_kv, dh) = (shape.n_kv_heads(), shape.head_dim());
                    let kv_bytes = (0..n)
                        .map(|r| {
                            let seqs = batch
                                .iter()
                                .zip(&owners)
                                .map(|(&(seq, _), &owner)| {
                                    let len = self.rank_len(r, seq)? + usize::from(owner == r);
                                    Ok(SeqKv {
                                        k: Tensor::zeros(&[len, n_kv, dh]),
                                        v: Tensor::zeros(&[len, n_kv, dh]),
                                        pos: vec![PAD; len],
                                    })
                                })
                                .collect::<Result<Vec<_>, ServeError>>()?;
                            Ok(RingMsg::Kv { seqs }.wire_bytes())
                        })
                        .collect::<Result<Vec<usize>, ServeError>>()?;
                    tp_only_decode_plan(&kv_bytes)?
                }
            };
            Some(stacked_plan(layer_plan, config.n_layers))
        } else {
            None
        };

        let reference = self.reference_gemm;
        let gather_hot = self.gather_hot_kv;
        let total_quant = self.kv_precision == KvPrecision::Int8Total;
        let qranks = &self.qranks;
        let bt = batch.len();
        let batch_tokens: Vec<u32> = batch.iter().map(|&(_, token)| token).collect();
        let batch_tokens_ref = &batch_tokens;
        let tp_ref = self
            .tp_shards
            .as_deref()
            .filter(|_| strategy == DecodeStrategy::Helix);
        let attn_block = attn_block_for(self.cache_cfg.page_size);
        let body =
            move |comm: &cp_comm::Communicator<RingMsg>| {
                let r = comm.rank();
                let pool = comm.pool();
                let mut caches = lock_caches(&ranks[r]);
                let mut qcaches = qranks.get(r).filter(|_| total_quant).map(lock_caches);
                let dh = shape.head_dim();
                let d_model = config.model_dim();
                let owned: &[(usize, u32, usize, SeqId)] =
                    assigned_ref.get(r).map(Vec::as_slice).unwrap_or(&[]);
                let b = owned.len();
                let positions: Vec<usize> = owned.iter().map(|&(_, _, pos, _)| pos).collect();

                if strategy == DecodeStrategy::Helix {
                    let tp = tp_ref.ok_or_else(|| CoreError::Internal {
                        detail: "helix decode ran without TP weight shards".to_string(),
                    })?;
                    // Helix replicates the residual stream: every rank embeds
                    // the whole batch (a cheap deterministic lookup, no
                    // communication), so post-attention activations can run
                    // tensor-parallel without a scatter.
                    let mut x_all = model.embed(batch_tokens_ref);
                    for (l, block) in model.blocks().iter().enumerate() {
                        let h_all = rms_norm_on(pool, &x_all, config.norm_eps)?;
                        // Owners project and append only their owned rows —
                        // row-wise ops, so the KV appends and query slots are
                        // bit-identical to the pass-Q owner path.
                        let mut slots: Vec<Option<DecodeSlot>> = Vec::with_capacity(slots_per_rank);
                        if b > 0 {
                            let mut h_own = Tensor::zeros(&[b, d_model]);
                            for (j, &(bid, ..)) in owned.iter().enumerate() {
                                h_own.row_mut(j).copy_from_slice(h_all.row(bid));
                            }
                            let mut q_all = project(reference, pool, &block.wq, &h_own)?
                                .reshape(&[b, shape.n_heads(), dh])?;
                            let mut k_all = project(reference, pool, &block.wk, &h_own)?
                                .reshape(&[b, shape.n_kv_heads(), dh])?;
                            let v_all = project(reference, pool, &block.wv, &h_own)?.reshape(&[
                                b,
                                shape.n_kv_heads(),
                                dh,
                            ])?;
                            apply_rope(&mut q_all, &positions, config.rope_base)?;
                            apply_rope(&mut k_all, &positions, config.rope_base)?;
                            for (j, &(bid, _, pos, seq)) in owned.iter().enumerate() {
                                let k_j = k_all.slice_dim0(j..j + 1)?;
                                let v_j = v_all.slice_dim0(j..j + 1)?;
                                caches[l].append(seq, &k_j, &v_j, &[pos])?;
                                if let Some(qc) = qcaches.as_mut() {
                                    qc[l].append(seq, &k_j, &v_j, &[pos])?;
                                }
                                slots.push(Some(DecodeSlot {
                                    bid,
                                    q: q_all.slice_dim0(j..j + 1)?,
                                    pos,
                                }));
                            }
                        }
                        slots.resize_with(slots_per_rank, || None);
                        let mut batch_kv: Vec<RankKv<'_>> = Vec::with_capacity(bt);
                        for &seq in batch_seqs_ref {
                            batch_kv.push(if let Some(qc) = qcaches.as_ref() {
                                RankKv::QuantView(qc[l].view(seq)?)
                            } else if gather_hot {
                                let (ck, cv, cpos) = caches[l].gather(seq)?;
                                RankKv::tensors(SeqKv {
                                    k: ck,
                                    v: cv,
                                    pos: cpos,
                                })
                            } else {
                                RankKv::View(caches[l].view(seq)?)
                            });
                        }
                        // KV-parallel attention: one DecodeQ AllGather + the
                        // exact merge (bitwise equal to the pass-Q ring).
                        let outs = helix_decode_kv(comm, &params, &slots, &batch_kv)?;
                        let attn_own = if outs.is_empty() {
                            Tensor::zeros(&[0, d_model])
                        } else {
                            let rows = outs
                                .into_iter()
                                .map(|attn| attn.out.reshape(&[1, d_model]))
                                .collect::<Result<Vec<_>, _>>()?;
                            Tensor::concat_dim0(rows.iter())?
                        };
                        // Reshard to the TP layout: gather every owner's
                        // merged attention rows so all ranks hold [B, D].
                        let gathered = comm.all_gather(RingMsg::Act { x: attn_own })?;
                        let mut attn_all = Tensor::zeros(&[bt, d_model]);
                        for (src, msg) in gathered.iter().enumerate() {
                            let RingMsg::Act { x } = msg else {
                                return Err(CoreError::BadRequest {
                                    reason: format!(
                                        "helix reshard AllGather slot {src} carries {}",
                                        msg.variant_name()
                                    ),
                                });
                            };
                            let src_owned = assigned_ref.get(src).map(Vec::as_slice).unwrap_or(&[]);
                            if x.dim0() != src_owned.len() {
                                return Err(CoreError::Internal {
                                    detail: format!(
                                        "helix reshard rank {src} sent {} rows for {} slots",
                                        x.dim0(),
                                        src_owned.len()
                                    ),
                                });
                            }
                            for (j, &(bid, ..)) in src_owned.iter().enumerate() {
                                attn_all.row_mut(bid).copy_from_slice(x.row(j));
                            }
                        }
                        // Row-parallel output projection over this rank's
                        // feature slice, AllReduce-summed.
                        let cols = d_model / n;
                        let attn_cols = slice_cols(&attn_all, r * cols, (r + 1) * cols)?;
                        let wo_out = act_all_reduce(
                            comm,
                            project(reference, pool, &tp[l].wo_rows[r], &attn_cols)?,
                        )?;
                        x_all.add_assign(&wo_out)?;
                        // TP FFN: gate/up column-parallel (local), down
                        // row-parallel + AllReduce.
                        let h2 = rms_norm_on(pool, &x_all, config.norm_eps)?;
                        let mut g = project(reference, pool, &tp[l].gate_cols[r], &h2)?.map(silu);
                        let u = project(reference, pool, &tp[l].up_cols[r], &h2)?;
                        g.mul_assign(&u)?;
                        let ffn_out = act_all_reduce(
                            comm,
                            project(reference, pool, &tp[l].down_rows[r], &g)?,
                        )?;
                        x_all.add_assign(&ffn_out)?;
                    }
                    if b == 0 {
                        return Ok(None);
                    }
                    let x_final = rms_norm_on(pool, &x_all, config.norm_eps)?;
                    let mut mine = Tensor::zeros(&[b, d_model]);
                    for (j, &(bid, ..)) in owned.iter().enumerate() {
                        mine.row_mut(j).copy_from_slice(x_final.row(bid));
                    }
                    return Ok(Some(mine));
                }

                let tokens: Vec<u32> = owned.iter().map(|&(_, token, _, _)| token).collect();
                let mut x = (b > 0).then(|| model.embed(&tokens));
                for (l, block) in model.blocks().iter().enumerate() {
                    // Owner ranks project all their owned tokens in one
                    // batched GEMM (continuous batching's arithmetic-intensity
                    // win) and append each token's KV to its session.
                    let mut slots: Vec<Option<DecodeSlot>> = Vec::with_capacity(slots_per_rank);
                    if let Some(x_ref) = &x {
                        let h = rms_norm_on(pool, x_ref, config.norm_eps)?;
                        let mut q_all = project(reference, pool, &block.wq, &h)?.reshape(&[
                            b,
                            shape.n_heads(),
                            dh,
                        ])?;
                        let mut k_all = project(reference, pool, &block.wk, &h)?.reshape(&[
                            b,
                            shape.n_kv_heads(),
                            dh,
                        ])?;
                        let v_all = project(reference, pool, &block.wv, &h)?.reshape(&[
                            b,
                            shape.n_kv_heads(),
                            dh,
                        ])?;
                        apply_rope(&mut q_all, &positions, config.rope_base)?;
                        apply_rope(&mut k_all, &positions, config.rope_base)?;
                        for (j, &(bid, _, pos, seq)) in owned.iter().enumerate() {
                            let k_j = k_all.slice_dim0(j..j + 1)?;
                            let v_j = v_all.slice_dim0(j..j + 1)?;
                            caches[l].append(seq, &k_j, &v_j, &[pos])?;
                            if let Some(qc) = qcaches.as_mut() {
                                qc[l].append(seq, &k_j, &v_j, &[pos])?;
                            }
                            slots.push(Some(DecodeSlot {
                                bid,
                                q: q_all.slice_dim0(j..j + 1)?,
                                pos,
                            }));
                        }
                    }
                    slots.resize_with(slots_per_rank, || None);
                    // The decode hot path: every rank attends over its own
                    // resident cache of every batched session. The zero-copy
                    // views keep the per-step cost at O(pages) instead of an
                    // O(context) gather copy.
                    let mut batch_kv: Vec<RankKv<'_>> = Vec::with_capacity(batch_seqs_ref.len());
                    for &seq in batch_seqs_ref {
                        batch_kv.push(if let Some(qc) = qcaches.as_ref() {
                            RankKv::QuantView(qc[l].view(seq)?)
                        } else if gather_hot {
                            let (ck, cv, cpos) = caches[l].gather(seq)?;
                            RankKv::tensors(SeqKv {
                                k: ck,
                                v: cv,
                                pos: cpos,
                            })
                        } else {
                            RankKv::View(caches[l].view(seq)?)
                        });
                    }
                    let outs = match strategy {
                        DecodeStrategy::PassQ => match direction {
                            RingDirection::Uni => {
                                ring_pass_q_decode_kv(comm, &params, &slots, &batch_kv)?
                            }
                            RingDirection::Bidi => {
                                ring_pass_q_decode_bidi_kv(comm, &params, &slots, &batch_kv)?
                            }
                        },
                        // TP-only: broadcast this rank's post-append shard of
                        // every batched session; owners fold one partial per
                        // shard in rank order — bit-identical to pass-Q.
                        DecodeStrategy::TpOnly => {
                            let wire: Vec<SeqKv> = if n > 1 {
                                batch_seqs_ref
                                    .iter()
                                    .map(|&seq| {
                                        if let Some(qc) = qcaches.as_ref() {
                                            let (k, v, pos) = qc[l].gather_quantized(seq)?;
                                            Ok(SeqKv {
                                                k: k.dequantize(),
                                                v: v.dequantize(),
                                                pos,
                                            })
                                        } else {
                                            let (ck, cv, cpos) = caches[l].gather(seq)?;
                                            Ok(SeqKv {
                                                k: ck,
                                                v: cv,
                                                pos: cpos,
                                            })
                                        }
                                    })
                                    .collect::<Result<_, CoreError>>()?
                            } else {
                                Vec::new()
                            };
                            tp_only_decode_kv(comm, &params, &slots, &batch_kv, &wire, attn_block)?
                        }
                        DecodeStrategy::Helix => {
                            return Err(CoreError::Internal {
                                detail: "helix decode fell through to the owner-local path"
                                    .to_string(),
                            });
                        }
                    };
                    if let Some(x_val) = x.take() {
                        let rows = outs
                            .into_iter()
                            .map(|attn| attn.out.reshape(&[1, config.model_dim()]))
                            .collect::<Result<Vec<_>, _>>()?;
                        let attn_flat = Tensor::concat_dim0(rows.iter())?;
                        let mut x_new = x_val;
                        x_new.add_assign(&project(reference, pool, &block.wo, &attn_flat)?)?;
                        let h = rms_norm_on(pool, &x_new, config.norm_eps)?;
                        let f = if reference {
                            block.ffn.forward_naive(&h)?
                        } else {
                            block.ffn.forward_on(pool, &h)?
                        };
                        x_new.add_assign(&f)?;
                        x = Some(x_new);
                    }
                }
                match x {
                    Some(x) => Ok(Some(rms_norm_on(pool, &x, config.norm_eps)?)),
                    None => Ok(None),
                }
            };
        let ring_result = run_ring_on(n, self.pool_threads, plan.as_ref(), body);
        let (outputs, traffic) = match ring_result {
            Ok(v) => v,
            Err(e) => {
                for &(owner, seq, len) in &snapshots {
                    if let Some(rank) = self.ranks.get(owner) {
                        for cache in lock_caches(rank).iter_mut() {
                            let _ = cache.truncate(seq, len);
                        }
                    }
                    if let Some(rank) = self.qranks.get(owner) {
                        for cache in lock_caches(rank).iter_mut() {
                            let _ = cache.truncate(seq, len);
                        }
                    }
                }
                return Err(ServeError::Core(e));
            }
        };

        // Scatter each rank's rows back to batch order.
        let mut activations: Vec<Option<Tensor>> = vec![None; batch.len()];
        for (owned, rank_out) in assigned.iter().zip(&outputs) {
            if let Some(rows) = rank_out {
                for (j, &(bid, ..)) in owned.iter().enumerate() {
                    if let Some(slot) = activations.get_mut(bid) {
                        *slot = Some(rows.slice_dim0(j..j + 1)?);
                    }
                }
            }
        }
        let activations = activations
            .into_iter()
            .map(|a| {
                a.ok_or_else(|| {
                    ServeError::Core(CoreError::Internal {
                        detail: "a decode slot produced no output".to_string(),
                    })
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        for &(seq, _) in batch {
            if let Some(state) = self.sessions.get_mut(&seq.0) {
                state.len += 1;
                state.decode_step += 1;
            }
        }
        Ok(DecodeBatchOutcome {
            activations,
            traffic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_kvcache::CacheError;
    use cp_model::TransformerConfig;

    fn model(seed: u64) -> Transformer {
        Transformer::new(&TransformerConfig::tiny(), seed)
    }

    #[test]
    fn duplicate_session_is_a_typed_error_not_a_panic() {
        // Regression: the seed engine ran `create_sequence(SEQ)
        // .expect("fresh cache")` and panicked when a sequence already
        // existed; a duplicate create must now surface as
        // `ServeError::SequenceExists`.
        let mut engine = TransformerEngine::new(model(1), 2).unwrap();
        engine.create_session(SeqId(5)).unwrap();
        let err = engine.create_session(SeqId(5)).unwrap_err();
        assert_eq!(err, ServeError::SequenceExists { seq: SeqId(5) });
        // The engine keeps serving.
        engine.prefill_session(SeqId(5), &[1, 2, 3]).unwrap();
        assert_eq!(engine.session_len(SeqId(5)).unwrap(), 3);
    }

    #[test]
    fn unknown_session_is_typed() {
        let mut engine = TransformerEngine::new(model(2), 2).unwrap();
        let err = engine.prefill_session(SeqId(9), &[1]).unwrap_err();
        assert_eq!(err, ServeError::UnknownSession { seq: SeqId(9) });
        assert!(matches!(
            engine.free_session(SeqId(9)).unwrap_err(),
            ServeError::UnknownSession { .. }
        ));
        assert!(engine.session_len(SeqId(9)).is_err());
        assert!(engine.rank_kv_lens_for(SeqId(9)).is_err());
    }

    #[test]
    fn poisoned_sequence_surfaces_as_serve_error_not_wrong_variant() {
        // Regression for the `seq_len(SEQ).unwrap_or(0)` pattern: a cache
        // mutated behind the session table's back used to read as "empty
        // cache", silently feeding t = 0 / p = 0 into `choose_variant`.
        // Now the next turn fails with a typed cache error before any
        // ring work runs.
        let mut engine = TransformerEngine::new(model(3), 2).unwrap();
        engine.prefill(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        // Poison: drop the sequence from rank 0's caches directly.
        for cache in lock_caches(&engine.ranks[0]).iter_mut() {
            cache.free_sequence(DEFAULT_SEQ).unwrap();
        }
        let err = engine.prefill(&[9, 10]).unwrap_err();
        assert!(
            matches!(err, ServeError::Cache(CacheError::UnknownSequence { .. })),
            "got {err:?}"
        );
        assert!(engine.rank_kv_lens().is_err());
        let err = engine.decode(11).unwrap_err();
        assert!(
            matches!(err, ServeError::Cache(CacheError::UnknownSequence { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn desynced_session_table_is_detected() {
        // Truncating a rank's cache behind the engine's back leaves the
        // session table claiming more tokens than the caches hold: the
        // next turn must refuse with SessionDesync, not run the heuristic
        // on a wrong (T, P).
        let mut engine = TransformerEngine::new(model(4), 2).unwrap();
        engine.prefill(&[1, 2, 3, 4, 5, 6]).unwrap();
        for cache in lock_caches(&engine.ranks[1]).iter_mut() {
            cache.truncate(DEFAULT_SEQ, 0).unwrap();
        }
        let err = engine.prefill(&[7]).unwrap_err();
        assert!(matches!(err, ServeError::SessionDesync { .. }), "{err:?}");
    }

    #[test]
    fn free_session_releases_pages_for_reuse() {
        let mut engine = TransformerEngine::with_cache_limit(model(5), 2, Some(1)).unwrap();
        engine.create_session(SeqId(1)).unwrap();
        engine
            .prefill_session(SeqId(1), &(0..20u32).collect::<Vec<_>>())
            .unwrap();
        // A second session cannot fit while the first holds every page.
        engine.create_session(SeqId(2)).unwrap();
        let err = engine
            .prefill_session(SeqId(2), &(0..20u32).collect::<Vec<_>>())
            .unwrap_err();
        assert!(err.is_out_of_pages(), "{err:?}");
        // Evicting the first frees its pages; the second now fits.
        engine.free_session(SeqId(1)).unwrap();
        engine
            .prefill_session(SeqId(2), &(0..20u32).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(engine.session_len(SeqId(2)).unwrap(), 20);
        assert!(!engine.has_session(SeqId(1)));
    }

    /// Prefills two sessions and runs three batched decode ticks under
    /// the given strategy pin (`None` = the engine default), returning
    /// each tick's per-session activations.
    fn decode_activations(
        n: usize,
        strategy: Option<DecodeStrategy>,
        precision: KvPrecision,
    ) -> Vec<Vec<Tensor>> {
        let mut engine = TransformerEngine::new(model(40), n)
            .unwrap()
            .with_kv_precision(precision);
        if let Some(s) = strategy {
            engine = engine.with_decode_strategy(s);
        }
        engine.create_session(SeqId(1)).unwrap();
        engine.create_session(SeqId(2)).unwrap();
        engine
            .prefill_session(SeqId(1), &(0..19u32).collect::<Vec<_>>())
            .unwrap();
        engine
            .prefill_session(SeqId(2), &(100..107u32).collect::<Vec<_>>())
            .unwrap();
        (0..3u32)
            .map(|step| {
                engine
                    .decode_batch(&[(SeqId(1), 50 + step), (SeqId(2), 80 + step)])
                    .unwrap()
                    .activations
            })
            .collect()
    }

    #[test]
    fn helix_decode_matches_pass_q_activations() {
        // The Helix reshard's row-split GEMMs regroup fp sums, so the
        // full-model activations are numerically equal (not bitwise) to
        // batched pass-Q — at every world size and KV precision.
        for n in [1usize, 2, 4] {
            for precision in [KvPrecision::F32, KvPrecision::Int8Total] {
                let passq = decode_activations(n, Some(DecodeStrategy::PassQ), precision);
                let helix = decode_activations(n, Some(DecodeStrategy::Helix), precision);
                for (p_step, h_step) in passq.iter().zip(&helix) {
                    for (p, h) in p_step.iter().zip(h_step) {
                        assert!(
                            p.approx_eq(h, 1e-4).unwrap(),
                            "n={n} {precision:?}: {}",
                            p.max_abs_diff(h).unwrap()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tp_only_decode_is_bit_identical_to_pass_q() {
        // TP-only reuses the pass-Q owner path and folds the same
        // per-shard partials in the same order — bitwise, not just close.
        for n in [1usize, 2, 4] {
            for precision in [KvPrecision::F32, KvPrecision::Int8Total] {
                let passq = decode_activations(n, None, precision);
                let tp = decode_activations(n, Some(DecodeStrategy::TpOnly), precision);
                assert_eq!(passq, tp, "n={n} {precision:?}");
            }
        }
    }

    #[test]
    fn helix_and_tp_only_decode_pass_checked_schedules() {
        // Checked mode validates live traffic against the stacked
        // per-layer plans (`helix_layer_plan` / `tp_only_decode_plan`);
        // any drift between the declared reshard collectives and what the
        // decode body issues fails the tick.
        for strategy in [DecodeStrategy::Helix, DecodeStrategy::TpOnly] {
            for n in [1usize, 2, 4] {
                let mut engine = TransformerEngine::new(model(41), n)
                    .unwrap()
                    .with_schedule_checking(true)
                    .with_decode_strategy(strategy);
                engine.prefill(&(0..11u32).collect::<Vec<_>>()).unwrap();
                for t in 0..3 {
                    engine.decode(20 + t).unwrap();
                }
                assert_eq!(engine.context_len(), 14);
            }
        }
    }

    #[test]
    fn helix_decode_traffic_has_no_ring_hops() {
        // Helix replaces the n-1 DecodeQ SendRecv hops with one AllGather
        // and adds the reshard AllGather + two AllReduces per layer;
        // pass-Q keeps the hop chain. The traffic report shows the swap.
        let mut helix = TransformerEngine::new(model(42), 2)
            .unwrap()
            .with_decode_strategy(DecodeStrategy::Helix);
        helix.prefill(&(0..9u32).collect::<Vec<_>>()).unwrap();
        let ht = helix.decode(30).unwrap().traffic;
        assert_eq!(ht.send_recv_bytes, 0, "helix decode must not hop");
        assert!(ht.all_gather_bytes > 0);
        assert!(ht.all_reduce.bytes > 0);

        let mut passq = TransformerEngine::new(model(42), 2).unwrap();
        passq.prefill(&(0..9u32).collect::<Vec<_>>()).unwrap();
        let pt = passq.decode(30).unwrap().traffic;
        assert!(pt.send_recv_bytes > 0, "pass-q decode circulates queries");
        assert_eq!(pt.all_reduce.bytes, 0);
    }

    #[test]
    fn auto_schedule_decode_matches_pinned_strategy() {
        // At this tick's short context the Appendix-D pricing picks
        // TP-only (one latency beats Helix's two; the tiny KV shard is
        // nearly free to move) — and TP-only is bit-identical to pass-Q,
        // so Auto must reproduce the pinned default exactly. Both engines
        // run the same auto schedule so the prefill ring family (exact
        // but not bitwise across families) is held constant.
        let run = |pin: Option<DecodeStrategy>| {
            let mut engine = TransformerEngine::new(model(43), 2)
                .unwrap()
                .with_auto_schedule(TopologySpec::uniform(2, 100.0, 5.0));
            if let Some(s) = pin {
                engine = engine.with_decode_strategy(s);
            }
            engine.prefill(&(0..13u32).collect::<Vec<_>>()).unwrap();
            (0..3u32)
                .map(|t| engine.decode(60 + t).unwrap().activations)
                .collect::<Vec<_>>()
        };
        let auto = run(None);
        let passq = run(Some(DecodeStrategy::PassQ));
        let tponly = run(Some(DecodeStrategy::TpOnly));
        assert_eq!(auto, tponly);
        assert_eq!(auto, passq);
    }

    #[test]
    fn helix_rejects_indivisible_tp_split() {
        // tiny() has D=32: three ranks cannot row-split the output
        // projection, and the tick must fail typed instead of panicking.
        let mut engine = TransformerEngine::new(model(44), 3)
            .unwrap()
            .with_decode_strategy(DecodeStrategy::Helix);
        engine.prefill(&(0..7u32).collect::<Vec<_>>()).unwrap();
        let err = engine.decode(9).unwrap_err();
        assert!(
            matches!(err, ServeError::Core(CoreError::BadRequest { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn sessions_are_listed_in_order() {
        let mut engine = TransformerEngine::new(model(6), 1).unwrap();
        for id in [4u64, 1, 3] {
            engine.create_session(SeqId(id)).unwrap();
        }
        assert_eq!(engine.sessions(), vec![SeqId(1), SeqId(3), SeqId(4)]);
        assert_eq!(engine.cache_stats().len(), 1);
    }
}
