//! Typed errors of the serving layer.
//!
//! The serving engine and scheduler never panic on request-level failures:
//! duplicate sessions, unknown sessions, cache exhaustion and desyncs
//! between the session table and the per-rank caches all surface as
//! [`ServeError`] values the scheduler's policies (eviction, requeue) can
//! act on.

use std::error::Error;
use std::fmt;

use cp_core::CoreError;
use cp_kvcache::{CacheError, SeqId};

/// Error returned by the serving engine and scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A session with this id is already being served — the typed
    /// replacement for the engine's historical `expect("fresh cache")`
    /// panic when a prefill was issued while a sequence existed.
    SequenceExists {
        /// The duplicated session id.
        seq: SeqId,
    },
    /// The session id is not in the engine's session table.
    UnknownSession {
        /// The missing session id.
        seq: SeqId,
    },
    /// The session table and the per-rank caches disagree about a
    /// sequence's length — a poisoned session (e.g. a cache mutated
    /// behind the engine's back, or a chunked prefill turn resumed after
    /// other work touched the session). Surfaced instead of silently
    /// feeding a wrong `(T, P)` point into the variant heuristic.
    SessionDesync {
        /// The inconsistent session.
        seq: SeqId,
        /// Length the session table expects.
        expected: usize,
        /// Length the caches actually hold.
        actual: usize,
    },
    /// An engine-level failure (attention, communication, sharding, ...).
    Core(CoreError),
    /// A KV-cache failure (out of pages, unknown sequence, ...).
    Cache(CacheError),
}

impl ServeError {
    /// Whether this error is KV-cache page exhaustion — the condition the
    /// scheduler's eviction policy reacts to.
    ///
    /// Cache errors raised *inside* a ring body cross the fabric boundary
    /// stringified as a rank failure (`CommError::RankFailed`), so this
    /// also recognizes page exhaustion from the failure's kind/detail.
    pub fn is_out_of_pages(&self) -> bool {
        match self {
            ServeError::Cache(CacheError::OutOfPages { .. })
            | ServeError::Core(CoreError::Cache(CacheError::OutOfPages { .. })) => true,
            ServeError::Core(CoreError::Comm(cp_comm::CommError::RankFailed {
                kind,
                detail,
                ..
            })) => *kind == "kv-cache" && detail.contains("out of KV-cache pages"),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::SequenceExists { seq } => {
                write!(f, "session {seq} already exists")
            }
            ServeError::UnknownSession { seq } => write!(f, "unknown session {seq}"),
            ServeError::SessionDesync {
                seq,
                expected,
                actual,
            } => write!(
                f,
                "session {seq} desynced: table says {expected} tokens, caches hold {actual}"
            ),
            ServeError::Core(e) => write!(f, "engine failure: {e}"),
            ServeError::Cache(e) => write!(f, "cache failure: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<CacheError> for ServeError {
    fn from(e: CacheError) -> Self {
        ServeError::Cache(e)
    }
}

impl From<cp_sharding::ShardingError> for ServeError {
    fn from(e: cp_sharding::ShardingError) -> Self {
        ServeError::Core(CoreError::from(e))
    }
}

impl From<cp_tensor::TensorError> for ServeError {
    fn from(e: cp_tensor::TensorError) -> Self {
        ServeError::Core(CoreError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_session() {
        assert!(ServeError::SequenceExists { seq: SeqId(7) }
            .to_string()
            .contains('7'));
        assert!(ServeError::UnknownSession { seq: SeqId(3) }
            .to_string()
            .contains("unknown"));
        assert!(ServeError::SessionDesync {
            seq: SeqId(1),
            expected: 5,
            actual: 0
        }
        .to_string()
        .contains("desync"));
    }

    #[test]
    fn out_of_pages_detection() {
        let oom = ServeError::Cache(CacheError::OutOfPages {
            needed: 2,
            available: 0,
        });
        assert!(oom.is_out_of_pages());
        assert!(!ServeError::UnknownSession { seq: SeqId(0) }.is_out_of_pages());
        let wrapped = ServeError::Core(CoreError::Cache(CacheError::OutOfPages {
            needed: 1,
            available: 0,
        }));
        assert!(wrapped.is_out_of_pages());
        // The fabric stringifies in-ring cache errors into rank failures;
        // the page-exhaustion signal must survive that boundary.
        let oom = CacheError::OutOfPages {
            needed: 2,
            available: 0,
        };
        let rank_failed = ServeError::Core(CoreError::Comm(cp_comm::CommError::RankFailed {
            rank: 1,
            kind: "kv-cache",
            detail: format!("kv-cache error: {oom}"),
        }));
        assert!(rank_failed.is_out_of_pages());
        let other = ServeError::Core(CoreError::Comm(cp_comm::CommError::RankFailed {
            rank: 1,
            kind: "kv-cache",
            detail: "kv-cache error: unknown sequence 3".to_string(),
        }));
        assert!(!other.is_out_of_pages());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
