//! Full-model context-parallel serving: multi-turn prefill and
//! incremental decode of a GQA transformer with **distributed, per-layer,
//! persistent KV caches** — the paper's complete serving story, end to
//! end, exactly.
//!
//! `cp-core`'s engine proves the distributed-attention machinery on one
//! representative layer; `cp-model` proves the full layer stack for a
//! single prefill. This crate composes them into what the production
//! system actually is:
//!
//! * [`TransformerEngine`] — each CP rank owns one paged KV cache *per
//!   layer*; user turns run fused partial prefill (ring pass-KV or pass-Q
//!   per the Algorithm 1 heuristic) through every layer; decode runs one
//!   token at a time with batched ring pass-Q attention per layer, the
//!   token's KV landing on the rotating round-robin rank (§3.6).
//! * [`ReferenceSession`] — the single-device incremental transformer
//!   (classic KV caching) every distributed trace is verified against.
//! * [`Scheduler`] (the `cp-sched` layer, in [`mod@sched`]) — the serving
//!   front-end: admission queue over timed traces, continuous batching of
//!   decode across live sessions (one fused batched pass-Q decode per
//!   tick), chunked prefill interleaved between decode ticks, and
//!   evict-youngest restart-on-evict preemption under paged-KV pressure —
//!   all failures typed ([`ServeError`]), never panics.
//!
//! The headline tests: an arbitrary multi-turn conversation — prefills,
//! decodes, more prefills — produces bit-comparable activations on 1, 2,
//! 3 and 4 ranks, and equals both the incremental reference and a
//! from-scratch [`cp_model::Transformer::forward`] recompute; chunked
//! prefill and batched decode are **bit-identical** to their one-shot /
//! solo counterparts.
//!
//! # Example
//!
//! ```
//! use cp_model::{Transformer, TransformerConfig};
//! use cp_serve::{ReferenceSession, ServeError, TransformerEngine};
//!
//! # fn main() -> Result<(), ServeError> {
//! let model = Transformer::new(&TransformerConfig::tiny(), 3);
//! let mut engine = TransformerEngine::new(model.clone(), 2)?;
//! let mut reference = ReferenceSession::new(model);
//!
//! let prompt = [1u32, 2, 3, 4, 5, 6];
//! let distributed = engine.prefill(&prompt)?;
//! let expected = reference.process(&prompt)?;
//! assert!(distributed.activations.approx_eq(&expected, 3e-3).unwrap());
//!
//! let d = engine.decode(7)?;
//! let e = reference.process(&[7])?;
//! assert!(d.activations.approx_eq(&e, 3e-3).unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod reference;
pub mod sched;

pub use engine::{DecodeBatchOutcome, PrefillTurn, ServeOutcome, TransformerEngine};
pub use error::ServeError;
pub use reference::ReferenceSession;
pub use sched::{SchedConfig, Scheduler, ServeMetrics, TickReport};
