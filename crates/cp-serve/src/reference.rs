//! The single-device incremental (KV-cached) transformer session.

use cp_attention::naive_gqa_attention;
use cp_core::CoreError;
use cp_model::rope::apply_rope;
use cp_model::{rms_norm, Transformer};
use cp_tensor::Tensor;

/// A single-device transformer session with classic per-layer KV caching:
/// each `process` call attends its new tokens against everything cached
/// so far and appends their K/V — the textbook incremental decode loop,
/// and the ground truth for [`crate::TransformerEngine`].
#[derive(Debug, Clone)]
pub struct ReferenceSession {
    model: Transformer,
    /// Per-layer cached keys/values, `[len, n_kv_heads, head_dim]`.
    layer_k: Vec<Tensor>,
    layer_v: Vec<Tensor>,
    len: usize,
}

impl ReferenceSession {
    /// Starts an empty session over `model`.
    pub fn new(model: Transformer) -> Self {
        let shape = model.config().shape;
        let layers = model.config().n_layers;
        let empty = Tensor::zeros(&[0, shape.n_kv_heads(), shape.head_dim()]);
        ReferenceSession {
            layer_k: vec![empty.clone(); layers],
            layer_v: vec![empty; layers],
            model,
            len: 0,
        }
    }

    /// Tokens processed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` before any token has been processed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The model driving the session.
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// Processes `tokens` (a prompt chunk or a single decode token)
    /// against the cached context, returning their final activations
    /// `[t, D]` and extending the cache.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn process(&mut self, tokens: &[u32]) -> Result<Tensor, CoreError> {
        let config = *self.model.config();
        let shape = config.shape;
        let dh = shape.head_dim();
        let t = tokens.len();
        let positions: Vec<usize> = (self.len..self.len + t).collect();
        let mut x = self.model.embed(tokens);
        for (l, block) in self.model.blocks().iter().enumerate() {
            let h = rms_norm(&x, config.norm_eps)?;
            let mut q = block.wq.forward(&h)?.reshape(&[t, shape.n_heads(), dh])?;
            let mut k = block
                .wk
                .forward(&h)?
                .reshape(&[t, shape.n_kv_heads(), dh])?;
            let v = block
                .wv
                .forward(&h)?
                .reshape(&[t, shape.n_kv_heads(), dh])?;
            apply_rope(&mut q, &positions, config.rope_base)?;
            apply_rope(&mut k, &positions, config.rope_base)?;
            self.layer_k[l] = Tensor::concat_dim0([&self.layer_k[l], &k])?;
            self.layer_v[l] = Tensor::concat_dim0([&self.layer_v[l], &v])?;
            let kv_pos: Vec<usize> = (0..self.len + t).collect();
            let attn = naive_gqa_attention(
                &q,
                &self.layer_k[l],
                &self.layer_v[l],
                self.model.attention_params(),
                &positions,
                &kv_pos,
            )?;
            let attn_flat = attn.out.reshape(&[t, config.model_dim()])?;
            x.add_assign(&block.wo.forward(&attn_flat)?)?;
            let h = rms_norm(&x, config.norm_eps)?;
            x.add_assign(&block.ffn.forward(&h)?)?;
        }
        self.len += t;
        rms_norm(&x, config.norm_eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_model::TransformerConfig;

    #[test]
    fn incremental_equals_full_forward() {
        // The defining KV-cache property: processing a sequence in chunks
        // yields exactly the full forward's activations per chunk.
        let model = Transformer::new(&TransformerConfig::tiny(), 7);
        let tokens: Vec<u32> = (0..20).map(|i| i * 7 % 50).collect();
        let full = model.forward(&tokens).unwrap();

        let mut session = ReferenceSession::new(model);
        assert!(session.is_empty());
        let chunks = [
            &tokens[0..6],
            &tokens[6..7],
            &tokens[7..15],
            &tokens[15..20],
        ];
        let mut offset = 0;
        for chunk in chunks {
            let out = session.process(chunk).unwrap();
            let want = full.slice_dim0(offset..offset + chunk.len()).unwrap();
            assert!(
                out.approx_eq(&want, 2e-3).unwrap(),
                "chunk at {offset}: {}",
                out.max_abs_diff(&want).unwrap()
            );
            offset += chunk.len();
        }
        assert_eq!(session.len(), tokens.len());
    }

    #[test]
    fn token_by_token_decode_matches() {
        let model = Transformer::new(&TransformerConfig::tiny(), 8);
        let tokens: Vec<u32> = (0..9).collect();
        let full = model.forward(&tokens).unwrap();
        let mut session = ReferenceSession::new(model);
        for (i, &tok) in tokens.iter().enumerate() {
            let out = session.process(&[tok]).unwrap();
            let want = full.slice_dim0(i..i + 1).unwrap();
            assert!(out.approx_eq(&want, 2e-3).unwrap(), "token {i}");
        }
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let model = Transformer::new(&TransformerConfig::tiny(), 9);
        let mut session = ReferenceSession::new(model);
        session.process(&[1, 2, 3]).unwrap();
        let out = session.process(&[]).unwrap();
        assert_eq!(out.dim0(), 0);
        assert_eq!(session.len(), 3);
    }
}
