//! `cp-sched`: the continuous-batching serving scheduler.
//!
//! The engine ([`crate::TransformerEngine`]) knows how to run one chunk of
//! prefill or one fused batched decode tick; this module decides *what*
//! runs each tick under interactive-traffic SLOs:
//!
//! * **Admission queue** — requests (multi-turn conversations with
//!   arrival times, e.g. from [`cp_workload::timed_trace`]) wait in FIFO
//!   order until the tick clock reaches their arrival.
//! * **Continuous batching** — every tick runs **one** fused batched
//!   pass-Q decode over all sessions currently in their decode phase;
//!   sessions join and leave the batch turn by turn, never stalling each
//!   other.
//! * **Chunked prefill** — each tick also advances at most
//!   `prefill_chunk_tokens` of one session's open prefill turn, so a long
//!   prompt is interleaved *between* decode ticks instead of blocking
//!   them: time-between-tokens stays bounded by one chunk, not one
//!   prompt. Chunking is bitwise-invisible (see
//!   [`crate::TransformerEngine::begin_prefill`]).
//! * **Memory pressure** — when the paged KV pool is exhausted, the
//!   scheduler preempts the *youngest* session by FCFS priority
//!   (arrival order): its pages are freed and its conversation requeued
//!   for a full replay — restart-on-evict preemption. A session may only
//!   evict sessions younger than itself (and prefill work is scheduled
//!   oldest-first), so the oldest request always makes progress and
//!   preemption cannot livelock. Only when nothing is evictable does the
//!   typed [`ServeError`] surface to the caller; nothing panics.
//!
//! Metrics are recorded both in ticks (deterministic, what the tests pin)
//! and in wall-clock time (what the `serve_sched` bench reports as
//! p50/p99 TTFT and TBT).

use std::collections::VecDeque;
use std::time::Instant;

use cp_kvcache::SeqId;
use cp_tensor::Tensor;
use cp_workload::{Conversation, TimedRequest};

use crate::{PrefillTurn, ServeError, TransformerEngine};

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Max prefill tokens advanced per tick (one chunk). `0` disables
    /// chunking (a whole turn per tick).
    pub prefill_chunk_tokens: usize,
    /// Max sessions decoding concurrently; admission waits above this.
    pub max_live_sessions: usize,
    /// Abstract time units per tick — converts [`TimedRequest::arrival`]
    /// times to tick numbers for admission.
    pub time_units_per_tick: f64,
    /// Vocabulary size used to synthesize concrete token ids from
    /// [`cp_workload::trace_token`].
    pub vocab: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            prefill_chunk_tokens: 8,
            max_live_sessions: 8,
            time_units_per_tick: 1.0,
            vocab: 128,
        }
    }
}

/// Where a live session is in its conversation.
#[derive(Debug)]
enum Phase {
    /// Waiting to open its next prompt's prefill turn.
    StartTurn,
    /// Mid-prefill: the open chunked turn and how many prompt tokens ran.
    Prefill(Box<PrefillTurn>),
    /// Decoding the turn's response: tokens left to emit.
    Decode { remaining: usize },
}

/// One admitted conversation being served.
#[derive(Debug)]
struct Session {
    seq: SeqId,
    request: u64,
    arrival_tick: u64,
    conversation: Conversation,
    turn_idx: usize,
    /// Tokens of the conversation consumed so far (prompt + response),
    /// used to index the request's deterministic token stream.
    consumed: usize,
    phase: Phase,
    /// Tick the session last ran any work (diagnostics; eviction keys on
    /// FCFS priority, not recency).
    last_scheduled_tick: u64,
    /// Tick the previous response token of the current turn finished, for
    /// TBT accounting.
    last_token_tick: Option<u64>,
    /// Wall-clock instant of the previous response token.
    last_token_at: Option<Instant>,
    /// Per-turn tick of the prefill's start, for TTFT accounting.
    turn_started_tick: u64,
    /// How many times this session was evicted and restarted.
    restarts: u32,
    /// Final activations of every emitted response token, in emission
    /// order across all turns (the per-session output the bit-identity
    /// tests compare).
    outputs: Vec<Tensor>,
}

impl Session {
    /// FCFS priority: earlier arrivals (then lower request ids) are
    /// served first and evicted last. Restarts keep the original
    /// arrival, so preemption never demotes a request.
    fn priority(&self) -> (u64, u64) {
        (self.arrival_tick, self.request)
    }
}

/// What one [`Scheduler::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Tick number (0-based).
    pub tick: u64,
    /// Sessions admitted from the queue this tick.
    pub admitted: usize,
    /// Prefill tokens advanced this tick.
    pub prefill_tokens: usize,
    /// Sessions that received a decoded token this tick.
    pub decoded: usize,
    /// Sessions evicted (and requeued) under memory pressure this tick.
    pub evicted: usize,
    /// Sessions that completed their conversation this tick.
    pub finished: usize,
}

/// Latency and throughput metrics of a scheduler run.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Ticks from a request's arrival to its first turn's first response
    /// token, one sample per served turn.
    pub ttft_ticks: Vec<u64>,
    /// Wall-clock seconds for the same samples.
    pub ttft_seconds: Vec<f64>,
    /// Ticks between consecutive response tokens of a turn.
    pub tbt_ticks: Vec<u64>,
    /// Wall-clock seconds for the same samples.
    pub tbt_seconds: Vec<f64>,
    /// Total response tokens decoded.
    pub decoded_tokens: usize,
    /// Total prompt tokens prefilled (including eviction replays).
    pub prefilled_tokens: usize,
    /// Total evictions (restart-on-evict preemptions).
    pub evictions: usize,
    /// Conversations fully served.
    pub completed: usize,
}

/// Returns the `q`-quantile (0.0..=1.0) of `samples` by nearest-rank on
/// the sorted data, or `None` when empty.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((sorted.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    sorted
        .get(rank.saturating_sub(1).min(sorted.len() - 1))
        .copied()
}

impl ServeMetrics {
    /// Tick-domain quantile of TTFT.
    pub fn ttft_tick_quantile(&self, q: f64) -> Option<f64> {
        let v: Vec<f64> = self.ttft_ticks.iter().map(|&t| t as f64).collect();
        quantile(&v, q)
    }

    /// Tick-domain quantile of TBT.
    pub fn tbt_tick_quantile(&self, q: f64) -> Option<f64> {
        let v: Vec<f64> = self.tbt_ticks.iter().map(|&t| t as f64).collect();
        quantile(&v, q)
    }
}

/// The continuous-batching scheduler: owns an engine, an admission queue
/// and the live-session table, and advances the system one tick at a
/// time.
#[derive(Debug)]
pub struct Scheduler {
    engine: TransformerEngine,
    config: SchedConfig,
    queue: VecDeque<QueuedRequest>,
    live: Vec<Session>,
    next_seq: u64,
    tick: u64,
    started: Instant,
    metrics: ServeMetrics,
    /// Outputs of completed conversations, keyed by request id.
    completed: Vec<(u64, Vec<Tensor>)>,
}

#[derive(Debug)]
struct QueuedRequest {
    request: u64,
    arrival_tick: u64,
    conversation: Conversation,
    restarts: u32,
}

impl Scheduler {
    /// Wraps an engine with a scheduling policy.
    pub fn new(engine: TransformerEngine, config: SchedConfig) -> Self {
        Scheduler {
            engine,
            config,
            queue: VecDeque::new(),
            live: Vec::new(),
            next_seq: 1,
            tick: 0,
            started: Instant::now(),
            metrics: ServeMetrics::default(),
            completed: Vec::new(),
        }
    }

    /// Submits one conversation arriving `arrival` abstract time units
    /// after start (converted to a tick via
    /// [`SchedConfig::time_units_per_tick`]).
    pub fn submit(&mut self, request: u64, arrival: f64, conversation: Conversation) {
        let per_tick = self.config.time_units_per_tick.max(f64::MIN_POSITIVE);
        let arrival_tick = (arrival / per_tick).floor().max(0.0) as u64;
        self.queue.push_back(QueuedRequest {
            request,
            arrival_tick,
            conversation,
            restarts: 0,
        });
        // Keep FIFO in arrival order even if callers submit out of order.
        let mut items: Vec<QueuedRequest> = self.queue.drain(..).collect();
        items.sort_by_key(|r| (r.arrival_tick, r.request, r.restarts));
        self.queue = items.into();
    }

    /// Submits a whole timed trace.
    pub fn submit_trace(&mut self, trace: &[TimedRequest]) {
        for r in trace {
            self.submit(r.id, r.arrival, r.conversation.clone());
        }
    }

    /// Live + queued work remaining.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.live.len()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &TransformerEngine {
        &self.engine
    }

    /// Per-request response-token activations of completed conversations,
    /// in completion order.
    pub fn outputs(&self) -> &[(u64, Vec<Tensor>)] {
        &self.completed
    }

    /// The `index`-th token of `request`'s deterministic stream.
    fn token(&self, request: u64, index: usize) -> u32 {
        cp_workload::trace_token(request, index, self.config.vocab)
    }

    /// Runs ticks until every submitted conversation completes, with a
    /// safety cap.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable engine error (including
    /// out-of-pages when no other session is evictable).
    pub fn run_to_completion(&mut self, max_ticks: u64) -> Result<Vec<TickReport>, ServeError> {
        let mut reports = Vec::new();
        while self.pending() > 0 {
            if reports.len() as u64 >= max_ticks {
                return Err(ServeError::Core(cp_core::CoreError::Internal {
                    detail: format!("scheduler did not drain within {max_ticks} ticks"),
                }));
            }
            reports.push(self.tick()?);
        }
        Ok(reports)
    }

    /// Advances the system one tick: admit arrivals, run one prefill
    /// chunk, run one fused batched decode over every decoding session.
    ///
    /// # Errors
    ///
    /// Engine failures propagate. Out-of-pages triggers restart-on-evict
    /// preemption first; the error only surfaces when no other session
    /// can be evicted.
    pub fn tick(&mut self) -> Result<TickReport, ServeError> {
        let mut report = TickReport {
            tick: self.tick,
            ..TickReport::default()
        };

        report.admitted = self.admit()?;
        self.advance_turn_starts(&mut report)?;
        self.run_prefill_chunk(&mut report)?;
        self.run_decode_tick(&mut report)?;
        report.finished = self.retire_finished()?;

        self.tick += 1;
        Ok(report)
    }

    /// Admits queued requests whose arrival tick has come, while below
    /// the live-session cap.
    fn admit(&mut self) -> Result<usize, ServeError> {
        let mut admitted = 0;
        while self.live.len() < self.config.max_live_sessions {
            let ready = self
                .queue
                .front()
                .is_some_and(|r| r.arrival_tick <= self.tick);
            if !ready {
                break;
            }
            let Some(r) = self.queue.pop_front() else {
                break;
            };
            let seq = SeqId(self.next_seq);
            self.next_seq += 1;
            self.engine.create_session(seq)?;
            self.live.push(Session {
                seq,
                request: r.request,
                arrival_tick: r.arrival_tick,
                conversation: r.conversation,
                turn_idx: 0,
                consumed: 0,
                phase: Phase::StartTurn,
                last_scheduled_tick: self.tick,
                last_token_tick: None,
                last_token_at: None,
                turn_started_tick: self.tick,
                restarts: r.restarts,
                outputs: Vec::new(),
            });
            admitted += 1;
        }
        Ok(admitted)
    }

    /// Opens prefill turns for sessions at a turn boundary. Opening is
    /// cheap (no ring work): it fixes the turn's sharding and variant.
    fn advance_turn_starts(&mut self, _report: &mut TickReport) -> Result<(), ServeError> {
        for i in 0..self.live.len() {
            if !matches!(self.live[i].phase, Phase::StartTurn) {
                continue;
            }
            let (seq, request, consumed, turn_idx) = {
                let s = &self.live[i];
                (s.seq, s.request, s.consumed, s.turn_idx)
            };
            let Some(turn) = self.live[i].conversation.turns.get(turn_idx).copied() else {
                continue; // retired below
            };
            let prompt: Vec<u32> = (0..turn.prompt_tokens)
                .map(|j| self.token(request, consumed + j))
                .collect();
            let open = self.engine.begin_prefill(seq, &prompt, None)?;
            let s = &mut self.live[i];
            s.turn_started_tick = self.tick;
            s.phase = Phase::Prefill(Box::new(open));
        }
        Ok(())
    }

    /// Advances at most one chunk of the longest-waiting open prefill.
    fn run_prefill_chunk(&mut self, report: &mut TickReport) -> Result<(), ServeError> {
        // Pick the oldest session (FCFS priority) with an open turn: the
        // head-of-line request always gets the prefill slot, which is
        // what guarantees forward progress under preemption.
        let Some(target) = self
            .live
            .iter()
            .filter(|s| matches!(s.phase, Phase::Prefill(_)))
            .min_by_key(|s| s.priority())
            .map(|s| s.seq)
        else {
            return Ok(());
        };
        let chunk = if self.config.prefill_chunk_tokens == 0 {
            usize::MAX
        } else {
            self.config.prefill_chunk_tokens
        };
        loop {
            // Re-locate by session id each attempt: eviction below
            // swap-removes from `live`, invalidating indices.
            let Some(i) = self.live.iter().position(|s| s.seq == target) else {
                return Ok(());
            };
            let Phase::Prefill(turn) = &mut self.live[i].phase else {
                return Ok(());
            };
            let step = chunk.min(turn.remaining()).max(1);
            match self.engine.prefill_chunk(turn, step) {
                Ok(outcome) => {
                    let c = outcome.activations.shape()[0];
                    report.prefill_tokens += c;
                    self.metrics.prefilled_tokens += c;
                    let s = &mut self.live[i];
                    let done = match &s.phase {
                        Phase::Prefill(t) => t.is_done(),
                        _ => false,
                    };
                    s.last_scheduled_tick = self.tick;
                    s.consumed += c;
                    if done {
                        let response = s
                            .conversation
                            .turns
                            .get(s.turn_idx)
                            .map_or(0, |t| t.response_tokens);
                        s.last_token_tick = None;
                        s.last_token_at = None;
                        s.phase = Phase::Decode {
                            remaining: response,
                        };
                    }
                    return Ok(());
                }
                Err(e) if e.is_out_of_pages() => {
                    let requester = self
                        .live
                        .iter()
                        .find(|s| s.seq == target)
                        .map(Session::priority);
                    if self.evict_youngest(requester, report)? == 0 {
                        if self.live.len() <= 1 {
                            // Nothing to wait for: the request alone
                            // exceeds the pool. Surface the typed error.
                            return Err(e);
                        }
                        // Only older sessions hold pages; wait for them
                        // to finish instead of evicting (which could
                        // ping-pong forever). The chunk rolled back, so
                        // retrying next tick is safe.
                        return Ok(());
                    }
                    // Retry the same chunk with the freed pages; the open
                    // turn is untouched (failed chunks roll back).
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs one fused batched decode over every session in decode phase.
    fn run_decode_tick(&mut self, report: &mut TickReport) -> Result<(), ServeError> {
        loop {
            let batch: Vec<(usize, SeqId, u32)> = self
                .live
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s.phase {
                    Phase::Decode { remaining } if remaining > 0 => {
                        Some((i, s.seq, self.token(s.request, s.consumed)))
                    }
                    _ => None,
                })
                .collect();
            if batch.is_empty() {
                // Turns with zero response tokens still advance.
                self.finish_empty_decodes();
                return Ok(());
            }
            let engine_batch: Vec<(SeqId, u32)> =
                batch.iter().map(|&(_, seq, tok)| (seq, tok)).collect();
            match self.engine.decode_batch(&engine_batch) {
                Ok(outcome) => {
                    let now = Instant::now();
                    for (&(i, ..), activations) in batch.iter().zip(outcome.activations) {
                        self.record_token(i, activations, now);
                    }
                    report.decoded = batch.len();
                    self.finish_empty_decodes();
                    return Ok(());
                }
                Err(e) if e.is_out_of_pages() => {
                    // Preempt the youngest session to un-wedge the batch
                    // (it may itself be a batch member — the batch is
                    // rebuilt each retry). With a single live session
                    // there is nothing to trade off: surface the error.
                    if self.live.len() <= 1 || self.evict_youngest(None, report)? == 0 {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Records one decoded token for session `i`.
    fn record_token(&mut self, i: usize, activations: Tensor, now: Instant) {
        let tick = self.tick;
        let started = self.started;
        let metrics = &mut self.metrics;
        let Some(s) = self.live.get_mut(i) else {
            return;
        };
        let seconds_now = now.duration_since(started).as_secs_f64();
        match (s.last_token_tick, s.last_token_at) {
            (Some(prev_tick), Some(prev_at)) => {
                metrics.tbt_ticks.push(tick - prev_tick);
                metrics
                    .tbt_seconds
                    .push(now.duration_since(prev_at).as_secs_f64());
            }
            _ => {
                // First token of the turn. TTFT of the conversation's
                // first turn counts from arrival; later turns from the
                // turn's start.
                let from = if s.turn_idx == 0 {
                    s.arrival_tick
                } else {
                    s.turn_started_tick
                };
                metrics.ttft_ticks.push(tick.saturating_sub(from));
                metrics.ttft_seconds.push(seconds_now);
            }
        }
        s.last_token_tick = Some(tick);
        s.last_token_at = Some(now);
        s.last_scheduled_tick = tick;
        s.consumed += 1;
        s.outputs.push(activations);
        metrics.decoded_tokens += 1;
        if let Phase::Decode { remaining } = &mut s.phase {
            *remaining -= 1;
            if *remaining == 0 {
                s.turn_idx += 1;
                s.phase = Phase::StartTurn;
            }
        }
    }

    /// Advances decode phases that have nothing to emit.
    fn finish_empty_decodes(&mut self) {
        for s in &mut self.live {
            if matches!(s.phase, Phase::Decode { remaining: 0 }) {
                s.turn_idx += 1;
                s.phase = Phase::StartTurn;
            }
        }
    }

    /// Evicts the youngest live session (FCFS priority) — strictly
    /// younger than `older_than` when given: frees its pages and requeues
    /// its conversation for a full replay at the head of the queue.
    /// Restart-on-evict keeps correctness trivially (the replay is
    /// bit-identical — same request id, same token stream) at the cost of
    /// recomputing the evicted context.
    fn evict_youngest(
        &mut self,
        older_than: Option<(u64, u64)>,
        report: &mut TickReport,
    ) -> Result<usize, ServeError> {
        let Some(victim_idx) = self
            .live
            .iter()
            .enumerate()
            .filter(|&(_, s)| older_than.is_none_or(|p| s.priority() > p))
            .max_by_key(|(_, s)| s.priority())
            .map(|(i, _)| i)
        else {
            return Ok(0);
        };
        let victim = self.live.swap_remove(victim_idx);
        self.engine.free_session(victim.seq)?;
        self.queue.push_front(QueuedRequest {
            request: victim.request,
            arrival_tick: victim.arrival_tick,
            conversation: victim.conversation,
            restarts: victim.restarts + 1,
        });
        report.evicted += 1;
        self.metrics.evictions += 1;
        Ok(1)
    }

    /// Retires sessions whose conversations are complete.
    fn retire_finished(&mut self) -> Result<usize, ServeError> {
        let mut finished = 0;
        let mut i = 0;
        while i < self.live.len() {
            let done = matches!(self.live[i].phase, Phase::StartTurn)
                && self.live[i].turn_idx >= self.live[i].conversation.turns.len();
            if done {
                let s = self.live.swap_remove(i);
                self.engine.free_session(s.seq)?;
                self.completed.push((s.request, s.outputs));
                self.metrics.completed += 1;
                finished += 1;
            } else {
                i += 1;
            }
        }
        Ok(finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_model::{Transformer, TransformerConfig};
    use cp_workload::Turn;

    fn engine(n_ranks: usize) -> TransformerEngine {
        let model = Transformer::new(&TransformerConfig::tiny(), 11);
        TransformerEngine::new(model, n_ranks).unwrap()
    }

    fn conv(turns: &[(usize, usize)]) -> Conversation {
        Conversation {
            turns: turns
                .iter()
                .map(|&(p, r)| Turn {
                    prompt_tokens: p,
                    response_tokens: r,
                })
                .collect(),
        }
    }

    #[test]
    fn drains_a_small_trace_and_counts_tokens() {
        let mut sched = Scheduler::new(engine(2), SchedConfig::default());
        sched.submit(0, 0.0, conv(&[(6, 3), (2, 2)]));
        sched.submit(1, 0.0, conv(&[(4, 2)]));
        let reports = sched.run_to_completion(500).unwrap();
        assert!(!reports.is_empty());
        assert_eq!(sched.pending(), 0);
        let m = sched.metrics();
        assert_eq!(m.decoded_tokens, 3 + 2 + 2);
        assert_eq!(m.prefilled_tokens, 6 + 2 + 4);
        assert_eq!(m.completed, 2);
        // One TTFT sample per served turn.
        assert_eq!(m.ttft_ticks.len(), 3);
        // TBT samples: (3-1) + (2-1) + (2-1).
        assert_eq!(m.tbt_ticks.len(), 4);
        // Outputs captured per request.
        let mut outs: Vec<_> = sched
            .outputs()
            .iter()
            .map(|(id, o)| (*id, o.len()))
            .collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![(0, 5), (1, 2)]);
        // All sessions were freed.
        assert!(sched.engine().sessions().is_empty());
    }

    #[test]
    fn arrivals_gate_admission() {
        let mut sched = Scheduler::new(engine(1), SchedConfig::default());
        sched.submit(0, 0.0, conv(&[(2, 1)]));
        sched.submit(1, 5.0, conv(&[(2, 1)]));
        let r0 = sched.tick().unwrap();
        assert_eq!(r0.admitted, 1);
        // Request 1 has not arrived yet.
        let r1 = sched.tick().unwrap();
        assert_eq!(r1.admitted, 0);
        let reports = sched.run_to_completion(100).unwrap();
        let admitted_late: usize = reports.iter().map(|r| r.admitted).sum();
        assert_eq!(admitted_late, 1);
        assert_eq!(sched.metrics().completed, 2);
    }

    #[test]
    fn live_session_cap_is_respected() {
        let config = SchedConfig {
            max_live_sessions: 2,
            ..SchedConfig::default()
        };
        let mut sched = Scheduler::new(engine(1), config);
        for id in 0..5 {
            sched.submit(id, 0.0, conv(&[(3, 2)]));
        }
        let r = sched.tick().unwrap();
        assert_eq!(r.admitted, 2);
        sched.run_to_completion(200).unwrap();
        assert_eq!(sched.metrics().completed, 5);
    }

    #[test]
    fn eviction_requeues_and_completes_under_memory_pressure() {
        // Pool of 2 16-token pages per (rank, layer). Request 0 (oldest,
        // 8 prompt + 16 response = 24 tokens) and request 1 (20 + 2 = 22
        // tokens) cannot coexist: when request 0's decode crosses into
        // its second page, the scheduler must preempt the younger
        // request 1 (restart-on-evict) — and both still complete.
        let model = Transformer::new(&TransformerConfig::tiny(), 12);
        let engine = TransformerEngine::with_cache_limit(model, 1, Some(2)).unwrap();
        let mut sched = Scheduler::new(engine, SchedConfig::default());
        sched.submit(0, 0.0, conv(&[(8, 16)]));
        sched.submit(1, 0.0, conv(&[(20, 2)]));
        sched.run_to_completion(500).unwrap();
        let m = sched.metrics();
        assert_eq!(m.completed, 2);
        assert!(m.evictions > 0, "expected restart-on-evict preemptions");
        // Replays re-prefill, so prefilled tokens exceed the nominal 28.
        assert!(m.prefilled_tokens > 28, "{}", m.prefilled_tokens);
        assert_eq!(m.decoded_tokens, 18);
    }

    #[test]
    fn oom_with_nothing_evictable_is_a_typed_error() {
        // A single conversation larger than the whole pool: no other
        // session to evict, so the typed out-of-pages error surfaces.
        let model = Transformer::new(&TransformerConfig::tiny(), 13);
        let engine = TransformerEngine::with_cache_limit(model, 1, Some(2)).unwrap();
        let mut sched = Scheduler::new(engine, SchedConfig::default());
        sched.submit(0, 0.0, conv(&[(100, 1)]));
        let err = sched.run_to_completion(100).unwrap_err();
        assert!(err.is_out_of_pages(), "{err:?}");
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.5), Some(50.0));
        assert_eq!(quantile(&v, 0.99), Some(99.0));
        assert_eq!(quantile(&v, 1.0), Some(100.0));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
