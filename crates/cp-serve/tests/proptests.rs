//! Property-based exactness for the full-model serving engine: random
//! multi-turn traces (prefill/decode interleavings), random architectures,
//! random rank counts — always equal to the incremental reference.

use cp_attention::GqaShape;
use cp_model::{Transformer, TransformerConfig};
use cp_serve::{ReferenceSession, TransformerEngine};
use proptest::prelude::*;

fn random_config() -> impl Strategy<Value = TransformerConfig> {
    (1usize..3, 1usize..3, 1usize..3).prop_map(|(g, kv, layers)| {
        let shape = GqaShape::new(g * kv, kv, 8).unwrap();
        TransformerConfig {
            shape,
            n_layers: layers,
            ffn_dim: shape.model_dim() * 2,
            vocab: 128,
            rope_base: 10_000.0,
            norm_eps: 1e-5,
        }
    })
}

/// A trace step: a prefill of 1-12 tokens or a decode of one token.
fn trace_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u32..128, 1..12), // prefill chunk
            prop::collection::vec(0u32..128, 1..2),  // decode-sized chunk
        ],
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any trace, any ranks: distributed == incremental reference.
    #[test]
    fn serving_traces_are_exact(
        config in random_config(),
        trace in trace_strategy(),
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        let model = Transformer::new(&config, seed);
        let mut reference = ReferenceSession::new(model.clone());
        let mut engine = TransformerEngine::new(model, n).unwrap();
        for (i, chunk) in trace.iter().enumerate() {
            let expected = reference.process(chunk).unwrap();
            let out = if chunk.len() == 1 && i > 0 {
                engine.decode(chunk[0]).unwrap()
            } else {
                engine.prefill(chunk).unwrap()
            };
            prop_assert!(
                out.activations.approx_eq(&expected, 5e-3).unwrap(),
                "step {i}: max diff {}",
                out.activations.max_abs_diff(&expected).unwrap()
            );
        }
        prop_assert_eq!(engine.context_len(), reference.len());
    }

    /// KV distribution stays balanced across any trace.
    #[test]
    fn serving_kv_stays_balanced(
        trace in trace_strategy(),
        n in 2usize..5,
        seed in any::<u64>(),
    ) {
        let model = Transformer::new(&TransformerConfig::tiny(), seed);
        let mut engine = TransformerEngine::new(model, n).unwrap();
        let mut total = 0usize;
        for (i, chunk) in trace.iter().enumerate() {
            if chunk.len() == 1 && i > 0 {
                engine.decode(chunk[0]).unwrap();
            } else {
                engine.prefill(chunk).unwrap();
            }
            total += chunk.len();
        }
        let lens = engine.rank_kv_lens().unwrap();
        prop_assert_eq!(lens.iter().sum::<usize>(), total);
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        // Bound: one 2N-chunk's worth per prefill turn plus decode ±1.
        let bound: usize = trace
            .iter()
            .map(|c| c.len().div_ceil(2 * n) * 2)
            .sum::<usize>()
            .max(1);
        prop_assert!(max - min <= bound, "{lens:?} (bound {bound})");
    }
}
