//! The serving scheduler's exactness and latency contracts:
//!
//! * Chunked prefill is **bitwise** identical to one-shot prefill — any
//!   chunk size, any rank count, either ring variant (the turn's sharding
//!   and variant are fixed once at `begin_prefill`).
//! * Interleaved multi-session serving (batched decode, interleaved turn
//!   prefills) is **bitwise** identical, per session, to serving each
//!   conversation alone on a fresh engine.
//! * The scheduler's continuous batching keeps decode ticking every tick
//!   while a long prompt prefills in chunks — bounded TBT — and its
//!   completed outputs are bit-identical to solo replays.

use cp_kvcache::SeqId;
use cp_model::{Transformer, TransformerConfig};
use cp_perf::RingVariant;
use cp_serve::{SchedConfig, Scheduler, ServeError, TransformerEngine};
use cp_tensor::Tensor;
use cp_workload::{trace_token, Conversation, Turn};

fn model(seed: u64) -> Transformer {
    Transformer::new(&TransformerConfig::tiny(), seed)
}

fn conv(turns: &[(usize, usize)]) -> Conversation {
    Conversation {
        turns: turns
            .iter()
            .map(|&(p, r)| Turn {
                prompt_tokens: p,
                response_tokens: r,
            })
            .collect(),
    }
}

#[test]
fn chunked_prefill_is_bitwise_identical_to_one_shot() {
    let prompt: Vec<u32> = (0..17).map(|i| 1 + i as u32 * 3).collect();
    for n in [1usize, 2, 3] {
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            let mut oneshot = TransformerEngine::new(model(7), n).unwrap();
            oneshot.create_session(SeqId(1)).unwrap();
            let expected = oneshot
                .prefill_session_with(SeqId(1), &prompt, Some(variant))
                .unwrap()
                .activations;

            for chunk in [1usize, 3, 5, 100] {
                let mut engine = TransformerEngine::new(model(7), n).unwrap();
                engine.create_session(SeqId(1)).unwrap();
                let mut turn = engine
                    .begin_prefill(SeqId(1), &prompt, Some(variant))
                    .unwrap();
                let mut pieces = Vec::new();
                while !turn.is_done() {
                    pieces.push(engine.prefill_chunk(&mut turn, chunk).unwrap().activations);
                }
                let joined = Tensor::concat_dim0(pieces.iter()).unwrap();
                assert_eq!(
                    joined.as_slice(),
                    expected.as_slice(),
                    "chunk={chunk} n={n} variant={variant:?} diverged from one-shot"
                );
            }
        }
    }
}

#[test]
fn chunked_prefill_resumes_bitwise_across_later_turns() {
    // Chunking must stay exact when the session already has cached
    // context (P > 0): turn 2 of a conversation, chunked, equals turn 2
    // one-shot.
    for n in [1usize, 2] {
        let mut oneshot = TransformerEngine::new(model(8), n).unwrap();
        oneshot.create_session(SeqId(4)).unwrap();
        oneshot.prefill_session(SeqId(4), &[5, 6, 7, 8, 9]).unwrap();
        let expected = oneshot
            .prefill_session(SeqId(4), &[20, 21, 22, 23, 24, 25, 26])
            .unwrap()
            .activations;

        let mut engine = TransformerEngine::new(model(8), n).unwrap();
        engine.create_session(SeqId(4)).unwrap();
        engine.prefill_session(SeqId(4), &[5, 6, 7, 8, 9]).unwrap();
        let mut turn = engine
            .begin_prefill(SeqId(4), &[20, 21, 22, 23, 24, 25, 26], None)
            .unwrap();
        let mut pieces = Vec::new();
        while !turn.is_done() {
            pieces.push(engine.prefill_chunk(&mut turn, 3).unwrap().activations);
        }
        let joined = Tensor::concat_dim0(pieces.iter()).unwrap();
        assert_eq!(joined.as_slice(), expected.as_slice(), "n={n}");
    }
}

/// Replays one conversation alone on a fresh single-session engine,
/// returning its per-token decode activations.
fn solo_replay(seed: u64, n: usize, request: u64, c: &Conversation, vocab: u32) -> Vec<Tensor> {
    let mut engine = TransformerEngine::new(model(seed), n).unwrap();
    let seq = SeqId(99);
    engine.create_session(seq).unwrap();
    let mut consumed = 0usize;
    let mut outputs = Vec::new();
    for turn in &c.turns {
        let prompt: Vec<u32> = (0..turn.prompt_tokens)
            .map(|j| trace_token(request, consumed + j, vocab))
            .collect();
        consumed += prompt.len();
        engine.prefill_session(seq, &prompt).unwrap();
        for _ in 0..turn.response_tokens {
            let tok = trace_token(request, consumed, vocab);
            consumed += 1;
            outputs.push(
                engine
                    .decode_batch(&[(seq, tok)])
                    .unwrap()
                    .activations
                    .remove(0),
            );
        }
    }
    outputs
}

#[test]
fn interleaved_sessions_are_bit_identical_to_solo_runs() {
    // Two conversations served concurrently — batched decode ticks,
    // interleaved turn prefills — must emit, per session, exactly the
    // activations of serving each conversation alone (CP 1 and 2).
    let vocab = 128;
    let conv_a = conv(&[(6, 4), (3, 3)]);
    let conv_b = conv(&[(9, 8)]);
    for n in [1usize, 2] {
        let mut engine = TransformerEngine::new(model(21), n).unwrap();
        let (sa, sb) = (SeqId(1), SeqId(2));
        engine.create_session(sa).unwrap();
        engine.create_session(sb).unwrap();

        // Interleave: prefill A's turn 1, then B's turn, then decode both
        // in fused batches; A's second turn opens while B still decodes.
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        let mut ca = 0usize; // tokens consumed per stream
        let mut cb = 0usize;
        let prompt = |req: u64, from: usize, t: usize| -> Vec<u32> {
            (0..t).map(|j| trace_token(req, from + j, vocab)).collect()
        };

        engine.prefill_session(sa, &prompt(0, ca, 6)).unwrap();
        ca += 6;
        engine.prefill_session(sb, &prompt(1, cb, 9)).unwrap();
        cb += 9;
        // 4 fused ticks: A and B decode together.
        for _ in 0..4 {
            let batch = [
                (sa, trace_token(0, ca, vocab)),
                (sb, trace_token(1, cb, vocab)),
            ];
            ca += 1;
            cb += 1;
            let mut out = engine.decode_batch(&batch).unwrap().activations;
            got_b.push(out.remove(1));
            got_a.push(out.remove(0));
        }
        // A's turn 2 prefill lands while B keeps decoding.
        engine.prefill_session(sa, &prompt(0, ca, 3)).unwrap();
        ca += 3;
        let tok_b = trace_token(1, cb, vocab);
        cb += 1;
        got_b.push(
            engine
                .decode_batch(&[(sb, tok_b)])
                .unwrap()
                .activations
                .remove(0),
        );
        // Final fused ticks: A turn-2 decode with B's trailing tokens —
        // note the batch order flips, which must not matter.
        for _ in 0..3 {
            let batch = [
                (sb, trace_token(1, cb, vocab)),
                (sa, trace_token(0, ca, vocab)),
            ];
            ca += 1;
            cb += 1;
            let mut out = engine.decode_batch(&batch).unwrap().activations;
            got_a.push(out.remove(1));
            got_b.push(out.remove(0));
        }

        let solo_a = solo_replay(21, n, 0, &conv_a, vocab);
        let solo_b = solo_replay(21, n, 1, &conv_b, vocab);
        assert_eq!(got_a.len(), solo_a.len());
        assert_eq!(got_b.len(), solo_b.len());
        for (i, (got, want)) in got_a.iter().zip(&solo_a).enumerate() {
            assert_eq!(got.as_slice(), want.as_slice(), "A token {i} n={n}");
        }
        for (i, (got, want)) in got_b.iter().zip(&solo_b).enumerate() {
            assert_eq!(got.as_slice(), want.as_slice(), "B token {i} n={n}");
        }
    }
}

#[test]
fn scheduler_outputs_are_bit_identical_to_solo_replays() {
    // End to end through the scheduler: admission, chunked prefill,
    // continuous batching — completed outputs equal solo replays.
    let config = SchedConfig {
        prefill_chunk_tokens: 4,
        ..SchedConfig::default()
    };
    let vocab = config.vocab;
    let conv_a = conv(&[(7, 3), (2, 2)]);
    let conv_b = conv(&[(11, 4)]);
    for n in [1usize, 2] {
        let engine = TransformerEngine::new(model(33), n).unwrap();
        let mut sched = Scheduler::new(engine, config);
        sched.submit(0, 0.0, conv_a.clone());
        sched.submit(1, 0.0, conv_b.clone());
        sched.run_to_completion(500).unwrap();
        assert_eq!(sched.outputs().len(), 2);
        for (request, got) in sched.outputs() {
            let c = if *request == 0 { &conv_a } else { &conv_b };
            let want = solo_replay(33, n, *request, c, vocab);
            assert_eq!(got.len(), want.len(), "request {request} n={n}");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.as_slice(),
                    w.as_slice(),
                    "request {request} token {i} n={n}"
                );
            }
        }
    }
}

#[test]
fn chunked_prefill_interleaves_with_decode_bounding_tbt() {
    // A long prompt arrives while another session is mid-decode. With
    // chunked prefill the decoder never stalls: decode runs every tick,
    // so its inter-token gap stays 1 tick even while the 36-token prompt
    // takes many ticks of chunk-4 prefill. This is the scheduler's SLO
    // story: p99 TBT bounded by the chunk schedule, not the prompt length.
    let config = SchedConfig {
        prefill_chunk_tokens: 4,
        ..SchedConfig::default()
    };
    let engine = TransformerEngine::new(model(5), 2).unwrap();
    let mut sched = Scheduler::new(engine, config);
    sched.submit(0, 0.0, conv(&[(4, 24)]));
    sched.submit(1, 2.0, conv(&[(36, 2)]));
    let reports = sched.run_to_completion(500).unwrap();

    // Genuine interleaving: some tick ran a prefill chunk AND decoded.
    assert!(
        reports
            .iter()
            .any(|r| r.prefill_tokens > 0 && r.decoded > 0),
        "no tick interleaved prefill with decode"
    );
    let m = sched.metrics();
    assert_eq!(m.completed, 2);
    assert_eq!(m.decoded_tokens, 26);
    // Every inter-token gap of every session is exactly one tick: the
    // long prefill never blocked a decode tick.
    let p99 = m.tbt_tick_quantile(0.99).unwrap();
    assert!(
        p99 <= 1.0,
        "p99 TBT {p99} ticks — decode stalled behind prefill"
    );
}

#[test]
fn session_errors_are_typed_through_the_public_api() {
    let mut engine = TransformerEngine::new(model(1), 2).unwrap();
    engine.create_session(SeqId(3)).unwrap();
    // Historical panic site: re-creating a live session.
    assert!(matches!(
        engine.create_session(SeqId(3)),
        Err(ServeError::SequenceExists { seq: SeqId(3) })
    ));
    assert!(matches!(
        engine.prefill_session(SeqId(8), &[1, 2]),
        Err(ServeError::UnknownSession { seq: SeqId(8) })
    ));
    assert!(matches!(
        engine.decode_batch(&[(SeqId(8), 1)]),
        Err(ServeError::UnknownSession { seq: SeqId(8) })
    ));
    assert!(matches!(
        engine.free_session(SeqId(8)),
        Err(ServeError::UnknownSession { seq: SeqId(8) })
    ));
}
