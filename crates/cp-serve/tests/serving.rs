//! The headline exactness contract of the full-model serving engine:
//! arbitrary multi-turn traces match the single-device incremental
//! reference on any rank count, with either ring variant.

use cp_model::{Transformer, TransformerConfig};
use cp_perf::RingVariant;
use cp_serve::{ReferenceSession, TransformerEngine};

fn model(seed: u64) -> Transformer {
    Transformer::new(&TransformerConfig::tiny(), seed)
}

#[test]
fn multi_turn_trace_matches_reference_on_all_rank_counts() {
    // prefill(9) -> decode x3 -> prefill(5) -> decode x2 -> prefill(12)
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9],
        &[100],
        &[101],
        &[102],
        &[10, 11, 12, 13, 14],
        &[103],
        &[104],
        &[20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31],
    ];
    let mut reference = ReferenceSession::new(model(42));
    let expected: Vec<_> = trace
        .iter()
        .map(|chunk| reference.process(chunk).unwrap())
        .collect();

    for n in [1usize, 2, 3, 4] {
        let mut engine = TransformerEngine::new(model(42), n).unwrap();
        for (i, chunk) in trace.iter().enumerate() {
            let out = if chunk.len() == 1 && i > 0 {
                engine.decode(chunk[0]).unwrap()
            } else {
                engine.prefill(chunk).unwrap()
            };
            assert!(
                out.activations.approx_eq(&expected[i], 3e-3).unwrap(),
                "n={n} step {i}: max diff {}",
                out.activations.max_abs_diff(&expected[i]).unwrap()
            );
        }
        assert_eq!(engine.context_len(), reference.len());
    }
}

#[test]
fn both_prefill_variants_are_exact_against_persistent_cache() {
    let mut reference = ReferenceSession::new(model(7));
    let first = reference.process(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    let second = reference.process(&[9, 10, 11]).unwrap();

    for variant in [RingVariant::PassKv, RingVariant::PassQ] {
        let mut engine = TransformerEngine::new(model(7), 3).unwrap();
        let a = engine
            .prefill_with(&[1, 2, 3, 4, 5, 6, 7, 8], Some(variant))
            .unwrap();
        assert!(a.activations.approx_eq(&first, 3e-3).unwrap(), "{variant}");
        assert_eq!(a.variant, Some(variant));
        let b = engine.prefill_with(&[9, 10, 11], Some(variant)).unwrap();
        assert!(b.activations.approx_eq(&second, 3e-3).unwrap(), "{variant}");
    }
}

#[test]
fn decode_rotation_balances_per_layer_caches() {
    let mut engine = TransformerEngine::new(model(5), 4).unwrap();
    engine.prefill(&[0; 8]).unwrap();
    let before = engine.rank_kv_lens().unwrap();
    for i in 0..20 {
        engine.decode(i).unwrap();
    }
    let after = engine.rank_kv_lens().unwrap();
    let grown: Vec<usize> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    assert_eq!(grown, vec![5; 4], "decode KV growth must rotate evenly");
}

#[test]
fn traffic_accounting_prefill_vs_decode() {
    let mut engine = TransformerEngine::new(model(6), 3).unwrap();
    let pre = engine
        .prefill_with(&[0; 30], Some(RingVariant::PassKv))
        .unwrap();
    assert!(pre.traffic.send_recv_bytes > 0);
    assert_eq!(pre.traffic.all_to_all_bytes, 0);
    let dec = engine.decode(1).unwrap();
    // Decode is pass-Q: tiny SendRecv plus the output All2All, per layer.
    assert!(dec.traffic.all_to_all_bytes > 0);
    assert!(
        dec.traffic.send_recv_bytes < pre.traffic.send_recv_bytes / 4,
        "decode ring bytes {} should be far below prefill's {}",
        dec.traffic.send_recv_bytes,
        pre.traffic.send_recv_bytes
    );
    assert_eq!(dec.variant, None);
}

#[test]
fn heuristic_switches_to_pass_q_for_tiny_follow_ups() {
    // Big document then a 2-token follow-up: the Algorithm 1 heuristic
    // (evaluated against the 405B/GTT context) must pick pass-Q once the
    // miss rate drops below the Eq. 1/Eq. 2 thresholds.
    let mut engine = TransformerEngine::new(model(8), 2).unwrap();
    let first = engine.prefill(&vec![3u32; 64]).unwrap();
    assert_eq!(first.variant, Some(RingVariant::PassKv));
    let follow = engine.prefill(&[4, 5]).unwrap();
    assert_eq!(follow.variant, Some(RingVariant::PassQ));
}

#[test]
fn failed_turn_rolls_back_all_layer_caches() {
    // 1 page of 16 tokens per (rank, layer): a 20-token-per-rank turn
    // overflows mid-layer; every layer cache must rewind to the snapshot.
    let mut engine = TransformerEngine::with_cache_limit(model(12), 2, Some(1)).unwrap();
    engine.prefill(&(0..12u32).collect::<Vec<_>>()).unwrap(); // 6/rank: fits
    let before = engine.rank_kv_lens().unwrap();
    let big: Vec<u32> = (0..60).collect(); // 30/rank: overflows
    assert!(engine.prefill(&big).is_err());
    assert_eq!(engine.context_len(), 12);
    assert_eq!(engine.rank_kv_lens().unwrap(), before);
    // Still serviceable afterwards.
    let mut reference = ReferenceSession::new(model(12));
    reference.process(&(0..12u32).collect::<Vec<_>>()).unwrap();
    let d = engine.decode(7).unwrap();
    let e = reference.process(&[7]).unwrap();
    assert!(d.activations.approx_eq(&e, 3e-3).unwrap());
}

#[test]
fn zero_ranks_rejected_and_empty_prefill_ok() {
    assert!(TransformerEngine::new(model(1), 0).is_err());
    let mut engine = TransformerEngine::new(model(1), 2).unwrap();
    let out = engine.prefill(&[]).unwrap();
    assert_eq!(out.activations.dim0(), 0);
    assert_eq!(engine.context_len(), 0);
}

#[test]
fn deeper_model_multi_turn_exactness() {
    let cfg = TransformerConfig::small(); // 4 layers, D=128
    let m = Transformer::new(&cfg, 99);
    let mut reference = ReferenceSession::new(m.clone());
    let mut engine = TransformerEngine::new(m, 4).unwrap();
    let prompt: Vec<u32> = (0..25).collect();
    let a = engine.prefill(&prompt).unwrap();
    let ea = reference.process(&prompt).unwrap();
    assert!(
        a.activations.approx_eq(&ea, 5e-3).unwrap(),
        "max diff {}",
        a.activations.max_abs_diff(&ea).unwrap()
    );
    for tok in [200u32, 201] {
        let d = engine.decode(tok).unwrap();
        let ed = reference.process(&[tok]).unwrap();
        assert!(d.activations.approx_eq(&ed, 5e-3).unwrap());
    }
}

#[test]
fn gathered_and_zero_copy_hot_paths_are_bit_identical() {
    // The zero-copy KvView hot path (default) vs the materializing
    // gather() path must produce bit-identical activations over a mixed
    // multi-turn trace — partial prefills (forced pass-Q so the view
    // path is exercised with ragged cache lengths) interleaved with
    // decode steps, at CP 2 and 3.
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9],
        &[100],
        &[101],
        &[10, 11, 12, 13, 14],
        &[102],
        &[20, 21, 22],
        &[103],
    ];
    for n in [2usize, 3] {
        let mut fast = TransformerEngine::new(model(23), n).unwrap();
        let mut slow = TransformerEngine::new(model(23), n)
            .unwrap()
            .with_gathered_hot_kv(true);
        for (i, chunk) in trace.iter().enumerate() {
            let decode = chunk.len() == 1 && i > 0;
            let (f, s) = if decode {
                (
                    fast.decode(chunk[0]).unwrap(),
                    slow.decode(chunk[0]).unwrap(),
                )
            } else {
                let forced = (i > 0).then_some(RingVariant::PassQ);
                (
                    fast.prefill_with(chunk, forced).unwrap(),
                    slow.prefill_with(chunk, forced).unwrap(),
                )
            };
            assert_eq!(
                f.activations, s.activations,
                "n={n} step {i}: view and gather hot paths must be bit-identical"
            );
            assert_eq!(f.traffic.send_recv_bytes, s.traffic.send_recv_bytes);
        }
    }
}

#[test]
fn checked_fabric_soak_multi_turn() {
    // Soak: a long mixed prefill/decode conversation with live schedule
    // validation on — every layer's ring collectives are checked against
    // the declared plan (peer, variant, byte count, order) for both forced
    // variants and the heuristic default, at CP 2 and 4. Outputs must be
    // bit-identical to the unchecked engine.
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        &[100],
        &[101],
        &[12, 13, 14, 15, 16],
        &[102],
        &[103],
        &[104],
        &[20, 21, 22, 23, 24, 25, 26],
        &[105],
    ];
    for n in [2usize, 4] {
        for forced in [None, Some(RingVariant::PassKv), Some(RingVariant::PassQ)] {
            let mut checked = TransformerEngine::new(model(31), n)
                .unwrap()
                .with_schedule_checking(true);
            assert!(checked.schedule_checking());
            let mut plain = TransformerEngine::new(model(31), n).unwrap();
            for (i, chunk) in trace.iter().enumerate() {
                let decode = chunk.len() == 1 && i > 0;
                let (c, p) = if decode {
                    (
                        checked.decode(chunk[0]).unwrap(),
                        plain.decode(chunk[0]).unwrap(),
                    )
                } else {
                    (
                        checked.prefill_with(chunk, forced).unwrap(),
                        plain.prefill_with(chunk, forced).unwrap(),
                    )
                };
                assert_eq!(
                    c.activations, p.activations,
                    "n={n} forced={forced:?} step {i}: checked run must be bit-identical"
                );
                assert_eq!(c.traffic.send_recv_bytes, p.traffic.send_recv_bytes);
                assert_eq!(c.traffic.all_to_all_bytes, p.traffic.all_to_all_bytes);
            }
            assert_eq!(checked.context_len(), plain.context_len());
        }
    }
}

#[test]
fn bidi_schedule_is_bit_identical_and_plan_covered() {
    // The bidirectional family must serve the same bits as the default
    // unidirectional ring, with live schedule validation proving every
    // layer's split traffic matches the declared bidi plans — for both
    // forced variants and the heuristic default, at CP 2 and 4.
    use cp_core::schedule::RingLayout;
    use cp_perf::RingDirection;
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        &[100],
        &[12, 13, 14, 15, 16],
        &[101],
        &[102],
    ];
    for n in [2usize, 4] {
        for forced in [None, Some(RingVariant::PassKv), Some(RingVariant::PassQ)] {
            let mut bidi = TransformerEngine::new(model(57), n)
                .unwrap()
                .with_schedule(RingDirection::Bidi, RingLayout::Flat)
                .with_schedule_checking(true);
            let mut plain = TransformerEngine::new(model(57), n).unwrap();
            for (i, chunk) in trace.iter().enumerate() {
                let decode = chunk.len() == 1 && i > 0;
                let (b, p) = if decode {
                    (
                        bidi.decode(chunk[0]).unwrap(),
                        plain.decode(chunk[0]).unwrap(),
                    )
                } else {
                    (
                        bidi.prefill_with(chunk, forced).unwrap(),
                        plain.prefill_with(chunk, forced).unwrap(),
                    )
                };
                assert_eq!(
                    b.activations, p.activations,
                    "n={n} forced={forced:?} step {i}: bidi must be bit-identical to uni"
                );
                assert_eq!(b.traffic.send_recv_bytes, p.traffic.send_recv_bytes);
            }
        }
    }
}

#[test]
fn hierarchical_schedule_serves_exactly() {
    // Hier pass-Q is bitwise against flat (ascending-source gather); hier
    // pass-KV folds origins in ring-path order, so it is exact but only
    // approximately equal to the flat fold. Checked mode proves the hier
    // hop traffic matches the declared hierarchical plans.
    use cp_comm::Topology;
    use cp_core::schedule::RingLayout;
    use cp_perf::RingDirection;
    let trace: &[&[u32]] = &[&[1, 2, 3, 4, 5, 6, 7, 8, 9], &[100], &[10, 11, 12], &[101]];
    let mut reference = ReferenceSession::new(model(58));
    let expected: Vec<_> = trace
        .iter()
        .map(|chunk| reference.process(chunk).unwrap())
        .collect();
    for direction in [RingDirection::Uni, RingDirection::Bidi] {
        let mut engine = TransformerEngine::new(model(58), 4)
            .unwrap()
            .with_schedule(direction, RingLayout::Hier(Topology::new(2, 2)))
            .with_schedule_checking(true);
        for (i, chunk) in trace.iter().enumerate() {
            let out = if chunk.len() == 1 && i > 0 {
                engine.decode(chunk[0]).unwrap()
            } else {
                engine.prefill(chunk).unwrap()
            };
            assert!(
                out.activations.approx_eq(&expected[i], 3e-3).unwrap(),
                "{direction:?} step {i}: max diff {}",
                out.activations.max_abs_diff(&expected[i]).unwrap()
            );
        }
    }
}

#[test]
fn auto_schedule_serves_exactly_on_asymmetric_links() {
    // Auto mode prices the four families per turn on a 2x2 topology with
    // 20x intra/cross asymmetry (hier always wins; the 2x2 hier ring is
    // bidi-degenerate, so uni-hier is chosen) and must still serve the
    // reference bits within tolerance, plan-covered.
    use cp_perf::TopologySpec;
    let trace: &[&[u32]] = &[&[1, 2, 3, 4, 5, 6, 7], &[100], &[10, 11], &[101]];
    let mut reference = ReferenceSession::new(model(59));
    let expected: Vec<_> = trace
        .iter()
        .map(|chunk| reference.process(chunk).unwrap())
        .collect();
    let mut engine = TransformerEngine::new(model(59), 4)
        .unwrap()
        .with_auto_schedule(TopologySpec::new(2, 2, 200.0, 10.0, 5.0))
        .with_schedule_checking(true);
    for (i, chunk) in trace.iter().enumerate() {
        let out = if chunk.len() == 1 && i > 0 {
            engine.decode(chunk[0]).unwrap()
        } else {
            engine.prefill(chunk).unwrap()
        };
        assert!(
            out.activations.approx_eq(&expected[i], 3e-3).unwrap(),
            "step {i}: max diff {}",
            out.activations.max_abs_diff(&expected[i]).unwrap()
        );
    }
}

#[test]
fn int8_wire_compresses_pass_kv_traffic_and_stays_close() {
    // Int8Wire keeps KV storage and pass-Q/decode untouched but ships
    // pass-KV ring payloads as INT8 codes + per-(token, head) scales:
    // at head_dim 8 a token's KV block is 48 wire bytes instead of 128.
    // Activations must track the f32 engine within the documented
    // tolerance, and forced pass-KV prefills must move strictly fewer
    // SendRecv bytes (decode is pass-Q and stays byte-identical).
    use cp_core::KvPrecision;
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9],
        &[100],
        &[10, 11, 12, 13, 14],
        &[101],
        &[102],
    ];
    for n in [2usize, 4] {
        let mut exact = TransformerEngine::new(model(61), n).unwrap();
        let mut quant = TransformerEngine::new(model(61), n)
            .unwrap()
            .with_kv_precision(KvPrecision::Int8Wire);
        let mut saw_error = false;
        for (i, chunk) in trace.iter().enumerate() {
            let decode = chunk.len() == 1 && i > 0;
            let (e, q) = if decode {
                (
                    exact.decode(chunk[0]).unwrap(),
                    quant.decode(chunk[0]).unwrap(),
                )
            } else {
                (
                    exact
                        .prefill_with(chunk, Some(RingVariant::PassKv))
                        .unwrap(),
                    quant
                        .prefill_with(chunk, Some(RingVariant::PassKv))
                        .unwrap(),
                )
            };
            let err = e.activations.max_abs_diff(&q.activations).unwrap();
            assert!(err < 0.25, "n={n} step {i}: INT8 wire drift {err}");
            saw_error |= err > 0.0;
            if decode {
                // Decode rings never quantize: same bytes as f32.
                assert_eq!(e.traffic.send_recv_bytes, q.traffic.send_recv_bytes);
            } else {
                // head_dim 8 compresses 128 -> 48 bytes per token block
                // (> 2.6x); the scales keep it from hitting a full 4x.
                assert!(
                    2 * q.traffic.send_recv_bytes < e.traffic.send_recv_bytes,
                    "n={n} step {i}: quant hop bytes {} vs f32 {}",
                    q.traffic.send_recv_bytes,
                    e.traffic.send_recv_bytes
                );
            }
        }
        assert!(saw_error, "n={n}: quantized run was bit-identical to f32");
        assert_eq!(exact.context_len(), quant.context_len());
    }
}

#[test]
fn int8_total_multi_turn_stays_close_across_variants() {
    // Int8Total additionally stores KV as INT8 pages and attends them in
    // place on the pass-Q prefill and decode hot paths (the f32 pool
    // remains the rollback master). A mixed multi-turn trace across both
    // forced variants must stay within tolerance of the f32 engine, with
    // cache bookkeeping (context_len) in lockstep.
    use cp_core::KvPrecision;
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8],
        &[100],
        &[101],
        &[10, 11, 12],
        &[102],
    ];
    for n in [2usize, 3] {
        for forced in [Some(RingVariant::PassKv), Some(RingVariant::PassQ), None] {
            let mut exact = TransformerEngine::new(model(67), n).unwrap();
            let mut quant = TransformerEngine::new(model(67), n)
                .unwrap()
                .with_kv_precision(KvPrecision::Int8Total);
            for (i, chunk) in trace.iter().enumerate() {
                let decode = chunk.len() == 1 && i > 0;
                let (e, q) = if decode {
                    (
                        exact.decode(chunk[0]).unwrap(),
                        quant.decode(chunk[0]).unwrap(),
                    )
                } else {
                    (
                        exact.prefill_with(chunk, forced).unwrap(),
                        quant.prefill_with(chunk, forced).unwrap(),
                    )
                };
                let err = e.activations.max_abs_diff(&q.activations).unwrap();
                assert!(
                    err < 0.25,
                    "n={n} forced={forced:?} step {i}: INT8 total drift {err}"
                );
            }
            assert_eq!(exact.context_len(), quant.context_len());
        }
    }
}

#[test]
fn int8_wire_checked_schedules_validate_quant_plans() {
    // Live schedule checking with compressed hops: the declared plans
    // come from the quant template builders, so every per-hop byte count
    // the fabric observes must match the INT8 wire format exactly — for
    // both ring directions.
    use cp_core::schedule::RingLayout;
    use cp_core::KvPrecision;
    use cp_perf::RingDirection;
    let trace: &[&[u32]] = &[
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        &[100],
        &[11, 12, 13],
        &[101],
    ];
    for direction in [RingDirection::Uni, RingDirection::Bidi] {
        let mut checked = TransformerEngine::new(model(71), 4)
            .unwrap()
            .with_schedule(direction, RingLayout::Flat)
            .with_kv_precision(KvPrecision::Int8Wire)
            .with_schedule_checking(true);
        let mut plain = TransformerEngine::new(model(71), 4)
            .unwrap()
            .with_schedule(direction, RingLayout::Flat)
            .with_kv_precision(KvPrecision::Int8Wire);
        for (i, chunk) in trace.iter().enumerate() {
            let decode = chunk.len() == 1 && i > 0;
            let (c, p) = if decode {
                (
                    checked.decode(chunk[0]).unwrap(),
                    plain.decode(chunk[0]).unwrap(),
                )
            } else {
                (
                    checked
                        .prefill_with(chunk, Some(RingVariant::PassKv))
                        .unwrap(),
                    plain
                        .prefill_with(chunk, Some(RingVariant::PassKv))
                        .unwrap(),
                )
            };
            assert_eq!(
                c.activations, p.activations,
                "direction={direction:?} step {i}: checked quant run must be bit-identical"
            );
            assert_eq!(c.traffic.send_recv_bytes, p.traffic.send_recv_bytes);
        }
    }
}
