//! Round-robin decode sharding with a rotating offset (paper §3.6).

use crate::ShardingError;

/// The assignment of one decode step's batch to CP ranks.
///
/// Decode produces exactly one token per sequence per step. Pinning a
/// sequence's decode tokens to a single rank would grow that rank's KV
/// cache unboundedly and OOM it first; the paper instead shards each step's
/// batch round-robin and rotates the starting rank by one every iteration,
/// so cache growth is level across ranks. The batch is padded up to a
/// multiple of the rank count (the padding the paper notes as a decode
/// overhead for small batches — Table 8's discussion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeAssignment {
    batch_size: usize,
    n_ranks: usize,
    offset: usize,
    /// rank of each (real) batch element.
    ranks: Vec<usize>,
}

impl DecodeAssignment {
    /// Rank that decodes batch element `i` this step.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size`.
    pub fn rank_of(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// Batch indices assigned to `rank` this step, ascending.
    pub fn batch_for(&self, rank: usize) -> Vec<usize> {
        (0..self.batch_size)
            .filter(|&i| self.ranks[i] == rank)
            .collect()
    }

    /// Padded batch size: `batch_size` rounded up to a multiple of
    /// `n_ranks` (every rank processes `padded / n_ranks` query slots,
    /// some of which may be padding).
    pub fn padded_batch_size(&self) -> usize {
        self.batch_size.div_ceil(self.n_ranks).max(1) * self.n_ranks
    }

    /// Query slots per rank including padding.
    pub fn slots_per_rank(&self) -> usize {
        self.padded_batch_size() / self.n_ranks
    }

    /// Number of padding (wasted) query slots this step.
    pub fn padding(&self) -> usize {
        self.padded_batch_size() - self.batch_size
    }

    /// The rotation offset used for this step.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

/// Computes the decode assignment for one step: batch element `i` goes to
/// rank `(i + step) % n_ranks`, i.e. round-robin with the starting rank
/// rotating by one each decode iteration.
///
/// # Errors
///
/// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
///
/// # Example
///
/// ```
/// use cp_sharding::decode_round_robin;
///
/// # fn main() -> Result<(), cp_sharding::ShardingError> {
/// let step0 = decode_round_robin(4, 2, 0)?;
/// assert_eq!(step0.batch_for(0), vec![0, 2]);
/// let step1 = decode_round_robin(4, 2, 1)?;
/// assert_eq!(step1.batch_for(0), vec![1, 3]); // rotated by one
/// # Ok(())
/// # }
/// ```
pub fn decode_round_robin(
    batch_size: usize,
    n_ranks: usize,
    step: usize,
) -> Result<DecodeAssignment, ShardingError> {
    if n_ranks == 0 {
        return Err(ShardingError::ZeroRanks);
    }
    let offset = step % n_ranks;
    let ranks = (0..batch_size).map(|i| (i + offset) % n_ranks).collect();
    Ok(DecodeAssignment {
        batch_size,
        n_ranks,
        offset,
        ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_without_offset() {
        let a = decode_round_robin(5, 3, 0).unwrap();
        assert_eq!(a.rank_of(0), 0);
        assert_eq!(a.rank_of(1), 1);
        assert_eq!(a.rank_of(2), 2);
        assert_eq!(a.rank_of(3), 0);
        assert_eq!(a.rank_of(4), 1);
    }

    #[test]
    fn offset_rotates_each_step() {
        for step in 0..7 {
            let a = decode_round_robin(3, 3, step).unwrap();
            assert_eq!(a.offset(), step % 3);
            assert_eq!(a.rank_of(0), step % 3);
        }
    }

    #[test]
    fn every_batch_element_assigned_exactly_once() {
        let a = decode_round_robin(10, 4, 2).unwrap();
        let mut all: Vec<usize> = (0..4).flat_map(|r| a.batch_for(r)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kv_growth_balanced_over_many_steps() {
        // Simulate 120 decode steps with batch 1 over 4 ranks: each rank
        // must end up with exactly 30 decode tokens.
        let n = 4;
        let mut kv_tokens = vec![0usize; n];
        for step in 0..120 {
            let a = decode_round_robin(1, n, step).unwrap();
            kv_tokens[a.rank_of(0)] += 1;
        }
        assert_eq!(kv_tokens, vec![30; 4]);
    }

    #[test]
    fn pinned_assignment_would_be_imbalanced() {
        // Contrast: without rotation everything lands on rank 0.
        let n = 4;
        let mut kv_tokens = vec![0usize; n];
        for _ in 0..120 {
            let a = decode_round_robin(1, n, 0).unwrap();
            kv_tokens[a.rank_of(0)] += 1;
        }
        assert_eq!(kv_tokens[0], 120);
        assert_eq!(kv_tokens[1..], [0, 0, 0]);
    }

    #[test]
    fn padding_accounts_for_small_batches() {
        let a = decode_round_robin(1, 4, 0).unwrap();
        assert_eq!(a.padded_batch_size(), 4);
        assert_eq!(a.slots_per_rank(), 1);
        assert_eq!(a.padding(), 3);

        let b = decode_round_robin(8, 4, 0).unwrap();
        assert_eq!(b.padded_batch_size(), 8);
        assert_eq!(b.padding(), 0);

        let c = decode_round_robin(0, 4, 0).unwrap();
        assert_eq!(c.padded_batch_size(), 4); // at least one slot per rank
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(decode_round_robin(4, 0, 0).is_err());
    }
}
