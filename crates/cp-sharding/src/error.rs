//! Error type for sharding operations.

use std::error::Error;
use std::fmt;

/// Error returned by sharding constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardingError {
    /// A plan was requested over zero ranks.
    ZeroRanks,
    /// A rank index exceeds the plan's rank count.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Ranks in the plan.
        n_ranks: usize,
    },
}

impl fmt::Display for ShardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardingError::ZeroRanks => write!(f, "sharding requires at least one rank"),
            ShardingError::RankOutOfRange { rank, n_ranks } => {
                write!(f, "rank {rank} out of range for {n_ranks} ranks")
            }
        }
    }
}

impl Error for ShardingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!ShardingError::ZeroRanks.to_string().is_empty());
        assert!(ShardingError::RankOutOfRange {
            rank: 3,
            n_ranks: 2
        }
        .to_string()
        .contains('3'));
    }
}
