//! Load-balanced sharding of sequences over context-parallel ranks.
//!
//! Causal attention makes naive contiguous sharding badly imbalanced: the
//! rank holding the tail of the sequence attends to (almost) everything,
//! while the rank holding the head attends to (almost) nothing. The paper
//! (§3.5.1) balances both compute and KV-cache memory by splitting a
//! sequence into `2N` chunks and giving rank `i` the pair
//! `(C_i, C_{2N-1-i})` — one "cheap" early chunk plus one "expensive" late
//! chunk.
//!
//! This crate implements that scheme and the layouts built on it:
//!
//! * [`ShardPlan`] — the 2N-chunk assignment for a single sequence,
//! * [`shard_varseq`] — per-sequence sharding for fused variable-length
//!   batches (Figure 1),
//! * [`shard_new_tokens`] — partial-prefill sharding of the *new-token*
//!   dimension only, regardless of how cached tokens are laid out
//!   (Figure 2),
//! * [`decode_round_robin`] — batched decode assignment with a per-step
//!   offset so KV growth stays balanced (§3.6).
//!
//! # Example
//!
//! ```
//! use cp_sharding::ShardPlan;
//!
//! # fn main() -> Result<(), cp_sharding::ShardingError> {
//! let plan = ShardPlan::new(16, 2)?; // 16 tokens over 2 CP ranks
//! // Rank 0 takes chunks 0 and 3: positions 0-3 and 12-15.
//! assert_eq!(plan.positions_for(0), vec![0, 1, 2, 3, 12, 13, 14, 15]);
//! // Rank 1 takes chunks 1 and 2: positions 4-11.
//! assert_eq!(plan.positions_for(1), vec![4, 5, 6, 7, 8, 9, 10, 11]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
mod error;
mod plan;
mod striped;
mod varseq;

pub use decode::{decode_round_robin, DecodeAssignment};
pub use error::ShardingError;
pub use plan::{naive_contiguous_positions, ShardPlan};
pub use striped::StripedPlan;
pub use varseq::{
    shard_new_tokens, shard_new_tokens_with, shard_varseq, shard_varseq_with, RankShard,
    SequenceSpec, ShardEntry, ShardStrategy,
};
