//! The 2N-chunk load-balanced shard plan for one sequence.

use std::ops::Range;

use crate::ShardingError;

/// Load-balanced assignment of a `seq_len`-token sequence to `n_ranks`
/// context-parallel ranks (paper §3.5.1).
///
/// The sequence is split into `2N` equal chunks (the last chunk may be
/// short, mirroring the paper's padding); rank `i` owns chunks `i` and
/// `2N-1-i`. Pairing an early chunk with a late chunk balances the causal
/// attention triangle: every rank ends up with (nearly) the same number of
/// (query, visible-kv) pairs *and* the same number of tokens, so both
/// compute and KV-cache memory are level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    seq_len: usize,
    n_ranks: usize,
    chunk_len: usize,
}

impl ShardPlan {
    /// Creates a plan for a sequence of `seq_len` tokens over `n_ranks`
    /// ranks.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
    pub fn new(seq_len: usize, n_ranks: usize) -> Result<Self, ShardingError> {
        if n_ranks == 0 {
            return Err(ShardingError::ZeroRanks);
        }
        // ceil(seq_len / 2N); zero-length sequences get zero-length chunks.
        let chunk_len = seq_len.div_ceil(2 * n_ranks);
        Ok(ShardPlan {
            seq_len,
            n_ranks,
            chunk_len,
        })
    }

    /// Sequence length the plan covers.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of CP ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Length of each of the `2N` chunks (the final chunk may be clipped).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    fn check_rank(&self, rank: usize) -> Result<(), ShardingError> {
        if rank >= self.n_ranks {
            return Err(ShardingError::RankOutOfRange {
                rank,
                n_ranks: self.n_ranks,
            });
        }
        Ok(())
    }

    /// Clips chunk `c`'s nominal range to the sequence length.
    fn chunk_range(&self, c: usize) -> Range<usize> {
        let start = (c * self.chunk_len).min(self.seq_len);
        let end = ((c + 1) * self.chunk_len).min(self.seq_len);
        start..end
    }

    /// The two position ranges rank `rank` owns: chunk `rank` (early) and
    /// chunk `2N-1-rank` (late). Either range may be empty when the
    /// sequence is short.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::RankOutOfRange`] for an invalid rank.
    pub fn ranges_for(&self, rank: usize) -> Result<[Range<usize>; 2], ShardingError> {
        self.check_rank(rank)?;
        Ok([
            self.chunk_range(rank),
            self.chunk_range(2 * self.n_ranks - 1 - rank),
        ])
    }

    /// The global positions rank `rank` owns, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks` (use [`ShardPlan::ranges_for`] for a
    /// fallible variant).
    pub fn positions_for(&self, rank: usize) -> Vec<usize> {
        let [a, b] = self
            .ranges_for(rank)
            .expect("rank checked by caller of positions_for");
        a.chain(b).collect()
    }

    /// Number of tokens rank `rank` owns.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks`.
    pub fn tokens_for(&self, rank: usize) -> usize {
        let [a, b] = self.ranges_for(rank).expect("rank in range");
        a.len() + b.len()
    }

    /// The rank owning global position `pos`, or `None` if out of range.
    pub fn rank_of(&self, pos: usize) -> Option<usize> {
        if pos >= self.seq_len || self.chunk_len == 0 {
            return None;
        }
        let chunk = pos / self.chunk_len;
        Some(if chunk < self.n_ranks {
            chunk
        } else {
            2 * self.n_ranks - 1 - chunk
        })
    }

    /// Causal-attention work owned by rank `rank`, counted as the number of
    /// (query, visible kv) pairs — query at position `p` sees `p + 1` kv
    /// entries. This is the compute-balance metric the 2N-chunk scheme
    /// levels (ablation benches compare it against
    /// [`naive_contiguous_positions`]).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks`.
    pub fn causal_pairs_for(&self, rank: usize) -> u128 {
        self.ranges_for(rank)
            .expect("rank in range")
            .iter()
            .flat_map(|r| r.clone())
            .map(|p| (p + 1) as u128)
            .sum()
    }
}

/// Positions a *naive* contiguous partition gives rank `rank`: the
/// `rank`-th of `n_ranks` equal slices. This is the baseline the paper's
/// load-balanced scheme replaces; kept for ablation comparisons.
///
/// # Panics
///
/// Panics if `n_ranks == 0`.
pub fn naive_contiguous_positions(seq_len: usize, n_ranks: usize, rank: usize) -> Vec<usize> {
    assert!(n_ranks > 0, "n_ranks must be positive");
    let chunk = seq_len.div_ceil(n_ranks);
    let start = (rank * chunk).min(seq_len);
    let end = ((rank + 1) * chunk).min(seq_len);
    (start..end).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_two_ranks() {
        // Figure 1: with CP2 a sequence is cut into 4 chunks; rank 0 gets
        // (C0, C3), rank 1 gets (C1, C2).
        let plan = ShardPlan::new(8, 2).unwrap();
        assert_eq!(plan.chunk_len(), 2);
        assert_eq!(plan.positions_for(0), vec![0, 1, 6, 7]);
        assert_eq!(plan.positions_for(1), vec![2, 3, 4, 5]);
    }

    #[test]
    fn all_positions_covered_exactly_once() {
        for seq_len in [0, 1, 5, 16, 17, 100] {
            for n in [1, 2, 3, 4, 8] {
                let plan = ShardPlan::new(seq_len, n).unwrap();
                let mut all: Vec<usize> = (0..n).flat_map(|r| plan.positions_for(r)).collect();
                all.sort_unstable();
                let expected: Vec<usize> = (0..seq_len).collect();
                assert_eq!(all, expected, "seq_len={seq_len} n={n}");
            }
        }
    }

    #[test]
    fn token_counts_balanced_within_two_chunks() {
        let plan = ShardPlan::new(1000, 8).unwrap();
        let counts: Vec<usize> = (0..8).map(|r| plan.tokens_for(r)).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 2 * plan.chunk_len());
    }

    #[test]
    fn causal_pairs_balanced_vs_naive() {
        let seq_len = 4096;
        let n = 4;
        let plan = ShardPlan::new(seq_len, n).unwrap();
        let lb: Vec<u128> = (0..n).map(|r| plan.causal_pairs_for(r)).collect();
        let lb_max = *lb.iter().max().unwrap() as f64;
        let lb_min = *lb.iter().min().unwrap() as f64;
        // Load-balanced: spread within a few percent.
        assert!(lb_max / lb_min < 1.05, "lb spread {lb:?}");

        // Naive contiguous: last rank does ~(2N-1)x the first rank's work.
        let naive: Vec<u128> = (0..n)
            .map(|r| {
                naive_contiguous_positions(seq_len, n, r)
                    .iter()
                    .map(|&p| (p + 1) as u128)
                    .sum()
            })
            .collect();
        let nv_max = *naive.iter().max().unwrap() as f64;
        let nv_min = *naive.iter().min().unwrap() as f64;
        assert!(nv_max / nv_min > 5.0, "naive spread {naive:?}");
    }

    #[test]
    fn rank_of_inverts_positions_for() {
        let plan = ShardPlan::new(37, 3).unwrap();
        for r in 0..3 {
            for p in plan.positions_for(r) {
                assert_eq!(plan.rank_of(p), Some(r), "pos {p}");
            }
        }
        assert_eq!(plan.rank_of(37), None);
        assert_eq!(plan.rank_of(1000), None);
    }

    #[test]
    fn single_rank_owns_everything() {
        let plan = ShardPlan::new(10, 1).unwrap();
        assert_eq!(plan.positions_for(0), (0..10).collect::<Vec<_>>());
        assert_eq!(plan.tokens_for(0), 10);
    }

    #[test]
    fn short_sequence_leaves_late_chunks_empty() {
        // 3 tokens over 4 ranks: chunk_len = 1, chunks 0,1,2 populated.
        let plan = ShardPlan::new(3, 4).unwrap();
        assert_eq!(plan.positions_for(0), vec![0]); // chunk 0 (chunk 7 empty)
        assert_eq!(plan.positions_for(1), vec![1]);
        assert_eq!(plan.positions_for(2), vec![2]);
        assert_eq!(plan.positions_for(3), Vec::<usize>::new());
    }

    #[test]
    fn zero_length_sequence() {
        let plan = ShardPlan::new(0, 4).unwrap();
        for r in 0..4 {
            assert!(plan.positions_for(r).is_empty());
            assert_eq!(plan.causal_pairs_for(r), 0);
        }
        assert_eq!(plan.rank_of(0), None);
    }

    #[test]
    fn zero_ranks_rejected() {
        assert_eq!(ShardPlan::new(8, 0).unwrap_err(), ShardingError::ZeroRanks);
    }

    #[test]
    fn ranges_for_invalid_rank_errors() {
        let plan = ShardPlan::new(8, 2).unwrap();
        assert!(matches!(
            plan.ranges_for(2),
            Err(ShardingError::RankOutOfRange {
                rank: 2,
                n_ranks: 2
            })
        ));
    }

    #[test]
    fn naive_contiguous_covers_sequence() {
        let mut all: Vec<usize> = (0..3)
            .flat_map(|r| naive_contiguous_positions(10, 3, r))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
