//! Striped sharding (Brandon et al., "Striped Attention") — the
//! round-robin alternative to the paper's 2N-chunk scheme.
//!
//! Striped attention assigns token `p` to rank `(p / stripe) % N`:
//! fine-grained interleaving that also balances causal work, at the cost
//! of maximal position fragmentation (worse locality for fused kernels,
//! and in the paper's multi-turn setting it scatters each turn across all
//! ranks at stripe granularity). It is provided here as a comparison
//! strategy for the sharding ablations; the engine uses the paper's
//! 2N-chunk plan.

use crate::ShardingError;

/// Striped assignment of a sequence to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StripedPlan {
    seq_len: usize,
    n_ranks: usize,
    stripe: usize,
}

impl StripedPlan {
    /// Creates a plan with stripes of `stripe` consecutive tokens.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`; a zero
    /// `stripe` is treated as 1.
    pub fn new(seq_len: usize, n_ranks: usize, stripe: usize) -> Result<Self, ShardingError> {
        if n_ranks == 0 {
            return Err(ShardingError::ZeroRanks);
        }
        Ok(StripedPlan {
            seq_len,
            n_ranks,
            stripe: stripe.max(1),
        })
    }

    /// Sequence length covered.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Stripe width in tokens.
    pub fn stripe(&self) -> usize {
        self.stripe
    }

    /// The rank owning position `pos`, or `None` past the end.
    pub fn rank_of(&self, pos: usize) -> Option<usize> {
        if pos >= self.seq_len {
            return None;
        }
        Some((pos / self.stripe) % self.n_ranks)
    }

    /// Global positions owned by `rank`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks`.
    pub fn positions_for(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.n_ranks, "rank out of range");
        (0..self.seq_len)
            .filter(|&p| (p / self.stripe) % self.n_ranks == rank)
            .collect()
    }

    /// Causal work owned by `rank` (same metric as
    /// [`crate::ShardPlan::causal_pairs_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks`.
    pub fn causal_pairs_for(&self, rank: usize) -> u128 {
        self.positions_for(rank)
            .iter()
            .map(|&p| (p + 1) as u128)
            .sum()
    }

    /// Number of contiguous runs in `rank`'s position set — the
    /// fragmentation metric where the 2N-chunk scheme (2 runs) beats
    /// striping (`~seq_len / (stripe * n)` runs).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_ranks`.
    pub fn fragments_for(&self, rank: usize) -> usize {
        let pos = self.positions_for(rank);
        if pos.is_empty() {
            return 0;
        }
        1 + pos.windows(2).filter(|w| w[1] != w[0] + 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardPlan;

    #[test]
    fn partition_property() {
        for (len, n, stripe) in [(16, 2, 1), (17, 3, 2), (100, 4, 8), (5, 8, 1)] {
            let plan = StripedPlan::new(len, n, stripe).unwrap();
            let mut all: Vec<usize> = (0..n).flat_map(|r| plan.positions_for(r)).collect();
            all.sort_unstable();
            assert_eq!(all, (0..len).collect::<Vec<_>>(), "{len} {n} {stripe}");
        }
    }

    #[test]
    fn rank_of_agrees_with_positions() {
        let plan = StripedPlan::new(37, 3, 4).unwrap();
        for r in 0..3 {
            for p in plan.positions_for(r) {
                assert_eq!(plan.rank_of(p), Some(r));
            }
        }
        assert_eq!(plan.rank_of(37), None);
    }

    #[test]
    fn stripe_one_balances_causal_work_well() {
        let n = 4;
        let plan = StripedPlan::new(4096, n, 1).unwrap();
        let work: Vec<u128> = (0..n).map(|r| plan.causal_pairs_for(r)).collect();
        let max = *work.iter().max().unwrap() as f64;
        let min = *work.iter().min().unwrap() as f64;
        assert!(max / min < 1.01, "{work:?}");
    }

    #[test]
    fn comparable_balance_to_chunked_but_far_more_fragments() {
        let (len, n) = (4096, 4);
        let striped = StripedPlan::new(len, n, 1).unwrap();
        let chunked = ShardPlan::new(len, n).unwrap();
        // Balance: both schemes within a few percent of the mean.
        for r in 0..n {
            let s = striped.causal_pairs_for(r) as f64;
            let c = chunked.causal_pairs_for(r) as f64;
            assert!((s / c - 1.0).abs() < 0.05, "rank {r}: {s} vs {c}");
        }
        // Fragmentation: chunked has 2 runs per rank, striped has ~len/n.
        assert_eq!(
            (0..n)
                .map(|r| {
                    let pos = chunked.positions_for(r);
                    1 + pos.windows(2).filter(|w| w[1] != w[0] + 1).count()
                })
                .max()
                .unwrap(),
            2
        );
        assert!(striped.fragments_for(0) > 500);
    }

    #[test]
    fn wider_stripes_reduce_fragments() {
        let a = StripedPlan::new(1024, 4, 1).unwrap();
        let b = StripedPlan::new(1024, 4, 16).unwrap();
        assert!(b.fragments_for(0) < a.fragments_for(0));
        assert_eq!(b.fragments_for(0), 1024 / 16 / 4);
    }

    #[test]
    fn zero_stripe_clamps_to_one() {
        let plan = StripedPlan::new(8, 2, 0).unwrap();
        assert_eq!(plan.stripe(), 1);
    }

    #[test]
    fn zero_ranks_rejected_and_empty_seq_ok() {
        assert!(StripedPlan::new(8, 0, 1).is_err());
        let plan = StripedPlan::new(0, 3, 1).unwrap();
        assert!(plan.positions_for(0).is_empty());
        assert_eq!(plan.fragments_for(0), 0);
    }
}
