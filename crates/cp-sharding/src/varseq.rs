//! Fused variable-length batch sharding (Figures 1 and 2 of the paper).

use crate::{naive_contiguous_positions, ShardPlan, ShardingError, StripedPlan};

/// How new tokens are partitioned over CP ranks — the paper's 2N-chunk
/// scheme plus the ablation baselines. All strategies are *exact* (the
/// position-masked kernels accept any partition); they differ in causal
/// compute balance and position fragmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardStrategy {
    /// The paper's 2N-chunk load-balanced plan (§3.5.1).
    #[default]
    LoadBalanced,
    /// Striped round-robin assignment (Brandon et al.).
    Striped {
        /// Stripe width in tokens.
        stripe: usize,
    },
    /// Naive contiguous split — the imbalanced baseline.
    Contiguous,
}

impl ShardStrategy {
    /// Positions of a `seq_len`-token sequence owned by `rank` under this
    /// strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0` and
    /// [`ShardingError::RankOutOfRange`] for an invalid rank.
    pub fn positions_for(
        &self,
        seq_len: usize,
        n_ranks: usize,
        rank: usize,
    ) -> Result<Vec<usize>, ShardingError> {
        if n_ranks == 0 {
            return Err(ShardingError::ZeroRanks);
        }
        if rank >= n_ranks {
            return Err(ShardingError::RankOutOfRange { rank, n_ranks });
        }
        Ok(match *self {
            ShardStrategy::LoadBalanced => ShardPlan::new(seq_len, n_ranks)?.positions_for(rank),
            ShardStrategy::Striped { stripe } => {
                StripedPlan::new(seq_len, n_ranks, stripe)?.positions_for(rank)
            }
            ShardStrategy::Contiguous => naive_contiguous_positions(seq_len, n_ranks, rank),
        })
    }
}

/// One sequence of a fused batch: `cached_tokens` is the persistent-KV
/// length `P^i`, `new_tokens` the fresh prompt length `T^i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SequenceSpec {
    /// Number of new tokens to prefill (`T^i`).
    pub new_tokens: usize,
    /// Number of tokens already in the KV cache (`P^i`).
    pub cached_tokens: usize,
}

impl SequenceSpec {
    /// A full-prefill sequence (no cached history).
    pub fn full(new_tokens: usize) -> Self {
        SequenceSpec {
            new_tokens,
            cached_tokens: 0,
        }
    }

    /// A partial-prefill sequence with `cached_tokens` of history.
    pub fn partial(new_tokens: usize, cached_tokens: usize) -> Self {
        SequenceSpec {
            new_tokens,
            cached_tokens,
        }
    }

    /// Total context length after this prefill (`P^i + T^i`).
    pub fn total_len(&self) -> usize {
        self.new_tokens + self.cached_tokens
    }

    /// KV-cache miss rate `T / (T + P)`; `0.0` for an empty sequence.
    pub fn miss_rate(&self) -> f64 {
        if self.total_len() == 0 {
            0.0
        } else {
            self.new_tokens as f64 / self.total_len() as f64
        }
    }
}

/// The positions of one sequence that one rank owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Index of the sequence within the batch.
    pub seq_index: usize,
    /// Global positions (within that sequence) of the *new* tokens this
    /// rank owns, ascending.
    pub positions: Vec<usize>,
}

/// Everything one rank holds for a fused batch: one [`ShardEntry`] per
/// sequence (present even when empty, so ranks agree on batch structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankShard {
    /// Per-sequence entries, in batch order.
    pub entries: Vec<ShardEntry>,
}

impl RankShard {
    /// Total new tokens this rank owns across the batch.
    pub fn total_tokens(&self) -> usize {
        self.entries.iter().map(|e| e.positions.len()).sum()
    }
}

/// Shards the new tokens of a partial prefill over `n_ranks`: the
/// load-balanced plan is applied to the `T` new tokens only (positions
/// `P..P+T`), regardless of how the `P` cached tokens are laid out — the
/// invariant of Figure 2.
///
/// # Errors
///
/// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
pub fn shard_new_tokens(
    cached_tokens: usize,
    new_tokens: usize,
    n_ranks: usize,
) -> Result<Vec<Vec<usize>>, ShardingError> {
    shard_new_tokens_with(
        cached_tokens,
        new_tokens,
        n_ranks,
        ShardStrategy::LoadBalanced,
    )
}

/// [`shard_new_tokens`] under an explicit [`ShardStrategy`].
///
/// # Errors
///
/// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
pub fn shard_new_tokens_with(
    cached_tokens: usize,
    new_tokens: usize,
    n_ranks: usize,
    strategy: ShardStrategy,
) -> Result<Vec<Vec<usize>>, ShardingError> {
    if n_ranks == 0 {
        return Err(ShardingError::ZeroRanks);
    }
    (0..n_ranks)
        .map(|r| {
            Ok(strategy
                .positions_for(new_tokens, n_ranks, r)?
                .into_iter()
                .map(|p| p + cached_tokens)
                .collect())
        })
        .collect()
}

/// Shards a fused variable-length batch: each sequence is independently
/// load-balance-sharded on its new-token dimension (Figure 1 for full
/// prefill, Figure 2 for partial), and each rank's fused input is the
/// concatenation of its per-sequence chunks.
///
/// Returns one [`RankShard`] per rank, index = rank.
///
/// # Errors
///
/// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
///
/// # Example
///
/// ```
/// use cp_sharding::{shard_varseq, SequenceSpec};
///
/// # fn main() -> Result<(), cp_sharding::ShardingError> {
/// let batch = [SequenceSpec::full(8), SequenceSpec::partial(4, 10)];
/// let shards = shard_varseq(&batch, 2)?;
/// // Rank 0's share of sequence 1 starts after its 10 cached tokens.
/// assert_eq!(shards[0].entries[1].positions, vec![10, 13]);
/// # Ok(())
/// # }
/// ```
pub fn shard_varseq(
    batch: &[SequenceSpec],
    n_ranks: usize,
) -> Result<Vec<RankShard>, ShardingError> {
    shard_varseq_with(batch, n_ranks, ShardStrategy::LoadBalanced)
}

/// [`shard_varseq`] under an explicit [`ShardStrategy`] (ablations).
///
/// # Errors
///
/// Returns [`ShardingError::ZeroRanks`] if `n_ranks == 0`.
pub fn shard_varseq_with(
    batch: &[SequenceSpec],
    n_ranks: usize,
    strategy: ShardStrategy,
) -> Result<Vec<RankShard>, ShardingError> {
    if n_ranks == 0 {
        return Err(ShardingError::ZeroRanks);
    }
    let mut shards: Vec<RankShard> = (0..n_ranks)
        .map(|_| RankShard {
            entries: Vec::with_capacity(batch.len()),
        })
        .collect();
    for (seq_index, spec) in batch.iter().enumerate() {
        let per_rank =
            shard_new_tokens_with(spec.cached_tokens, spec.new_tokens, n_ranks, strategy)?;
        for (rank, positions) in per_rank.into_iter().enumerate() {
            shards[rank].entries.push(ShardEntry {
                seq_index,
                positions,
            });
        }
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_spec_accessors() {
        let s = SequenceSpec::partial(25, 75);
        assert_eq!(s.total_len(), 100);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        let f = SequenceSpec::full(10);
        assert_eq!(f.cached_tokens, 0);
        assert_eq!(f.miss_rate(), 1.0);
        assert_eq!(SequenceSpec::full(0).miss_rate(), 0.0);
    }

    #[test]
    fn new_tokens_offset_by_cache() {
        // 10 cached + 8 new over 2 ranks: new tokens at 10..18, sharded
        // as chunks of 2: rank0 -> 10,11,16,17; rank1 -> 12..16.
        let shards = shard_new_tokens(10, 8, 2).unwrap();
        assert_eq!(shards[0], vec![10, 11, 16, 17]);
        assert_eq!(shards[1], vec![12, 13, 14, 15]);
    }

    #[test]
    fn full_prefill_is_partial_with_zero_cache() {
        let a = shard_new_tokens(0, 12, 3).unwrap();
        let plan = ShardPlan::new(12, 3).unwrap();
        for (r, shard) in a.iter().enumerate() {
            assert_eq!(shard, &plan.positions_for(r));
        }
    }

    #[test]
    fn varseq_covers_all_new_tokens_once() {
        let batch = [
            SequenceSpec::full(13),
            SequenceSpec::partial(7, 5),
            SequenceSpec::full(0),
            SequenceSpec::partial(1, 100),
        ];
        let n = 4;
        let shards = shard_varseq(&batch, n).unwrap();
        assert_eq!(shards.len(), n);
        for (i, spec) in batch.iter().enumerate() {
            let mut all: Vec<usize> = shards
                .iter()
                .flat_map(|s| s.entries[i].positions.clone())
                .collect();
            all.sort_unstable();
            let expected: Vec<usize> =
                (spec.cached_tokens..spec.cached_tokens + spec.new_tokens).collect();
            assert_eq!(all, expected, "sequence {i}");
        }
    }

    #[test]
    fn varseq_entries_preserve_batch_order() {
        let batch = [SequenceSpec::full(4), SequenceSpec::full(6)];
        let shards = shard_varseq(&batch, 2).unwrap();
        for s in &shards {
            assert_eq!(s.entries.len(), 2);
            assert_eq!(s.entries[0].seq_index, 0);
            assert_eq!(s.entries[1].seq_index, 1);
        }
    }

    #[test]
    fn varseq_total_tokens_balanced() {
        let batch = [SequenceSpec::full(1000), SequenceSpec::full(333)];
        let shards = shard_varseq(&batch, 4).unwrap();
        let counts: Vec<usize> = shards.iter().map(RankShard::total_tokens).collect();
        let total: usize = counts.iter().sum();
        assert_eq!(total, 1333);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        // Within one chunk per sequence of each other.
        let chunk_bound: usize = batch.iter().map(|s| s.new_tokens.div_ceil(8)).sum();
        assert!(max - min <= 2 * chunk_bound, "counts {counts:?}");
    }

    #[test]
    fn strategies_all_partition_the_sequence() {
        for strategy in [
            ShardStrategy::LoadBalanced,
            ShardStrategy::Striped { stripe: 3 },
            ShardStrategy::Contiguous,
        ] {
            for (len, n) in [(0usize, 1usize), (17, 3), (32, 4), (5, 8)] {
                let mut all: Vec<usize> = (0..n)
                    .flat_map(|r| strategy.positions_for(len, n, r).unwrap())
                    .collect();
                all.sort_unstable();
                assert_eq!(all, (0..len).collect::<Vec<_>>(), "{strategy:?} {len} {n}");
            }
            assert!(strategy.positions_for(8, 0, 0).is_err());
            assert!(strategy.positions_for(8, 2, 2).is_err());
        }
    }

    #[test]
    fn default_strategy_is_load_balanced() {
        assert_eq!(ShardStrategy::default(), ShardStrategy::LoadBalanced);
        let with = shard_new_tokens_with(5, 20, 3, ShardStrategy::LoadBalanced).unwrap();
        let without = shard_new_tokens(5, 20, 3).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn varseq_with_contiguous_matches_naive_layout() {
        let batch = [SequenceSpec::full(12)];
        let shards = shard_varseq_with(&batch, 3, ShardStrategy::Contiguous).unwrap();
        assert_eq!(shards[0].entries[0].positions, (0..4).collect::<Vec<_>>());
        assert_eq!(shards[2].entries[0].positions, (8..12).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_gives_empty_shards() {
        let shards = shard_varseq(&[], 3).unwrap();
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.entries.is_empty()));
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(shard_varseq(&[SequenceSpec::full(4)], 0).is_err());
        assert!(shard_new_tokens(0, 4, 0).is_err());
    }
}
