//! Property-based tests for sharding invariants.

use cp_sharding::{
    decode_round_robin, naive_contiguous_positions, shard_new_tokens, shard_varseq, SequenceSpec,
    ShardPlan,
};
use proptest::prelude::*;

proptest! {
    /// The 2N-chunk plan partitions every sequence: all positions covered
    /// exactly once, for any (seq_len, n_ranks).
    #[test]
    fn plan_is_a_partition(seq_len in 0usize..500, n in 1usize..17) {
        let plan = ShardPlan::new(seq_len, n).unwrap();
        let mut all: Vec<usize> = (0..n).flat_map(|r| plan.positions_for(r)).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..seq_len).collect::<Vec<_>>());
    }

    /// rank_of agrees with positions_for everywhere.
    #[test]
    fn rank_of_consistent(seq_len in 1usize..300, n in 1usize..9) {
        let plan = ShardPlan::new(seq_len, n).unwrap();
        for r in 0..n {
            for p in plan.positions_for(r) {
                prop_assert_eq!(plan.rank_of(p), Some(r));
            }
        }
    }

    /// Load balance: when the sequence fills all 2N chunks, per-rank causal
    /// work is within (roughly) one chunk's worth of the mean, while the
    /// naive split's worst rank does ~2x the mean.
    #[test]
    fn causal_work_balanced(n in 2usize..9, mult in 4usize..20) {
        let seq_len = 2 * n * mult * 8; // divisible by 2N, reasonably long
        let plan = ShardPlan::new(seq_len, n).unwrap();
        let work: Vec<u128> = (0..n).map(|r| plan.causal_pairs_for(r)).collect();
        let mean = work.iter().sum::<u128>() as f64 / n as f64;
        for w in &work {
            prop_assert!((*w as f64 - mean).abs() / mean < 0.02,
                "work {work:?} mean {mean}");
        }
        // Naive: the last rank's work is (2n-1)/n x the mean (approaches 2x
        // as n grows).
        let last: u128 = naive_contiguous_positions(seq_len, n, n - 1)
            .iter().map(|&p| (p + 1) as u128).sum();
        let expected_ratio = (2.0 * n as f64 - 1.0) / n as f64;
        prop_assert!(last as f64 > 0.95 * expected_ratio * mean);
    }

    /// Token-count balance: max-min ≤ 2 (one chunk boundary's worth of
    /// remainder per chunk).
    #[test]
    fn token_counts_nearly_equal(seq_len in 0usize..1000, n in 1usize..9) {
        let plan = ShardPlan::new(seq_len, n).unwrap();
        let counts: Vec<usize> = (0..n).map(|r| plan.tokens_for(r)).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 2 * plan.chunk_len());
        prop_assert_eq!(counts.iter().sum::<usize>(), seq_len);
    }

    /// Partial-prefill sharding covers exactly the new-token window
    /// [P, P+T).
    #[test]
    fn new_token_shards_cover_window(p in 0usize..200, t in 0usize..200, n in 1usize..8) {
        let shards = shard_new_tokens(p, t, n).unwrap();
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (p..p + t).collect::<Vec<_>>());
    }

    /// Varseq sharding partitions every sequence of the batch.
    #[test]
    fn varseq_partitions_batch(
        specs in prop::collection::vec((0usize..60, 0usize..60), 0..6),
        n in 1usize..6,
    ) {
        let batch: Vec<SequenceSpec> = specs
            .iter()
            .map(|&(t, p)| SequenceSpec::partial(t, p))
            .collect();
        let shards = shard_varseq(&batch, n).unwrap();
        for (i, spec) in batch.iter().enumerate() {
            let mut all: Vec<usize> = shards
                .iter()
                .flat_map(|s| s.entries[i].positions.clone())
                .collect();
            all.sort_unstable();
            let expected: Vec<usize> =
                (spec.cached_tokens..spec.total_len()).collect();
            prop_assert_eq!(all, expected);
        }
    }

    /// Decode round-robin is a partition of the batch and its per-rank load
    /// differs by at most one.
    #[test]
    fn decode_assignment_partitions(batch in 0usize..50, n in 1usize..9, step in 0usize..20) {
        let a = decode_round_robin(batch, n, step).unwrap();
        let mut all: Vec<usize> = (0..n).flat_map(|r| a.batch_for(r)).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..batch).collect::<Vec<_>>());
        let loads: Vec<usize> = (0..n).map(|r| a.batch_for(r).len()).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Over any window of n_ranks consecutive steps with batch 1, every
    /// rank decodes exactly once (perfect KV balance).
    #[test]
    fn decode_rotation_is_fair(n in 1usize..9, start in 0usize..30) {
        let mut counts = vec![0usize; n];
        for step in start..start + n {
            let a = decode_round_robin(1, n, step).unwrap();
            counts[a.rank_of(0)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }
}
