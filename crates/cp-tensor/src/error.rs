//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; the `Display` output is lowercase without trailing punctuation
/// per Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors were expected to have identical shapes but do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An index or range exceeds the bounds of the indexed dimension.
    OutOfBounds {
        /// The offending index (or range end).
        index: usize,
        /// The extent of the indexed dimension.
        len: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// Matrix multiplication inner dimensions disagree.
    MatmulDimMismatch {
        /// Inner dimension of the left operand (`[m, k]`).
        left_inner: usize,
        /// Inner dimension of the right operand (`[k, n]`).
        right_inner: usize,
    },
    /// Concatenation operands disagree on trailing (non-concatenated)
    /// dimensions.
    ConcatShapeMismatch {
        /// Trailing shape of the first operand.
        first: Vec<usize>,
        /// Trailing shape of the offending operand.
        other: Vec<usize>,
    },
    /// A zero-size dimension or empty shape was supplied where a non-empty
    /// one is required.
    EmptyInput,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::OutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of length {len}"
                )
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected} tensor, got rank {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_inner,
                right_inner,
            } => write!(
                f,
                "matmul inner dimensions disagree: {left_inner} vs {right_inner}"
            ),
            TensorError::ConcatShapeMismatch { first, other } => {
                write!(f, "concat trailing shapes disagree: {first:?} vs {other:?}")
            }
            TensorError::EmptyInput => write!(f, "operation requires non-empty input"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![1],
                right: vec![2],
            },
            TensorError::OutOfBounds { index: 5, len: 2 },
            TensorError::RankMismatch {
                expected: 2,
                actual: 3,
            },
            TensorError::MatmulDimMismatch {
                left_inner: 2,
                right_inner: 3,
            },
            TensorError::ConcatShapeMismatch {
                first: vec![2],
                other: vec![3],
            },
            TensorError::EmptyInput,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
