//! Cache-blocked, pool-parallel GEMM with bit-identical results.
//!
//! The naive [`matmul`](crate::matmul) is the audit reference: for every
//! output element `(i, j)` it accumulates `a[i][p] * b[p][j]` over `p`
//! ascending, skipping terms whose `a[i][p]` is exactly `0.0`, into an
//! accumulator that starts at `0.0`. Floating-point addition is not
//! associative, so any faster kernel that wants the *same bits* must keep
//! that per-element accumulation order. The kernels here do exactly that:
//!
//! - **Packing** ([`PackedGemmB`]): `B` is transposed once into `NR`-wide
//!   column panels laid out k-major, so the micro-kernel streams both
//!   operands contiguously. Packing only *moves* values (plus zero padding
//!   for the ragged last panel, whose lanes are discarded), so it cannot
//!   change any arithmetic.
//! - **Register tiling**: the micro-kernel holds an `MR x NR` accumulator
//!   block in locals and walks one `KC`-bounded stretch of `k` per call —
//!   `p` stays ascending and the `a == 0.0` skip is preserved per row, so
//!   each output element sees the exact naive sequence of fused-free
//!   `mul`/`add` ops, just batched across neighbours.
//! - **`KC` cache blocking** ([`gemm_band`]): the reduction dimension is
//!   walked in `KC`-sized stretches, with the `MR x NR` partial sums parked
//!   in the output band between stretches. An `f32` survives a store/load
//!   round trip bit-exactly, so resuming the accumulation from the output
//!   runs the *same* `f32` additions in the same order as one unbroken
//!   walk — bit-identical, but the active `A` slab and `B` panel rows now
//!   fit in L2 for `k` in the hundreds of thousands (long-context
//!   attention shapes). `k <= KC` takes a single stretch: the pre-blocking
//!   kernel verbatim.
//! - **Row-band parallelism** ([`matmul_packed_on`]): bands of output rows
//!   are independent, so they fan out on a [`ComputePool`] without touching
//!   the per-element order at all.
//!
//! [`matmul_on`] is the drop-in entry point: it falls back to the serial
//! naive kernel for shapes too small to amortise packing/dispatch (the
//! crossover heuristic), and is bit-identical to [`crate::matmul`] on every
//! path — property-tested in this module and in `tests/proptests.rs`.

use cp_pool::ComputePool;

use crate::{Tensor, TensorError};

/// Rows per register tile of the micro-kernel.
const MR: usize = 8;
/// Columns per register tile (and per packed panel).
const NR: usize = 8;
/// Reduction-dimension block: one `MR x KC` interleaved `A` slab (128 KiB)
/// plus the matching `KC x NR` stretch of a `B` panel (128 KiB) stay
/// cache-resident across a panel sweep instead of streaming the full `k`
/// extent through L2 on every tile. Sized so serving-class projections
/// (`k <= 4096`) take a single stretch — the stretch split's parked
/// partial sums only start paying out-band traffic on reduction dims too
/// long to cache at all (long-context attention-class shapes).
const KC: usize = 4096;

/// Above this many multiply-accumulates a GEMM is worth packing and
/// fanning out on a pool; below it the naive serial loop wins (packing
/// plus dispatch overhead would dominate). Chosen so per-token decode
/// projections on tiny test models stay serial while serving-shape
/// prefill GEMMs parallelise.
const CROSSOVER_MACS: usize = 1 << 16;

/// `B` of an `[m, k] x [k, n]` GEMM, transposed/tiled once into `NR`-wide
/// column panels so every later matmul against it streams contiguously.
///
/// Pack once per weight at model-construction time and reuse the packing
/// for every token batch served (`Linear` in `cp-model` does exactly
/// this). Panel `jp` holds columns `jp*NR .. jp*NR+NR` of `B`, k-major:
/// element `(p, jr)` of the panel is `B[p][jp*NR + jr]`, zero-padded past
/// `n` so the micro-kernel never branches on the ragged tail.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGemmB {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedGemmB {
    /// Packs a rank-2 `[k, n]` tensor into panel layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `b` is not rank 2.
    pub fn pack(b: &Tensor) -> Result<Self, TensorError> {
        if b.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: b.rank(),
            });
        }
        let (k, n) = (b.shape()[0], b.shape()[1]);
        let bv = b.as_slice();
        let n_panels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; n_panels * k * NR];
        for jp in 0..n_panels {
            let col0 = jp * NR;
            let width = NR.min(n - col0);
            let panel = &mut panels[jp * k * NR..(jp + 1) * k * NR];
            for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &bv[p * n + col0..p * n + col0 + width];
                dst[..width].copy_from_slice(src);
            }
        }
        Ok(PackedGemmB { k, n, panels })
    }

    /// Inner (`k`) dimension of the packed matrix.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output (`n`) dimension of the packed matrix.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The panel covering columns `jp*NR ..`, as a `k * NR` k-major slice.
    fn panel(&self, jp: usize) -> &[f32] {
        &self.panels[jp * self.k * NR..(jp + 1) * self.k * NR]
    }
}

/// Validates shapes for `a x packed` and returns `(m, k, n)`.
fn check_packed_shapes(a: &Tensor, b: &PackedGemmB) -> Result<(usize, usize, usize), TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    if k != b.k {
        return Err(TensorError::MatmulDimMismatch {
            left_inner: k,
            right_inner: b.k,
        });
    }
    Ok((m, k, b.n))
}

/// The register-tiled, `KC`-blocked micro-kernel driver: one band of `A`
/// rows against every panel of `B`, writing one band of output rows.
///
/// Bit-identity contract: for each output element the `p` loop runs the
/// full `0..k` extent ascending with the naive kernel's `a == 0.0` skip.
/// The walk is split at `KC` boundaries with the `f32` partial sums parked
/// in `out_band` between stretches; the store/load round trip is
/// value-exact, so the element still sees the exact naive per-element
/// operation sequence.
fn gemm_band(a_band: &[f32], out_band: &mut [f32], k: usize, b: &PackedGemmB) {
    let n = b.n;
    if n == 0 || k == 0 {
        return;
    }
    let band_m = out_band.len() / n;
    // Scratch for one row block of `A`, interleaved k-major so the inner
    // loop reads both operands as contiguous fixed-width chunks.
    let mut ablock = vec![0.0f32; MR * KC.min(k)];
    // Outer loop over `KC` stretches of the reduction dimension: every row
    // block of the band reuses the same cache-resident stretch of each `B`
    // panel before the walk advances.
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let mut i0 = 0;
        while i0 < band_m {
            let mr = MR.min(band_m - i0);
            pack_a_block(
                &a_band[i0 * k..(i0 + mr) * k],
                k,
                p0,
                kc,
                &mut ablock[..mr * kc],
            );
            // One zero scan per (row block, stretch) decides between the
            // branchless kernel and the naive-skip kernel for *all* its
            // panels.
            let has_zero = ablock[..mr * kc].contains(&0.0);
            // Monomorphise on the row count: with `ROWS` a constant the
            // accumulator block stays in registers across the whole walk.
            match mr {
                8 => block_rows::<8>(&ablock[..8 * kc], out_band, i0, p0, b, has_zero),
                7 => block_rows::<7>(&ablock[..7 * kc], out_band, i0, p0, b, has_zero),
                6 => block_rows::<6>(&ablock[..6 * kc], out_band, i0, p0, b, has_zero),
                5 => block_rows::<5>(&ablock[..5 * kc], out_band, i0, p0, b, has_zero),
                4 => block_rows::<4>(&ablock[..4 * kc], out_band, i0, p0, b, has_zero),
                3 => block_rows::<3>(&ablock[..3 * kc], out_band, i0, p0, b, has_zero),
                2 => block_rows::<2>(&ablock[..2 * kc], out_band, i0, p0, b, has_zero),
                _ => block_rows::<1>(&ablock[..kc], out_band, i0, p0, b, has_zero),
            }
            i0 += mr;
        }
        p0 += kc;
    }
}

/// Interleaves columns `p0 .. p0+kc` of a `rows x k` row-major block
/// k-major: `dst[p*rows + ir] = a[ir*k + p0 + p]`. Pure data movement.
fn pack_a_block(a: &[f32], k: usize, p0: usize, kc: usize, dst: &mut [f32]) {
    let rows = dst.len().checked_div(kc).unwrap_or(1);
    for (p, chunk) in dst.chunks_exact_mut(rows).enumerate() {
        for (ir, v) in chunk.iter_mut().enumerate() {
            *v = a[ir * k + p0 + p];
        }
    }
}

/// `ROWS` output rows (an `ablock` of `kc * ROWS` interleaved `A` values
/// covering reduction stretch `p0 .. p0+kc`) against every packed panel:
/// an `ROWS x NR` accumulator block walks the stretch per panel, `p`
/// ascending, naive zero-skip per row. For `p0 > 0` the accumulators
/// resume from the partial sums parked in `out_band` (value-exact).
///
/// `has_zero` routes between two kernels with identical per-element op
/// sequences: when the block holds no exact `0.0` the skip can never fire,
/// so the branchless kernel executes the same arithmetic the skip kernel
/// would — just without the per-row branch in the hot loop.
fn block_rows<const ROWS: usize>(
    ablock: &[f32],
    out_band: &mut [f32],
    i0: usize,
    p0: usize,
    b: &PackedGemmB,
    has_zero: bool,
) {
    // The two arms live in separate functions on purpose: a single body
    // holding both loop nests makes LLVM spill the accumulator block and
    // costs ~5x on the branchless path.
    if has_zero {
        block_rows_skip::<ROWS>(ablock, out_band, i0, p0, b);
    } else {
        block_rows_fast::<ROWS>(ablock, out_band, i0, p0, b);
    }
}

/// Loads the `ROWS x width` accumulator block for the stretch: zeros on
/// the first stretch (the naive accumulator start), the parked partial
/// sums from `out_band` afterwards.
fn load_acc<const ROWS: usize>(
    out_band: &[f32],
    i0: usize,
    p0: usize,
    n: usize,
    col0: usize,
    width: usize,
) -> [[f32; NR]; ROWS] {
    let mut acc = [[0.0f32; NR]; ROWS];
    if p0 > 0 {
        for (ir, accrow) in acc.iter_mut().enumerate() {
            let row0 = (i0 + ir) * n + col0;
            accrow[..width].copy_from_slice(&out_band[row0..row0 + width]);
        }
    }
    acc
}

/// Branchless arm of [`block_rows`]: valid only when `ablock` holds no
/// exact `0.0`, so the naive skip could never fire and dropping it leaves
/// the per-element op sequence unchanged.
fn block_rows_fast<const ROWS: usize>(
    ablock: &[f32],
    out_band: &mut [f32],
    i0: usize,
    p0: usize,
    b: &PackedGemmB,
) {
    let n = b.n;
    let kc = ablock.len() / ROWS;
    for jp in 0..n.div_ceil(NR) {
        let panel = &b.panel(jp)[p0 * NR..(p0 + kc) * NR];
        let col0 = jp * NR;
        let width = NR.min(n - col0);
        let mut acc = load_acc::<ROWS>(out_band, i0, p0, n, col0, width);
        for (bvals, avals) in panel.chunks_exact(NR).zip(ablock.chunks_exact(ROWS)) {
            // Fixed-size array views (always `Some`: `chunks_exact`
            // yields exactly NR/ROWS elements) let the whole `ROWS x NR`
            // FMA block unroll with the accumulators in registers — this
            // is where the kernel's speedup lives.
            let (Some((bv, _)), Some((av, _))) = (
                bvals.split_first_chunk::<NR>(),
                avals.split_first_chunk::<ROWS>(),
            ) else {
                continue;
            };
            for ir in 0..ROWS {
                let aval = av[ir];
                for jr in 0..NR {
                    acc[ir][jr] += aval * bv[jr];
                }
            }
        }
        for (ir, accrow) in acc.iter().enumerate() {
            let row0 = (i0 + ir) * n + col0;
            out_band[row0..row0 + width].copy_from_slice(&accrow[..width]);
        }
    }
}

/// Skip arm of [`block_rows`]: carries the naive kernel's per-row
/// `a == 0.0` skip verbatim for blocks that contain exact zeros.
fn block_rows_skip<const ROWS: usize>(
    ablock: &[f32],
    out_band: &mut [f32],
    i0: usize,
    p0: usize,
    b: &PackedGemmB,
) {
    let n = b.n;
    let kc = ablock.len() / ROWS;
    for jp in 0..n.div_ceil(NR) {
        let panel = &b.panel(jp)[p0 * NR..(p0 + kc) * NR];
        let col0 = jp * NR;
        let width = NR.min(n - col0);
        let mut acc = load_acc::<ROWS>(out_band, i0, p0, n, col0, width);
        for (bvals, avals) in panel.chunks_exact(NR).zip(ablock.chunks_exact(ROWS)) {
            for (&aval, accrow) in avals.iter().zip(&mut acc) {
                if aval == 0.0 {
                    continue;
                }
                for (dst, &bval) in accrow.iter_mut().zip(bvals) {
                    *dst += aval * bval;
                }
            }
        }
        for (ir, accrow) in acc.iter().enumerate() {
            let row0 = (i0 + ir) * n + col0;
            out_band[row0..row0 + width].copy_from_slice(&accrow[..width]);
        }
    }
}

/// Serial tiled GEMM against a pre-packed `B`: `[m, k] x packed -> [m, n]`,
/// bit-identical to `matmul(a, b)` on the unpacked `b`.
///
/// # Errors
///
/// [`TensorError::RankMismatch`] / [`TensorError::MatmulDimMismatch`] as
/// for [`crate::matmul`].
pub fn matmul_packed(a: &Tensor, b: &PackedGemmB) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_packed_shapes(a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    gemm_band(a.as_slice(), out.as_mut_slice(), k, b);
    Ok(out)
}

/// Pool-parallel tiled GEMM against a pre-packed `B`: bands of output rows
/// fan out across `pool`, each band running the same serial micro-kernel,
/// so the result is bit-identical to [`matmul_packed`] (and the naive
/// kernel) for any pool size.
///
/// # Errors
///
/// As [`matmul_packed`].
pub fn matmul_packed_on(
    pool: &ComputePool,
    a: &Tensor,
    b: &PackedGemmB,
) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_packed_shapes(a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    let bands = pool.parallelism().min(m);
    if bands <= 1 {
        gemm_band(a.as_slice(), out.as_mut_slice(), k, b);
        return Ok(out);
    }
    let band_rows = m.div_ceil(bands);
    let av = a.as_slice();
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .as_mut_slice()
        .chunks_mut(band_rows * n)
        .zip(av.chunks(band_rows * k))
        .map(|(out_band, a_band)| {
            let job: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || gemm_band(a_band, out_band, k, b));
            job
        })
        .collect();
    pool.run(jobs);
    Ok(out)
}

/// Whether an `m x k x n` GEMM is large enough for packing + pool fan-out
/// to pay for themselves.
#[must_use]
pub fn gemm_wants_parallel(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= CROSSOVER_MACS
}

/// Drop-in replacement for [`crate::matmul`] that routes large shapes
/// through the packed, pool-parallel kernel and keeps small shapes on the
/// naive serial loop (crossover heuristic). Bit-identical to the naive
/// kernel on every path.
///
/// Serving code that reuses a weight across calls should pack once with
/// [`PackedGemmB::pack`] and call [`matmul_packed_on`] instead, skipping
/// the per-call packing cost.
///
/// # Errors
///
/// As [`crate::matmul`].
pub fn matmul_on(pool: &ComputePool, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() == 2 && b.rank() == 2 {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        if k == b.shape()[0] && gemm_wants_parallel(m, k, n) {
            let packed = PackedGemmB::pack(b)?;
            return matmul_packed_on(pool, a, &packed);
        }
    }
    crate::matmul(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, DetRng};

    fn rng_pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = DetRng::new(seed);
        (rng.tensor(&[m, k]), rng.tensor(&[k, n]))
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn packed_matches_naive_on_tile_aligned_and_ragged_shapes() {
        for (m, k, n) in [
            (4, 8, 8),    // exactly one MR x NR tile column
            (8, 16, 24),  // multiple aligned tiles
            (5, 7, 9),    // ragged everywhere
            (1, 1, 1),    // minimal
            (3, 129, 17), // long odd k, ragged n
            (9, 3, 31),   // n tail one short of NR boundary
        ] {
            let (a, b) = rng_pair(m, k, n, 0x9e3779b9 ^ (m * 31 + n) as u64);
            let naive = matmul(&a, &b).unwrap();
            let packed = PackedGemmB::pack(&b).unwrap();
            assert_eq!((packed.k(), packed.n()), (k, n));
            let tiled = matmul_packed(&a, &packed).unwrap();
            assert_bits_equal(&naive, &tiled, "tiled");
            let pool = ComputePool::new(4);
            let pooled = matmul_packed_on(&pool, &a, &packed).unwrap();
            assert_bits_equal(&naive, &pooled, "tiled+pool");
        }
    }

    #[test]
    fn kc_blocked_reduction_matches_naive_across_stretch_boundaries() {
        // k straddling the KC cache-block boundary: one short, exactly
        // aligned, one over, ragged multi-stretch — each must round-trip
        // the f32 partial sums through the output band bit-exactly.
        for k in [KC - 1, KC, KC + 1, 2 * KC + 5] {
            let (a, b) = rng_pair(9, k, 17, 0x5eed ^ k as u64);
            let naive = matmul(&a, &b).unwrap();
            let packed = PackedGemmB::pack(&b).unwrap();
            assert_bits_equal(&naive, &matmul_packed(&a, &packed).unwrap(), "kc serial");
            let pool = ComputePool::new(3);
            let pooled = matmul_packed_on(&pool, &a, &packed).unwrap();
            assert_bits_equal(&naive, &pooled, "kc pooled");
        }
    }

    #[test]
    fn kc_stretches_can_mix_skip_and_branchless_arms() {
        // Zeros confined to the first KC stretch: the same row block takes
        // the skip kernel for stretch 0 and the branchless kernel for
        // stretch 1, and must still match the naive walk bit-for-bit.
        let k = KC + 40;
        let mut rng = DetRng::new(0xabc);
        let mut a = rng.tensor(&[5, k]);
        {
            let av = a.as_mut_slice();
            for row in 0..5 {
                for p in (0..KC).step_by(7) {
                    av[row * k + p] = 0.0;
                }
            }
        }
        let b = rng.tensor(&[k, 13]);
        let naive = matmul(&a, &b).unwrap();
        let packed = PackedGemmB::pack(&b).unwrap();
        assert_bits_equal(&naive, &matmul_packed(&a, &packed).unwrap(), "mixed arms");
    }

    #[test]
    fn zero_extent_shapes() {
        for (m, k, n) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0), (1, 0, 1)] {
            let (a, b) = rng_pair(m, k, n, 7);
            let naive = matmul(&a, &b).unwrap();
            let packed = PackedGemmB::pack(&b).unwrap();
            let tiled = matmul_packed(&a, &packed).unwrap();
            assert_bits_equal(&naive, &tiled, "zero-extent tiled");
            let pool = ComputePool::new(3);
            let pooled = matmul_packed_on(&pool, &a, &packed).unwrap();
            assert_bits_equal(&naive, &pooled, "zero-extent pooled");
            let on = matmul_on(&pool, &a, &b).unwrap();
            assert_bits_equal(&naive, &on, "zero-extent matmul_on");
        }
    }

    #[test]
    fn unit_extent_shapes() {
        for (m, k, n) in [(1, 4, 4), (4, 1, 4), (4, 4, 1), (1, 1, 4), (1, 1, 1)] {
            let (a, b) = rng_pair(m, k, n, 11);
            let naive = matmul(&a, &b).unwrap();
            let packed = PackedGemmB::pack(&b).unwrap();
            assert_bits_equal(&naive, &matmul_packed(&a, &packed).unwrap(), "unit");
        }
    }

    #[test]
    fn pool_of_one_equals_serial() {
        let (a, b) = rng_pair(13, 37, 21, 3);
        let packed = PackedGemmB::pack(&b).unwrap();
        let serial = matmul_packed(&a, &packed).unwrap();
        let pool1 = ComputePool::new(1);
        let pooled = matmul_packed_on(&pool1, &a, &packed).unwrap();
        assert_bits_equal(&serial, &pooled, "pool-of-1");
    }

    #[test]
    fn zero_entries_in_a_exercise_the_skip_path() {
        let mut rng = DetRng::new(99);
        let mut a = rng.tensor(&[6, 10]);
        {
            let av = a.as_mut_slice();
            for (i, v) in av.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
        }
        let b = rng.tensor(&[10, 11]);
        let naive = matmul(&a, &b).unwrap();
        let packed = PackedGemmB::pack(&b).unwrap();
        assert_bits_equal(&naive, &matmul_packed(&a, &packed).unwrap(), "skip");
        let pool = ComputePool::new(2);
        assert_bits_equal(
            &naive,
            &matmul_packed_on(&pool, &a, &packed).unwrap(),
            "skip+pool",
        );
    }

    #[test]
    fn matmul_on_crosses_over_and_stays_identical() {
        let pool = ComputePool::new(4);
        // Below crossover: routed to the naive serial kernel.
        assert!(!gemm_wants_parallel(4, 8, 8));
        // Above crossover: packed + pooled.
        assert!(gemm_wants_parallel(64, 64, 64));
        for (m, k, n) in [(4, 8, 8), (64, 64, 64), (65, 63, 64)] {
            let (a, b) = rng_pair(m, k, n, 21);
            let naive = matmul(&a, &b).unwrap();
            let got = matmul_on(&pool, &a, &b).unwrap();
            assert_bits_equal(&naive, &got, "matmul_on");
        }
    }

    #[test]
    fn shape_errors_match_naive_contract() {
        let pool = ComputePool::new(2);
        let a3 = Tensor::zeros(&[2, 2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        assert!(matches!(
            PackedGemmB::pack(&a3),
            Err(TensorError::RankMismatch {
                expected: 2,
                actual: 3
            })
        ));
        let packed = PackedGemmB::pack(&b).unwrap();
        assert!(matches!(
            matmul_packed(&a3, &packed),
            Err(TensorError::RankMismatch {
                expected: 2,
                actual: 3
            })
        ));
        let a_bad = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            matmul_packed_on(&pool, &a_bad, &packed),
            Err(TensorError::MatmulDimMismatch {
                left_inner: 3,
                right_inner: 2
            })
        ));
    }
}
