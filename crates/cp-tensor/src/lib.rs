//! Dense row-major `f32` tensor substrate for the context-parallel inference
//! workspace.
//!
//! This crate provides the minimal numeric substrate shared by the attention
//! kernels (`cp-attention`), the KV cache (`cp-kvcache`) and the
//! context-parallel algorithms (`cp-core`): a contiguous, row-major,
//! arbitrary-rank [`Tensor`] plus the handful of operations long-context
//! attention actually needs (slicing and concatenation along the token axis,
//! small matmuls, numerically stable softmax helpers).
//!
//! It deliberately does **not** try to be a general ML framework: no strides,
//! no broadcasting, no autograd. Everything is contiguous and explicit, which
//! keeps the exactness proofs in the rest of the workspace easy to audit.
//!
//! # Example
//!
//! ```
//! use cp_tensor::Tensor;
//!
//! # fn main() -> Result<(), cp_tensor::TensorError> {
//! // A [tokens=4, heads=2, head_dim=3] activation tensor.
//! let t = Tensor::zeros(&[4, 2, 3]);
//! assert_eq!(t.numel(), 24);
//! let front = t.slice_dim0(0..2)?;
//! assert_eq!(front.shape(), &[2, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gemm;
mod ops;
mod rng;
mod tensor;

pub use error::TensorError;
pub use gemm::{gemm_wants_parallel, matmul_on, matmul_packed, matmul_packed_on, PackedGemmB};
pub use ops::{log_sum_exp, matmul, softmax_row_in_place, stable_softmax_rows};
pub use rng::DetRng;
pub use tensor::Tensor;
