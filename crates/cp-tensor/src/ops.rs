//! Small numeric kernels: matmul and numerically stable softmax helpers.
//!
//! These are the only dense-linear-algebra primitives the attention kernels
//! need. They are written for clarity and auditability rather than peak
//! throughput; `cp-attention` layers blocking/online-softmax structure on top.

use crate::{Tensor, TensorError};

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2, or
/// [`TensorError::MatmulDimMismatch`] if inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cp_tensor::{matmul, Tensor};
///
/// # fn main() -> Result<(), cp_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_inner: k,
            right_inner: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = out.row_mut(i);
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (j, &bval) in brow.iter().enumerate() {
                orow[j] += aval * bval;
            }
        }
    }
    Ok(out)
}

/// Applies a numerically stable softmax to one row in place, returning the
/// row's log-sum-exp (LSE).
///
/// Entries equal to `f32::NEG_INFINITY` (masked positions) become exactly
/// `0.0`. If *all* entries are masked, the row is left all-zero and the LSE
/// is `f32::NEG_INFINITY` — the convention merge attention (Eq. 4 of the
/// paper) relies on so fully-masked partial results contribute nothing.
pub fn softmax_row_in_place(row: &mut [f32]) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        row.fill(0.0);
        return f32::NEG_INFINITY;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
    max + sum.ln()
}

/// Applies [`softmax_row_in_place`] to every dimension-0 row of a rank-2
/// tensor, returning the per-row LSE values.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `scores` is not rank 2.
pub fn stable_softmax_rows(scores: &mut Tensor) -> Result<Vec<f32>, TensorError> {
    if scores.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: scores.rank(),
        });
    }
    let rows = scores.dim0();
    let mut lses = Vec::with_capacity(rows);
    for i in 0..rows {
        lses.push(softmax_row_in_place(scores.row_mut(i)));
    }
    Ok(lses)
}

/// Numerically stable `log(sum(exp(x)))` over a slice.
///
/// Returns `f32::NEG_INFINITY` for an empty slice or a slice of all
/// `NEG_INFINITY` values.
pub fn log_sum_exp(values: &[f32]) -> f32 {
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let sum: f32 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]).unwrap();
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let r1 = Tensor::zeros(&[6]);
        assert!(matches!(
            matmul(&r1, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0];
        let lse = softmax_row_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // LSE of [1,2,3] = 3 + ln(e^-2 + e^-1 + 1).
        let expected = 3.0 + (f32::exp(-2.0) + f32::exp(-1.0) + 1.0).ln();
        assert!((lse - expected).abs() < 1e-6);
    }

    #[test]
    fn softmax_handles_masked_entries() {
        let mut row = vec![f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY];
        softmax_row_in_place(&mut row);
        assert_eq!(row, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_all_masked_yields_zero_row_and_neg_inf_lse() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        let lse = softmax_row_in_place(&mut row);
        assert_eq!(row, vec![0.0; 4]);
        assert_eq!(lse, f32::NEG_INFINITY);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_row_in_place(&mut a);
        softmax_row_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn stable_softmax_rows_processes_each_row() {
        let mut t = Tensor::from_vec(vec![0.0, 0.0, 10.0, 10.0], &[2, 2]).unwrap();
        let lses = stable_softmax_rows(&mut t).unwrap();
        assert_eq!(lses.len(), 2);
        for i in 0..2 {
            let s: f32 = t.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!((lses[0] - (2.0_f32).ln()).abs() < 1e-6);
        assert!((lses[1] - (10.0 + (2.0_f32).ln())).abs() < 1e-5);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let vals = [0.5f32, -1.0, 2.0];
        let naive = vals.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&vals) - naive).abs() < 1e-6);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY]), f32::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let vals = [1000.0, 1000.0];
        let lse = log_sum_exp(&vals);
        assert!((lse - (1000.0 + (2.0_f32).ln())).abs() < 1e-3);
    }
}
