//! A tiny deterministic RNG for generating reproducible test tensors.
//!
//! `cp-tensor` sits at the bottom of the workspace and should not pull in the
//! `rand` crate; exactness tests across the workspace only need a cheap,
//! seedable stream of well-spread floats. [`DetRng`] is an xorshift64*
//! generator — statistically adequate for generating attention inputs, and
//! fully deterministic across platforms.

use crate::Tensor;

/// A deterministic xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use cp_tensor::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_f32(), b.next_f32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Take the top 24 bits for a uniformly distributed mantissa.
        ((self.next_u64() >> 40) as f32) / (1u32 << 24) as f32
    }

    /// Uniform `f32` in `[-1, 1)` — a sensible scale for attention inputs
    /// (keeps Q·K dot products from saturating `exp` at large head_dim).
    pub fn next_signed(&mut self) -> f32 {
        self.next_f32() * 2.0 - 1.0
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// Fills a new tensor of `shape` with uniform values in `[-1, 1)`.
    pub fn tensor(&mut self, shape: &[usize]) -> Tensor {
        Tensor::from_fn(shape, |_| self.next_signed())
    }
}

impl Default for DetRng {
    fn default() -> Self {
        DetRng::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = DetRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn signed_in_range_and_both_signs() {
        let mut r = DetRng::new(4);
        let vals: Vec<f32> = (0..1000).map(|_| r.next_signed()).collect();
        assert!(vals.iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(vals.iter().any(|&v| v < 0.0));
        assert!(vals.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::new(6).next_below(0);
    }

    #[test]
    fn tensor_has_requested_shape() {
        let t = DetRng::new(8).tensor(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        // Not all equal — the fill actually varies.
        let first = t.as_slice()[0];
        assert!(t.as_slice().iter().any(|&v| v != first));
    }
}
