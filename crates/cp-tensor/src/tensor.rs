//! The core dense row-major tensor type.

use std::fmt;
use std::ops::Range;

use crate::TensorError;

/// A dense, contiguous, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is the single numeric container used throughout the workspace.
/// Dimension 0 is by convention the *token* axis for activations
/// (`[tokens, heads, head_dim]`), which is the axis context parallelism
/// shards, slices and concatenates.
///
/// # Example
///
/// ```
/// use cp_tensor::Tensor;
///
/// # fn main() -> Result<(), cp_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = a.slice_dim0(1..2)?;
/// assert_eq!(b.as_slice(), &[3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// let t = cp_tensor::Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.numel(), 6);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Tensor {
            data: vec![0.0; numel],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor {
            data: vec![value; numel],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor by evaluating `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            data: (0..numel).map(&mut f).collect(),
            shape: shape.to_vec(),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The length of dimension 0, or 0 for a rank-0 tensor.
    pub fn dim0(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of elements in one dimension-0 "row" (product of trailing
    /// dimensions).
    pub fn row_numel(&self) -> usize {
        self.shape.iter().skip(1).product()
    }

    /// Borrows the underlying flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, or
    /// [`TensorError::OutOfBounds`] if any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            if idx >= dim {
                return Err(TensorError::OutOfBounds {
                    index: idx,
                    len: dim,
                });
            }
            let stride: usize = self.shape[i + 1..].iter().product();
            off += idx * stride;
        }
        Ok(off)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Tensor::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Tensor::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Borrows the contiguous row `i` along dimension 0 (all trailing
    /// dimensions flattened).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim0()`.
    pub fn row(&self, i: usize) -> &[f32] {
        let rn = self.row_numel();
        &self.data[i * rn..(i + 1) * rn]
    }

    /// Mutably borrows the contiguous row `i` along dimension 0.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim0()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let rn = self.row_numel();
        &mut self.data[i * rn..(i + 1) * rn]
    }

    /// Copies a sub-range of dimension 0 into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the range exceeds `dim0()`.
    pub fn slice_dim0(&self, range: Range<usize>) -> Result<Tensor, TensorError> {
        if range.end > self.dim0() || range.start > range.end {
            return Err(TensorError::OutOfBounds {
                index: range.end,
                len: self.dim0(),
            });
        }
        let rn = self.row_numel();
        let mut shape = self.shape.clone();
        shape[0] = range.len();
        Ok(Tensor {
            data: self.data[range.start * rn..range.end * rn].to_vec(),
            shape,
        })
    }

    /// Gathers rows of dimension 0 at the given indices into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if any index exceeds `dim0()`.
    pub fn gather_dim0(&self, indices: &[usize]) -> Result<Tensor, TensorError> {
        let rn = self.row_numel();
        let mut data = Vec::with_capacity(indices.len() * rn);
        for &i in indices {
            if i >= self.dim0() {
                return Err(TensorError::OutOfBounds {
                    index: i,
                    len: self.dim0(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Ok(Tensor { data, shape })
    }

    /// Concatenates tensors along dimension 0.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty operand list and
    /// [`TensorError::ConcatShapeMismatch`] if trailing dimensions disagree.
    pub fn concat_dim0<'a, I>(tensors: I) -> Result<Tensor, TensorError>
    where
        I: IntoIterator<Item = &'a Tensor>,
    {
        let tensors: Vec<&Tensor> = tensors.into_iter().collect();
        let first = tensors.first().ok_or(TensorError::EmptyInput)?;
        let trailing = &first.shape[1..];
        let mut total0 = 0;
        for t in &tensors {
            if &t.shape[1..] != trailing {
                return Err(TensorError::ConcatShapeMismatch {
                    first: trailing.to_vec(),
                    other: t.shape[1..].to_vec(),
                });
            }
            total0 += t.dim0();
        }
        let mut data = Vec::with_capacity(total0 * first.row_numel());
        for t in &tensors {
            data.extend_from_slice(&t.data);
        }
        let mut shape = first.shape.clone();
        shape[0] = total0;
        Ok(Tensor { data, shape })
    }

    /// Returns a copy with dimension 0 extended to `len` rows, new rows
    /// filled with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `len < dim0()`.
    pub fn pad_dim0(&self, len: usize, value: f32) -> Result<Tensor, TensorError> {
        if len < self.dim0() {
            return Err(TensorError::OutOfBounds {
                index: len,
                len: self.dim0(),
            });
        }
        let rn = self.row_numel();
        let mut data = self.data.clone();
        data.resize(len * rn, value);
        let mut shape = self.shape.clone();
        shape[0] = len;
        Ok(Tensor { data, shape })
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: self.numel(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Element-wise in-place addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Element-wise (Hadamard) in-place multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        Ok(())
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Returns `true` if every element differs from `other` by at most `tol`
    /// in a mixed absolute/relative sense: `|a-b| <= tol * max(1, |a|, |b|)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0_f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        }))
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?}[", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …{} more", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tensor of shape {:?} ({} elements)",
            self.shape,
            self.numel()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        Tensor::from_fn(shape, |i| i as f32)
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[2, 2], 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn offset_and_at_row_major() {
        let t = seq_tensor(&[2, 3, 4]);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.at(&[1, 0, 0]).unwrap(), 12.0);
        assert!(matches!(
            t.at(&[2, 0, 0]),
            Err(TensorError::OutOfBounds { index: 2, len: 2 })
        ));
        assert!(matches!(
            t.at(&[0, 0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn set_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 5.0).unwrap();
        assert_eq!(t.at(&[1, 1]).unwrap(), 5.0);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn rows_are_contiguous() {
        let t = seq_tensor(&[3, 2, 2]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0, 7.0]);
        let mut t = t;
        t.row_mut(2).fill(9.0);
        assert_eq!(t.at(&[2, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn slice_dim0_copies_range() {
        let t = seq_tensor(&[4, 2]);
        let s = t.slice_dim0(1..3).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert!(t.slice_dim0(2..5).is_err());
    }

    #[test]
    fn slice_dim0_empty_range_ok() {
        let t = seq_tensor(&[4, 2]);
        let s = t.slice_dim0(2..2).unwrap();
        assert_eq!(s.dim0(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn gather_dim0_reorders() {
        let t = seq_tensor(&[3, 2]);
        let g = t.gather_dim0(&[2, 0, 2]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.gather_dim0(&[3]).is_err());
    }

    #[test]
    fn concat_dim0_joins() {
        let a = seq_tensor(&[1, 2]);
        let b = seq_tensor(&[2, 2]);
        let c = Tensor::concat_dim0([&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_dim0_rejects_mismatch_and_empty() {
        let a = seq_tensor(&[1, 2]);
        let b = seq_tensor(&[1, 3]);
        assert!(matches!(
            Tensor::concat_dim0([&a, &b]),
            Err(TensorError::ConcatShapeMismatch { .. })
        ));
        assert!(matches!(
            Tensor::concat_dim0(std::iter::empty::<&Tensor>()),
            Err(TensorError::EmptyInput)
        ));
    }

    #[test]
    fn pad_dim0_extends_with_value() {
        let t = seq_tensor(&[2, 2]);
        let p = t.pad_dim0(4, -1.0).unwrap();
        assert_eq!(p.shape(), &[4, 2]);
        assert_eq!(&p.as_slice()[4..], &[-1.0; 4]);
        assert!(t.pad_dim0(1, 0.0).is_err());
        // Padding to the current size is a no-op.
        assert_eq!(t.pad_dim0(2, 0.0).unwrap(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = seq_tensor(&[2, 3]);
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = seq_tensor(&[2, 2]);
        let b = Tensor::full(&[2, 2], 1.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn mul_assign_hadamard() {
        let mut a = seq_tensor(&[2, 2]);
        let b = Tensor::full(&[2, 2], 3.0);
        a.mul_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 3.0, 6.0, 9.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.mul_assign(&c).is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = seq_tensor(&[3]);
        let m = t.map(|v| v * v + 1.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 5.0]);
        assert_eq!(m.shape(), t.shape());
    }

    #[test]
    fn approx_eq_mixed_tolerance() {
        let a = Tensor::from_vec(vec![100.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![100.005, 1e-5], &[2]).unwrap();
        assert!(a.approx_eq(&b, 1e-4).unwrap());
        let c = Tensor::from_vec(vec![100.5, 0.0], &[2]).unwrap();
        assert!(!a.approx_eq(&c, 1e-4).unwrap());
    }

    #[test]
    fn max_abs_diff_reports_worst() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 2.25], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let t = seq_tensor(&[20]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(!s.is_empty());
        let e = Tensor::default();
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
