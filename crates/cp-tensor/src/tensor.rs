//! The core dense row-major tensor type.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use crate::TensorError;

/// A dense, contiguous, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is the single numeric container used throughout the workspace.
/// Dimension 0 is by convention the *token* axis for activations
/// (`[tokens, heads, head_dim]`), which is the axis context parallelism
/// shards, slices and concatenates.
///
/// # Storage
///
/// Element storage is a shared `Arc<[f32]>` plus an `(offset, len)` window,
/// so [`Tensor::clone`], [`Tensor::slice_dim0`] and [`Tensor::reshape`] are
/// O(1) handle copies — no buffer traffic. This is what makes the ring
/// hot path zero-copy: every hop forwards views, never payload bytes.
/// Mutating methods use copy-on-write: they materialize a private buffer
/// only if the storage is shared or windowed, so single-owner mutation is
/// as cheap as with `Vec` storage and aliasing is never observable.
///
/// # Example
///
/// ```
/// use cp_tensor::Tensor;
///
/// # fn main() -> Result<(), cp_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = a.slice_dim0(1..2)?;
/// assert_eq!(b.as_slice(), &[3.0, 4.0]);
/// assert!(a.shares_buffer(&b)); // O(1) view, not a copy
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Tensor {
    data: Arc<[f32]>,
    offset: usize,
    len: usize,
    shape: Vec<usize>,
}

impl Tensor {
    /// Builds a tensor owning a fresh buffer (full-window view).
    fn from_buffer(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let len = data.len();
        Tensor {
            data: data.into(),
            offset: 0,
            len,
            shape,
        }
    }

    /// The elements visible through this tensor's window.
    #[inline]
    fn view(&self) -> &[f32] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Returns a uniquely-owned mutable buffer for this tensor's elements,
    /// copying the window out of shared storage first if necessary
    /// (copy-on-write).
    fn make_mut(&mut self) -> &mut [f32] {
        let windowed = self.offset != 0 || self.len != self.data.len();
        if windowed || Arc::get_mut(&mut self.data).is_none() {
            self.data = Arc::from(&self.data[self.offset..self.offset + self.len]);
            self.offset = 0;
        }
        Arc::get_mut(&mut self.data).expect("storage is uniquely owned after copy-on-write")
    }

    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// let t = cp_tensor::Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.numel(), 6);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Tensor::from_buffer(vec![0.0; numel], shape.to_vec())
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor::from_buffer(vec![value; numel], shape.to_vec())
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor::from_buffer(data, shape.to_vec()))
    }

    /// Creates a tensor by evaluating `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor::from_buffer((0..numel).map(&mut f).collect(), shape.to_vec())
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The length of dimension 0, or 0 for a rank-0 tensor.
    pub fn dim0(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of elements in one dimension-0 "row" (product of trailing
    /// dimensions).
    pub fn row_numel(&self) -> usize {
        self.shape.iter().skip(1).product()
    }

    /// Borrows the underlying flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        self.view()
    }

    /// Mutably borrows the underlying flat buffer, copying out of shared
    /// storage first if this tensor is a view or the buffer is aliased.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.make_mut()
    }

    /// Consumes the tensor, returning its flat buffer (copied out of shared
    /// storage only when the buffer is aliased or windowed).
    pub fn into_vec(mut self) -> Vec<f32> {
        self.make_mut();
        // After make_mut the window spans a uniquely-owned buffer.
        self.view().to_vec()
    }

    /// Returns `true` if `self` and `other` are windows over the same
    /// allocation (i.e. one was derived from the other without copying).
    pub fn shares_buffer(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// An independent deep copy with a freshly allocated buffer. `clone()`
    /// is an O(1) handle copy; this is the old clone-the-bytes behaviour,
    /// kept for A/B benchmarking of the zero-copy representation.
    pub fn deep_clone(&self) -> Tensor {
        Tensor::from_buffer(self.view().to_vec(), self.shape.clone())
    }

    /// Returns the flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, or
    /// [`TensorError::OutOfBounds`] if any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.shape.len() {
            return Err(TensorError::RankMismatch {
                expected: self.shape.len(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            if idx >= dim {
                return Err(TensorError::OutOfBounds {
                    index: idx,
                    len: dim,
                });
            }
            let stride: usize = self.shape[i + 1..].iter().product();
            off += idx * stride;
        }
        Ok(off)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Tensor::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.view()[self.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Tensor::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.offset(index)?;
        self.make_mut()[off] = value;
        Ok(())
    }

    /// Borrows the contiguous row `i` along dimension 0 (all trailing
    /// dimensions flattened).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim0()`.
    pub fn row(&self, i: usize) -> &[f32] {
        let rn = self.row_numel();
        &self.view()[i * rn..(i + 1) * rn]
    }

    /// Mutably borrows the contiguous row `i` along dimension 0.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim0()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let rn = self.row_numel();
        &mut self.make_mut()[i * rn..(i + 1) * rn]
    }

    /// Returns a sub-range of dimension 0 as an O(1) zero-copy view sharing
    /// this tensor's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the range exceeds `dim0()`.
    pub fn slice_dim0(&self, range: Range<usize>) -> Result<Tensor, TensorError> {
        if range.end > self.dim0() || range.start > range.end {
            return Err(TensorError::OutOfBounds {
                index: range.end,
                len: self.dim0(),
            });
        }
        let rn = self.row_numel();
        let mut shape = self.shape.clone();
        shape[0] = range.len();
        Ok(Tensor {
            data: Arc::clone(&self.data),
            offset: self.offset + range.start * rn,
            len: range.len() * rn,
            shape,
        })
    }

    /// Gathers rows of dimension 0 at the given indices into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if any index exceeds `dim0()`.
    pub fn gather_dim0(&self, indices: &[usize]) -> Result<Tensor, TensorError> {
        let rn = self.row_numel();
        let mut data = Vec::with_capacity(indices.len() * rn);
        for &i in indices {
            if i >= self.dim0() {
                return Err(TensorError::OutOfBounds {
                    index: i,
                    len: self.dim0(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Ok(Tensor::from_buffer(data, shape))
    }

    /// Concatenates tensors along dimension 0.
    ///
    /// Concatenating a single tensor (or adjacent views of one buffer whose
    /// windows line up back-to-back) returns an O(1) view instead of
    /// copying, so un-sharding consecutive slices is free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty operand list and
    /// [`TensorError::ConcatShapeMismatch`] if trailing dimensions disagree.
    pub fn concat_dim0<'a, I>(tensors: I) -> Result<Tensor, TensorError>
    where
        I: IntoIterator<Item = &'a Tensor>,
    {
        let tensors: Vec<&Tensor> = tensors.into_iter().collect();
        let first = tensors.first().ok_or(TensorError::EmptyInput)?;
        let trailing = &first.shape[1..];
        let mut total0 = 0;
        for t in &tensors {
            if &t.shape[1..] != trailing {
                return Err(TensorError::ConcatShapeMismatch {
                    first: trailing.to_vec(),
                    other: t.shape[1..].to_vec(),
                });
            }
            total0 += t.dim0();
        }
        let mut shape = first.shape.clone();
        shape[0] = total0;
        // Zero-copy path: adjacent windows of one shared buffer rejoin as a
        // single wider view (the common "slice, ring-send, reassemble" case).
        let adjacent = tensors
            .windows(2)
            .all(|w| Arc::ptr_eq(&w[0].data, &w[1].data) && w[0].offset + w[0].len == w[1].offset);
        if adjacent {
            return Ok(Tensor {
                data: Arc::clone(&first.data),
                offset: first.offset,
                len: tensors.iter().map(|t| t.len).sum(),
                shape,
            });
        }
        let mut data = Vec::with_capacity(total0 * first.row_numel());
        for t in &tensors {
            data.extend_from_slice(t.view());
        }
        Ok(Tensor::from_buffer(data, shape))
    }

    /// Returns a copy with dimension 0 extended to `len` rows, new rows
    /// filled with `value`. Padding to the current size is an O(1) view.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `len < dim0()`.
    pub fn pad_dim0(&self, len: usize, value: f32) -> Result<Tensor, TensorError> {
        if len < self.dim0() {
            return Err(TensorError::OutOfBounds {
                index: len,
                len: self.dim0(),
            });
        }
        if len == self.dim0() {
            return Ok(self.clone());
        }
        let rn = self.row_numel();
        let mut data = Vec::with_capacity(len * rn);
        data.extend_from_slice(self.view());
        data.resize(len * rn, value);
        let mut shape = self.shape.clone();
        shape[0] = len;
        Ok(Tensor::from_buffer(data, shape))
    }

    /// Reinterprets the tensor with a new shape of equal element count as an
    /// O(1) view sharing this tensor's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: self.numel(),
            });
        }
        Ok(Tensor {
            data: Arc::clone(&self.data),
            offset: self.offset,
            len: self.len,
            shape: shape.to_vec(),
        })
    }

    /// Element-wise in-place addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.make_mut().iter_mut().zip(other.view()) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        for v in self.make_mut() {
            *v *= scale;
        }
    }

    /// Element-wise (Hadamard) in-place multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.make_mut().iter_mut().zip(other.view()) {
            *a *= b;
        }
        Ok(())
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_buffer(
            self.view().iter().map(|&v| f(v)).collect(),
            self.shape.clone(),
        )
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(self
            .view()
            .iter()
            .zip(other.view())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Returns `true` if every element differs from `other` by at most `tol`
    /// in a mixed absolute/relative sense: `|a-b| <= tol * max(1, |a|, |b|)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(self.view().iter().zip(other.view()).all(|(a, b)| {
            let scale = 1.0_f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        }))
    }
}

/// Value equality: same shape, same elements. Window placement and buffer
/// sharing are representation details and do not affect equality.
impl PartialEq for Tensor {
    fn eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape && self.view() == other.view()
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor::from_buffer(Vec::new(), vec![0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?}[", self.shape)?;
        for (i, v) in self.view().iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.len > PREVIEW {
            write!(f, ", …{} more", self.len - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tensor of shape {:?} ({} elements)",
            self.shape,
            self.numel()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        Tensor::from_fn(shape, |i| i as f32)
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[2, 2], 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn offset_and_at_row_major() {
        let t = seq_tensor(&[2, 3, 4]);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.at(&[1, 0, 0]).unwrap(), 12.0);
        assert!(matches!(
            t.at(&[2, 0, 0]),
            Err(TensorError::OutOfBounds { index: 2, len: 2 })
        ));
        assert!(matches!(
            t.at(&[0, 0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn set_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 5.0).unwrap();
        assert_eq!(t.at(&[1, 1]).unwrap(), 5.0);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn rows_are_contiguous() {
        let t = seq_tensor(&[3, 2, 2]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0, 7.0]);
        let mut t = t;
        t.row_mut(2).fill(9.0);
        assert_eq!(t.at(&[2, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn slice_dim0_views_range() {
        let t = seq_tensor(&[4, 2]);
        let s = t.slice_dim0(1..3).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert!(t.slice_dim0(2..5).is_err());
    }

    #[test]
    fn slice_dim0_empty_range_ok() {
        let t = seq_tensor(&[4, 2]);
        let s = t.slice_dim0(2..2).unwrap();
        assert_eq!(s.dim0(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn clone_and_slice_share_storage() {
        let t = seq_tensor(&[4, 2]);
        let c = t.clone();
        let s = t.slice_dim0(1..3).unwrap();
        let r = t.reshape(&[2, 4]).unwrap();
        assert!(t.shares_buffer(&c));
        assert!(t.shares_buffer(&s));
        assert!(t.shares_buffer(&r));
        assert!(!t.shares_buffer(&t.deep_clone()));
    }

    #[test]
    fn nested_slices_compose_offsets() {
        let t = seq_tensor(&[6, 2]);
        let outer = t.slice_dim0(1..5).unwrap();
        let inner = outer.slice_dim0(2..4).unwrap();
        assert_eq!(inner.as_slice(), &[6.0, 7.0, 8.0, 9.0]);
        assert!(inner.shares_buffer(&t));
    }

    #[test]
    fn copy_on_write_isolates_mutation() {
        let t = seq_tensor(&[4, 2]);
        let mut c = t.clone();
        c.scale(10.0);
        // The clone materialized its own buffer; the original is untouched.
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(
            c.as_slice(),
            &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]
        );
        assert!(!t.shares_buffer(&c));

        let mut s = t.slice_dim0(1..3).unwrap();
        s.set(&[0, 0], -1.0).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), 2.0);
        assert_eq!(s.at(&[0, 0]).unwrap(), -1.0);
    }

    #[test]
    fn unique_owner_mutates_in_place() {
        let mut t = seq_tensor(&[4, 2]);
        let before = t.as_slice().as_ptr();
        t.scale(2.0);
        assert_eq!(t.as_slice().as_ptr(), before);
    }

    #[test]
    fn gather_dim0_reorders() {
        let t = seq_tensor(&[3, 2]);
        let g = t.gather_dim0(&[2, 0, 2]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.gather_dim0(&[3]).is_err());
    }

    #[test]
    fn concat_dim0_joins() {
        let a = seq_tensor(&[1, 2]);
        let b = seq_tensor(&[2, 2]);
        let c = Tensor::concat_dim0([&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_of_adjacent_views_is_zero_copy() {
        let t = seq_tensor(&[5, 2]);
        let a = t.slice_dim0(0..2).unwrap();
        let b = t.slice_dim0(2..5).unwrap();
        let joined = Tensor::concat_dim0([&a, &b]).unwrap();
        assert_eq!(joined, t);
        assert!(joined.shares_buffer(&t));
        // Non-adjacent views still copy correctly.
        let c = t.slice_dim0(0..1).unwrap();
        let d = t.slice_dim0(3..4).unwrap();
        let picked = Tensor::concat_dim0([&c, &d]).unwrap();
        assert_eq!(picked.as_slice(), &[0.0, 1.0, 6.0, 7.0]);
        assert!(!picked.shares_buffer(&t));
    }

    #[test]
    fn concat_dim0_rejects_mismatch_and_empty() {
        let a = seq_tensor(&[1, 2]);
        let b = seq_tensor(&[1, 3]);
        assert!(matches!(
            Tensor::concat_dim0([&a, &b]),
            Err(TensorError::ConcatShapeMismatch { .. })
        ));
        assert!(matches!(
            Tensor::concat_dim0(std::iter::empty::<&Tensor>()),
            Err(TensorError::EmptyInput)
        ));
    }

    #[test]
    fn pad_dim0_extends_with_value() {
        let t = seq_tensor(&[2, 2]);
        let p = t.pad_dim0(4, -1.0).unwrap();
        assert_eq!(p.shape(), &[4, 2]);
        assert_eq!(&p.as_slice()[4..], &[-1.0; 4]);
        assert!(t.pad_dim0(1, 0.0).is_err());
        // Padding to the current size is a zero-copy no-op.
        let same = t.pad_dim0(2, 0.0).unwrap();
        assert_eq!(same, t);
        assert!(same.shares_buffer(&t));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = seq_tensor(&[2, 3]);
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn into_vec_copies_window_only() {
        let t = seq_tensor(&[4, 2]);
        let s = t.slice_dim0(1..3).unwrap();
        assert_eq!(s.into_vec(), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.as_slice().len(), 8);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = seq_tensor(&[2, 2]);
        let b = Tensor::full(&[2, 2], 1.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn mul_assign_hadamard() {
        let mut a = seq_tensor(&[2, 2]);
        let b = Tensor::full(&[2, 2], 3.0);
        a.mul_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 3.0, 6.0, 9.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.mul_assign(&c).is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = seq_tensor(&[3]);
        let m = t.map(|v| v * v + 1.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 5.0]);
        assert_eq!(m.shape(), t.shape());
    }

    #[test]
    fn approx_eq_mixed_tolerance() {
        let a = Tensor::from_vec(vec![100.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![100.005, 1e-5], &[2]).unwrap();
        assert!(a.approx_eq(&b, 1e-4).unwrap());
        let c = Tensor::from_vec(vec![100.5, 0.0], &[2]).unwrap();
        assert!(!a.approx_eq(&c, 1e-4).unwrap());
    }

    #[test]
    fn max_abs_diff_reports_worst() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 2.25], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
    }

    #[test]
    fn equality_ignores_window_placement() {
        let t = seq_tensor(&[4, 2]);
        let front = t.slice_dim0(0..2).unwrap();
        let back = t.slice_dim0(2..4).unwrap();
        assert_ne!(front, back);
        assert_eq!(front, seq_tensor(&[2, 2]));
        assert_eq!(back.deep_clone(), back);
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let t = seq_tensor(&[20]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(!s.is_empty());
        let e = Tensor::default();
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
