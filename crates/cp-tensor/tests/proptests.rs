//! Property-based tests for the tensor substrate.

use cp_pool::ComputePool;
use cp_tensor::{
    log_sum_exp, matmul, matmul_on, matmul_packed, matmul_packed_on, softmax_row_in_place, DetRng,
    PackedGemmB, Tensor,
};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

proptest! {
    /// slice ∘ concat round-trips: concatenating consecutive slices of a
    /// tensor along dim0 reproduces the tensor.
    #[test]
    fn concat_of_slices_roundtrips(shape in small_shape(), split in 0usize..6, seed in any::<u64>()) {
        let t = DetRng::new(seed).tensor(&shape);
        let split = split.min(t.dim0());
        let a = t.slice_dim0(0..split).unwrap();
        let b = t.slice_dim0(split..t.dim0()).unwrap();
        let joined = Tensor::concat_dim0([&a, &b]).unwrap();
        prop_assert_eq!(joined, t);
    }

    /// Padding then slicing back recovers the original tensor.
    #[test]
    fn pad_then_slice_roundtrips(shape in small_shape(), extra in 0usize..5, seed in any::<u64>()) {
        let t = DetRng::new(seed).tensor(&shape);
        let padded = t.pad_dim0(t.dim0() + extra, 0.0).unwrap();
        let back = padded.slice_dim0(0..t.dim0()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// gather with the identity permutation is the identity.
    #[test]
    fn gather_identity(shape in small_shape(), seed in any::<u64>()) {
        let t = DetRng::new(seed).tensor(&shape);
        let idx: Vec<usize> = (0..t.dim0()).collect();
        prop_assert_eq!(t.gather_dim0(&idx).unwrap(), t);
    }

    /// Softmax rows always sum to 1 (or 0 when fully masked) and are
    /// non-negative.
    #[test]
    fn softmax_row_is_distribution(row in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut r = row;
        softmax_row_in_place(&mut r);
        let sum: f32 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(r.iter().all(|&v| v >= 0.0));
    }

    /// LSE is monotone: adding an element never decreases it.
    #[test]
    fn lse_monotone(vals in prop::collection::vec(-20.0f32..20.0, 1..10), extra in -20.0f32..20.0) {
        let base = log_sum_exp(&vals);
        let mut more = vals.clone();
        more.push(extra);
        prop_assert!(log_sum_exp(&more) >= base - 1e-5);
    }

    /// Matmul distributes over addition: (A + B) C = AC + BC.
    #[test]
    fn matmul_distributes(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let a = rng.tensor(&[m, k]);
        let b = rng.tensor(&[m, k]);
        let c = rng.tensor(&[k, n]);
        let mut ab = a.clone();
        ab.add_assign(&b).unwrap();
        let lhs = matmul(&ab, &c).unwrap();
        let mut rhs = matmul(&a, &c).unwrap();
        rhs.add_assign(&matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-4).unwrap());
    }

    /// Matmul with the identity is the identity.
    #[test]
    fn matmul_identity_right(m in 1usize..5, k in 1usize..5, seed in any::<u64>()) {
        let a = DetRng::new(seed).tensor(&[m, k]);
        let eye = Tensor::from_fn(&[k, k], |i| if i / k == i % k { 1.0 } else { 0.0 });
        let prod = matmul(&a, &eye).unwrap();
        prop_assert!(prod.approx_eq(&a, 1e-6).unwrap());
    }

    /// The packed/tiled GEMM, serial and pool-parallel, is BIT-identical to
    /// the naive reference kernel across shapes including ragged tile tails
    /// and zeros in A (the naive kernel's skip path).
    #[test]
    fn packed_gemm_bit_identical_to_naive(
        m in 0usize..23,
        k in 0usize..23,
        n in 0usize..23,
        threads in 1usize..5,
        zero_stride in 2usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let mut a = rng.tensor(&[m, k]);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % zero_stride == 0 {
                *v = 0.0;
            }
        }
        let b = rng.tensor(&[k, n]);
        let naive = matmul(&a, &b).unwrap();
        let packed = PackedGemmB::pack(&b).unwrap();
        let tiled = matmul_packed(&a, &packed).unwrap();
        let pool = ComputePool::new(threads);
        let pooled = matmul_packed_on(&pool, &a, &packed).unwrap();
        let routed = matmul_on(&pool, &a, &b).unwrap();
        for (x, y) in naive.as_slice().iter().zip(tiled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in naive.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in naive.as_slice().iter().zip(routed.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The KC cache-blocked reduction walk is bit-identical to the naive
    /// kernel for `k` straddling the 4096-wide stretch boundary at ragged
    /// offsets, with zeros in A landing in arbitrary stretches (mixing the
    /// skip and branchless kernels across stretches of one row block).
    #[test]
    fn kc_blocked_gemm_bit_identical_across_ragged_stretches(
        m in 1usize..10,
        k_off in 0usize..70,
        n in 1usize..14,
        threads in 1usize..4,
        zero_stride in 5usize..900,
        seed in any::<u64>(),
    ) {
        let k = 4096 - 35 + k_off; // 4061..=4130: below, at, and past KC
        let mut rng = DetRng::new(seed);
        let mut a = rng.tensor(&[m, k]);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % zero_stride == 0 {
                *v = 0.0;
            }
        }
        let b = rng.tensor(&[k, n]);
        let naive = matmul(&a, &b).unwrap();
        let packed = PackedGemmB::pack(&b).unwrap();
        let tiled = matmul_packed(&a, &packed).unwrap();
        let pool = ComputePool::new(threads);
        let pooled = matmul_packed_on(&pool, &a, &packed).unwrap();
        for (x, y) in naive.as_slice().iter().zip(tiled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in naive.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
