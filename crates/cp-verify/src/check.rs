//! The plan model checker: structural validation, FIFO send/recv matching,
//! collective agreement, deadlock-freedom, and wire-byte conservation.
//!
//! # Why matching + graph analysis decides all interleavings
//!
//! The fabric is a Kahn process network: each rank runs a deterministic
//! program against per-peer FIFO channels, and sends are buffered
//! (non-blocking). In such networks the k-th send on a channel is consumed
//! by the k-th receive on that channel in *every* execution, so the
//! matching is interleaving-independent, and a schedule deadlocks in some
//! interleaving iff it deadlocks in all of them — iff the wait-for graph
//! over declared operations has a cycle (or a receive has no matching
//! send). Checking the graph therefore covers the full interleaving space
//! without enumerating it; [`crate::explore_interleavings`] independently
//! cross-validates this on small worlds by brute force.

use std::collections::BTreeMap;
use std::fmt;

use cp_comm::{CommOp, CommPlan};

/// A node in the wait-for graph: one declared op of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpRef {
    /// The rank issuing the op.
    pub rank: usize,
    /// Index of the op in the rank's schedule.
    pub step: usize,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} step {}", self.rank, self.step)
    }
}

/// One property violation found by [`check_plan`]. Every variant names the
/// offending rank(s) via [`Violation::offending_ranks`] and its `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A plan is malformed: bad rank indexing, out-of-range peer, or a
    /// collective vector whose length is not the world size.
    Structure {
        /// The rank whose schedule is malformed.
        rank: usize,
        /// Step of the offending op (its own length for rank-level issues).
        step: usize,
        /// Description of the defect.
        detail: String,
    },
    /// A channel's sender declares more messages than its receiver will
    /// consume; the excess is silently buffered traffic (byte loss).
    UnmatchedSend {
        /// The sending rank.
        from: usize,
        /// The receiving rank.
        to: usize,
        /// Messages the sender declares on the channel.
        sent: usize,
        /// Messages the receiver declares on the channel.
        received: usize,
    },
    /// A channel's receiver declares more messages than its sender will
    /// produce: the extra receive can never complete (guaranteed stall).
    UnmatchedRecv {
        /// The sending rank.
        from: usize,
        /// The receiving rank (the one that stalls).
        to: usize,
        /// Messages the sender declares on the channel.
        sent: usize,
        /// Messages the receiver declares on the channel.
        received: usize,
    },
    /// The k-th send on a channel and the k-th receive disagree on the
    /// message variant.
    VariantMismatch {
        /// The send side of the matched pair.
        send: OpRef,
        /// The receive side of the matched pair.
        recv: OpRef,
        /// Variant the sender declares.
        sent: &'static str,
        /// Variant the receiver expects.
        expected: &'static str,
    },
    /// The k-th send on a channel and the k-th receive disagree on wire
    /// bytes — the conservation law `bytes sent == bytes received` fails.
    ByteMismatch {
        /// The send side of the matched pair.
        send: OpRef,
        /// The receive side of the matched pair.
        recv: OpRef,
        /// Bytes the sender declares.
        sent_bytes: usize,
        /// Bytes the receiver expects.
        recv_bytes: usize,
    },
    /// Ranks disagree on a collective: different call counts of a kind, a
    /// variant mismatch inside one instance, or entry-wise byte
    /// disagreement (e.g. `all_to_all` row/column mismatch).
    CollectiveMismatch {
        /// Collective kind tag (`"all_to_all"`, `"barrier"`, …).
        kind: &'static str,
        /// Ranks involved in the disagreement.
        ranks: Vec<usize>,
        /// Description of the disagreement.
        detail: String,
    },
    /// The wait-for graph has a cycle: in every interleaving the listed
    /// ops block each other forever.
    Deadlock {
        /// The ops forming the cycle, in wait order.
        cycle: Vec<OpRef>,
    },
    /// Aggregate byte accounting diverged (plan-level conservation against
    /// the traffic the fabric's `TrafficStats` would record).
    Conservation {
        /// Description of the divergence.
        detail: String,
    },
}

impl Violation {
    /// The ranks responsible for the violation, for attribution in tests
    /// and CI output.
    pub fn offending_ranks(&self) -> Vec<usize> {
        match self {
            Violation::Structure { rank, .. } => vec![*rank],
            Violation::UnmatchedSend { from, to, .. }
            | Violation::UnmatchedRecv { from, to, .. } => vec![*from, *to],
            Violation::VariantMismatch { send, recv, .. }
            | Violation::ByteMismatch { send, recv, .. } => vec![send.rank, recv.rank],
            Violation::CollectiveMismatch { ranks, .. } => ranks.clone(),
            Violation::Deadlock { cycle } => {
                let mut rs: Vec<usize> = cycle.iter().map(|n| n.rank).collect();
                rs.sort_unstable();
                rs.dedup();
                rs
            }
            Violation::Conservation { .. } => Vec::new(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Structure { rank, step, detail } => {
                write!(f, "structure: rank {rank} step {step}: {detail}")
            }
            Violation::UnmatchedSend {
                from,
                to,
                sent,
                received,
            } => write!(
                f,
                "unmatched send: rank {from} declares {sent} messages to rank {to}, which only \
                 receives {received}"
            ),
            Violation::UnmatchedRecv {
                from,
                to,
                sent,
                received,
            } => write!(
                f,
                "unmatched recv: rank {to} declares {received} receives from rank {from}, which \
                 only sends {sent} — the extra receive stalls forever"
            ),
            Violation::VariantMismatch {
                send,
                recv,
                sent,
                expected,
            } => write!(
                f,
                "variant mismatch: {send} sends {sent}, matched {recv} expects {expected}"
            ),
            Violation::ByteMismatch {
                send,
                recv,
                sent_bytes,
                recv_bytes,
            } => write!(
                f,
                "byte mismatch: {send} sends {sent_bytes} wire bytes, matched {recv} expects \
                 {recv_bytes}"
            ),
            Violation::CollectiveMismatch {
                kind,
                ranks,
                detail,
            } => {
                write!(
                    f,
                    "collective mismatch ({kind}) among ranks {ranks:?}: {detail}"
                )
            }
            Violation::Deadlock { cycle } => {
                write!(f, "deadlock cycle:")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ->")?;
                    }
                    write!(f, " {n}")?;
                }
                Ok(())
            }
            Violation::Conservation { detail } => write!(f, "byte conservation: {detail}"),
        }
    }
}

/// Result of a [`check_plan`] run: violations plus coverage counters.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All violations found, in detection order.
    pub violations: Vec<Violation>,
    /// Declared ops inspected across all ranks.
    pub ops_checked: usize,
    /// Directed point-to-point channels with traffic.
    pub channels: usize,
    /// Send/recv pairs successfully matched.
    pub matches: usize,
}

impl CheckReport {
    /// `true` when every property held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One point-to-point message endpoint extracted from a declared op.
#[derive(Debug, Clone, Copy)]
struct Endpoint {
    op: OpRef,
    variant: &'static str,
    bytes: usize,
}

/// Per-kind collective call sites of one rank, in program order.
type CollectiveSites<'a> = Vec<(OpRef, &'a CommOp)>;

/// Model-checks a declared communication plan.
///
/// Properties checked, in order:
///
/// 1. **Structure** — rank indexing, peer ranges, collective vector widths;
/// 2. **FIFO matching** — the k-th send on every directed channel pairs
///    with the k-th receive; variant and wire-byte agreement per pair;
///    unmatched sends (byte loss) and receives (guaranteed stall);
/// 3. **Collective agreement** — equal call counts per kind, variant and
///    entry-wise byte agreement within each instance;
/// 4. **Deadlock-freedom over all interleavings** — no cycle in the
///    wait-for graph (see the module docs for why this is complete);
/// 5. **Wire-byte conservation** — per-channel sent == received totals,
///    and the plan's sender-side totals equal what the fabric's
///    `TrafficStats` would record (via `CommPlan::predicted_traffic`).
///
/// Structural failures short-circuit the remaining phases (their results
/// would be meaningless on a malformed plan).
pub fn check_plan(plan: &CommPlan) -> CheckReport {
    let mut report = CheckReport::default();
    check_structure(plan, &mut report);
    if !report.is_clean() {
        return report;
    }
    let matches = check_p2p_matching(plan, &mut report);
    check_collectives(plan, &mut report);
    check_deadlock(plan, &matches, &mut report);
    check_conservation(plan, &mut report);
    report
}

fn check_structure(plan: &CommPlan, report: &mut CheckReport) {
    if plan.ranks.len() != plan.world {
        report.violations.push(Violation::Structure {
            rank: 0,
            step: 0,
            detail: format!(
                "plan declares world {} but carries {} rank schedules",
                plan.world,
                plan.ranks.len()
            ),
        });
        return;
    }
    let world = plan.world;
    for (idx, rp) in plan.ranks.iter().enumerate() {
        if rp.rank != idx {
            report.violations.push(Violation::Structure {
                rank: idx,
                step: 0,
                detail: format!("schedule at position {idx} is labelled rank {}", rp.rank),
            });
            continue;
        }
        for (step, op) in rp.ops.iter().enumerate() {
            report.ops_checked += 1;
            let bad_peer = |peer: usize| peer >= world;
            let mut flag = |detail: String| {
                report.violations.push(Violation::Structure {
                    rank: idx,
                    step,
                    detail,
                });
            };
            match op {
                CommOp::SendRecv { dst, src, .. } => {
                    if bad_peer(*dst) || bad_peer(*src) {
                        flag(format!(
                            "send_recv peers (dst {dst}, src {src}) out of world {world}"
                        ));
                    }
                }
                CommOp::Send { dst, .. } => {
                    if bad_peer(*dst) {
                        flag(format!("send dst {dst} out of world {world}"));
                    }
                }
                CommOp::Recv { src, .. } => {
                    if bad_peer(*src) {
                        flag(format!("recv src {src} out of world {world}"));
                    }
                }
                CommOp::AllToAll {
                    send_bytes,
                    recv_bytes,
                    ..
                } => {
                    if send_bytes.len() != world || recv_bytes.len() != world {
                        flag(format!(
                            "all_to_all byte vectors ({} send, {} recv) must have world {world} \
                             entries",
                            send_bytes.len(),
                            recv_bytes.len()
                        ));
                    }
                }
                CommOp::AllGather { recv_bytes, .. } | CommOp::AllReduce { recv_bytes, .. } => {
                    if recv_bytes.len() != world {
                        flag(format!(
                            "{} recv byte vector has {} entries, world is {world}",
                            op.kind(),
                            recv_bytes.len()
                        ));
                    }
                }
                CommOp::Barrier => {}
            }
        }
    }
}

/// FIFO-matches every directed channel; returns, per receive op, the send
/// op it consumes (used to build the wait-for graph).
fn check_p2p_matching(plan: &CommPlan, report: &mut CheckReport) -> BTreeMap<OpRef, OpRef> {
    // Channel (from, to) -> program-ordered endpoint lists.
    let mut sends: BTreeMap<(usize, usize), Vec<Endpoint>> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, usize), Vec<Endpoint>> = BTreeMap::new();
    for rp in &plan.ranks {
        for (step, op) in rp.ops.iter().enumerate() {
            let here = OpRef {
                rank: rp.rank,
                step,
            };
            match op {
                CommOp::SendRecv {
                    dst,
                    src,
                    send_variant,
                    recv_variant,
                    send_bytes,
                    recv_bytes,
                } => {
                    sends.entry((rp.rank, *dst)).or_default().push(Endpoint {
                        op: here,
                        variant: send_variant,
                        bytes: *send_bytes,
                    });
                    recvs.entry((*src, rp.rank)).or_default().push(Endpoint {
                        op: here,
                        variant: recv_variant,
                        bytes: *recv_bytes,
                    });
                }
                CommOp::Send {
                    dst,
                    variant,
                    bytes,
                } => {
                    sends.entry((rp.rank, *dst)).or_default().push(Endpoint {
                        op: here,
                        variant,
                        bytes: *bytes,
                    });
                }
                CommOp::Recv {
                    src,
                    variant,
                    bytes,
                } => {
                    recvs.entry((*src, rp.rank)).or_default().push(Endpoint {
                        op: here,
                        variant,
                        bytes: *bytes,
                    });
                }
                _ => {}
            }
        }
    }

    let mut matched: BTreeMap<OpRef, OpRef> = BTreeMap::new();
    let mut channels: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();
    channels.extend(sends.keys().copied());
    channels.extend(recvs.keys().copied());
    report.channels = channels.len();

    for ch in channels {
        let empty: Vec<Endpoint> = Vec::new();
        let ss = sends.get(&ch).unwrap_or(&empty);
        let rs = recvs.get(&ch).unwrap_or(&empty);
        let (from, to) = ch;
        for (s, r) in ss.iter().zip(rs.iter()) {
            report.matches += 1;
            matched.insert(r.op, s.op);
            if s.variant != r.variant {
                report.violations.push(Violation::VariantMismatch {
                    send: s.op,
                    recv: r.op,
                    sent: s.variant,
                    expected: r.variant,
                });
            }
            if s.bytes != r.bytes {
                report.violations.push(Violation::ByteMismatch {
                    send: s.op,
                    recv: r.op,
                    sent_bytes: s.bytes,
                    recv_bytes: r.bytes,
                });
            }
        }
        if ss.len() > rs.len() {
            report.violations.push(Violation::UnmatchedSend {
                from,
                to,
                sent: ss.len(),
                received: rs.len(),
            });
        }
        if rs.len() > ss.len() {
            report.violations.push(Violation::UnmatchedRecv {
                from,
                to,
                sent: ss.len(),
                received: rs.len(),
            });
        }
    }
    matched
}

fn collective_sites(plan: &CommPlan) -> BTreeMap<&'static str, Vec<CollectiveSites<'_>>> {
    let kinds = ["all_to_all", "all_gather", "all_reduce", "barrier"];
    let mut by_kind: BTreeMap<&'static str, Vec<CollectiveSites<'_>>> = kinds
        .iter()
        .map(|k| (*k, vec![Vec::new(); plan.ranks.len()]))
        .collect();
    for rp in &plan.ranks {
        for (step, op) in rp.ops.iter().enumerate() {
            let kind = op.kind();
            if let Some(per_rank) = by_kind.get_mut(kind) {
                if let Some(sites) = per_rank.get_mut(rp.rank) {
                    sites.push((
                        OpRef {
                            rank: rp.rank,
                            step,
                        },
                        op,
                    ));
                }
            }
        }
    }
    by_kind
}

fn op_variant(op: &CommOp) -> Option<&'static str> {
    match op {
        CommOp::AllToAll { variant, .. }
        | CommOp::AllGather { variant, .. }
        | CommOp::AllReduce { variant, .. } => Some(variant),
        _ => None,
    }
}

fn check_collectives(plan: &CommPlan, report: &mut CheckReport) {
    let world = plan.world;
    for (kind, per_rank) in collective_sites(plan) {
        // Equal call counts.
        let counts: Vec<usize> = per_rank.iter().map(Vec::len).collect();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max != min {
            let ranks: Vec<usize> = counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != max)
                .map(|(r, _)| r)
                .collect();
            report.violations.push(Violation::CollectiveMismatch {
                kind,
                ranks,
                detail: format!("call counts differ across ranks: {counts:?}"),
            });
            continue; // instance alignment is undefined past this point
        }
        for inst in 0..max {
            let ops: Vec<(OpRef, &CommOp)> = per_rank
                .iter()
                .filter_map(|sites| sites.get(inst).copied())
                .collect();
            // Variant agreement within the instance.
            let variants: Vec<&'static str> =
                ops.iter().filter_map(|(_, op)| op_variant(op)).collect();
            if let Some(first) = variants.first() {
                if variants.iter().any(|v| v != first) {
                    report.violations.push(Violation::CollectiveMismatch {
                        kind,
                        ranks: ops.iter().map(|(n, _)| n.rank).collect(),
                        detail: format!("instance {inst} variants disagree: {variants:?}"),
                    });
                }
            }
            // Entry-wise byte agreement: what i says it sends j must be
            // what j says it receives from i.
            for (ni, oi) in &ops {
                for (nj, oj) in &ops {
                    let (i, j) = (ni.rank, nj.rank);
                    let declared_send: Option<usize> = match oi {
                        CommOp::AllToAll { send_bytes, .. } => send_bytes.get(j).copied(),
                        CommOp::AllGather { send_bytes, .. }
                        | CommOp::AllReduce { send_bytes, .. } => Some(*send_bytes),
                        _ => None,
                    };
                    let declared_recv: Option<usize> = match oj {
                        CommOp::AllToAll { recv_bytes, .. }
                        | CommOp::AllGather { recv_bytes, .. }
                        | CommOp::AllReduce { recv_bytes, .. } => recv_bytes.get(i).copied(),
                        _ => None,
                    };
                    if let (Some(s), Some(r)) = (declared_send, declared_recv) {
                        if s != r {
                            report.violations.push(Violation::CollectiveMismatch {
                                kind,
                                ranks: vec![i, j],
                                detail: format!(
                                    "instance {inst}: rank {i} sends {s} bytes to rank {j}, \
                                     which expects {r}"
                                ),
                            });
                        }
                    }
                }
            }
            let _ = world;
        }
    }
}

/// Wait-for analysis. Node = declared op. An op *completes* when its
/// blocking conditions are met; it is *issued* once its rank completed all
/// earlier ops. Buffered sends complete at issuance; receives additionally
/// wait for their matched send to be issued; collective instances wait for
/// every participant's counterpart to be issued. A cycle means every
/// interleaving deadlocks (Kahn network: matching is schedule-independent).
fn check_deadlock(plan: &CommPlan, matched: &BTreeMap<OpRef, OpRef>, report: &mut CheckReport) {
    // Node ids: offsets into a flattened op list.
    let mut base = Vec::with_capacity(plan.ranks.len());
    let mut total = 0usize;
    for rp in &plan.ranks {
        base.push(total);
        total += rp.ops.len();
    }
    let id = |n: OpRef| -> Option<usize> { base.get(n.rank).map(|b| b + n.step) };
    let node_of = |i: usize| -> OpRef {
        // base is sorted; find the owning rank.
        let rank = match base.binary_search(&i) {
            Ok(mut r) => {
                // Skip over empty schedules that share the same base.
                while base.get(r + 1) == Some(&i) {
                    r += 1;
                }
                r
            }
            Err(ins) => ins.saturating_sub(1),
        };
        OpRef {
            rank,
            step: i - base.get(rank).copied().unwrap_or(0),
        }
    };

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
    let add_edge = |from: Option<usize>, to: Option<usize>, edges: &mut Vec<Vec<usize>>| {
        if let (Some(f), Some(t)) = (from, to) {
            if let Some(out) = edges.get_mut(f) {
                out.push(t);
            }
        }
    };

    // Program order.
    for rp in &plan.ranks {
        for step in 1..rp.ops.len() {
            let prev = OpRef {
                rank: rp.rank,
                step: step - 1,
            };
            let here = OpRef {
                rank: rp.rank,
                step,
            };
            add_edge(id(prev), id(here), &mut edges);
        }
    }
    // Receives wait for their matched send's issuance (= completion of the
    // op before the send; a send at step 0 is issued unconditionally).
    for (recv, send) in matched {
        if send.step > 0 {
            let send_prev = OpRef {
                rank: send.rank,
                step: send.step - 1,
            };
            add_edge(id(send_prev), id(*recv), &mut edges);
        }
    }
    // Collective instances wait for every participant's issuance.
    for (_, per_rank) in collective_sites(plan) {
        let counts: Vec<usize> = per_rank.iter().map(Vec::len).collect();
        let aligned = counts
            .iter()
            .all(|c| *c == counts.first().copied().unwrap_or(0));
        if !aligned {
            continue; // already reported; alignment undefined
        }
        let instances = counts.first().copied().unwrap_or(0);
        for inst in 0..instances {
            let nodes: Vec<OpRef> = per_rank
                .iter()
                .filter_map(|sites| sites.get(inst).map(|(n, _)| *n))
                .collect();
            for a in &nodes {
                for b in &nodes {
                    if a.rank != b.rank && b.step > 0 {
                        let b_prev = OpRef {
                            rank: b.rank,
                            step: b.step - 1,
                        };
                        add_edge(id(b_prev), id(*a), &mut edges);
                    }
                }
            }
        }
    }

    // Iterative DFS cycle detection with path extraction.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; total];
    let mut parent: Vec<Option<usize>> = vec![None; total];
    for start in 0..total {
        if color.get(start).copied() != Some(WHITE) {
            continue;
        }
        // (node, next edge index) stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        if let Some(c) = color.get_mut(start) {
            *c = GRAY;
        }
        while let Some(&(v, ei)) = stack.last() {
            let next = edges.get(v).and_then(|out| out.get(ei)).copied();
            match next {
                Some(w) => {
                    if let Some(last) = stack.last_mut() {
                        last.1 += 1;
                    }
                    match color.get(w).copied() {
                        Some(WHITE) => {
                            if let Some(c) = color.get_mut(w) {
                                *c = GRAY;
                            }
                            if let Some(p) = parent.get_mut(w) {
                                *p = Some(v);
                            }
                            stack.push((w, 0));
                        }
                        Some(GRAY) => {
                            // Found a cycle w -> ... -> v -> w.
                            let mut cycle = vec![node_of(w)];
                            let mut cur = v;
                            while cur != w {
                                cycle.push(node_of(cur));
                                cur = match parent.get(cur).copied().flatten() {
                                    Some(p) => p,
                                    None => break,
                                };
                            }
                            cycle.reverse();
                            report.violations.push(Violation::Deadlock { cycle });
                            return; // one cycle is enough evidence
                        }
                        _ => {}
                    }
                }
                None => {
                    stack.pop();
                    if let Some(c) = color.get_mut(v) {
                        *c = BLACK;
                    }
                }
            }
        }
    }
}

fn check_conservation(plan: &CommPlan, report: &mut CheckReport) {
    // Independent accounting of sender-side point-to-point bytes, compared
    // against what CommPlan::predicted_traffic (and hence the fabric's
    // TrafficStats) would record.
    let mut p2p = 0usize;
    let mut recv_total = 0usize;
    for rp in &plan.ranks {
        for op in &rp.ops {
            match op {
                CommOp::SendRecv {
                    send_bytes,
                    recv_bytes,
                    ..
                } => {
                    p2p += send_bytes;
                    recv_total += recv_bytes;
                }
                CommOp::Send { bytes, .. } => p2p += bytes,
                CommOp::Recv { bytes, .. } => recv_total += bytes,
                _ => {}
            }
        }
    }
    if p2p != recv_total {
        report.violations.push(Violation::Conservation {
            detail: format!(
                "point-to-point totals diverge: {p2p} bytes declared sent, {recv_total} declared \
                 received"
            ),
        });
    }
    let predicted = plan.predicted_traffic();
    if predicted.send_recv.bytes != p2p {
        report.violations.push(Violation::Conservation {
            detail: format!(
                "plan accounting mismatch: event walk sums {p2p} send_recv bytes, \
                 predicted_traffic records {}",
                predicted.send_recv.bytes
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_comm::RankPlan;

    fn ring(n: usize, hops: usize, bytes: usize) -> CommPlan {
        CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: (0..hops)
                        .map(|_| CommOp::SendRecv {
                            dst: (r + 1) % n,
                            src: (r + n - 1) % n,
                            send_variant: "Kv",
                            recv_variant: "Kv",
                            send_bytes: bytes,
                            recv_bytes: bytes,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn clean_ring_passes_all_checks() {
        for n in [2, 4, 8] {
            let report = check_plan(&ring(n, n - 1, 64));
            assert!(report.is_clean(), "{:?}", report.violations);
            assert_eq!(report.ops_checked, n * (n - 1));
            assert_eq!(report.channels, n);
            assert_eq!(report.matches, n * (n - 1));
        }
    }

    #[test]
    fn recv_first_schedule_is_a_deadlock_cycle() {
        // Every rank receives before sending: a cyclic wait that buffered
        // sends cannot break.
        let n = 4;
        let plan = CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![
                        CommOp::Recv {
                            src: (r + n - 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                        CommOp::Send {
                            dst: (r + 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                    ],
                })
                .collect(),
        );
        let report = check_plan(&plan);
        let deadlocks: Vec<_> = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::Deadlock { .. }))
            .collect();
        assert_eq!(deadlocks.len(), 1, "{:?}", report.violations);
        // The cycle names every rank.
        let mut ranks = deadlocks[0].offending_ranks();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_first_schedule_is_fine() {
        // The same exchange with buffered sends first: no deadlock.
        let n = 4;
        let plan = CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![
                        CommOp::Send {
                            dst: (r + 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                        CommOp::Recv {
                            src: (r + n - 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                    ],
                })
                .collect(),
        );
        assert!(check_plan(&plan).is_clean());
    }

    #[test]
    fn out_of_range_peer_is_structural() {
        let mut plan = ring(2, 1, 8);
        plan.ranks[0].ops[0] = CommOp::Send {
            dst: 7,
            variant: "Kv",
            bytes: 8,
        };
        let report = check_plan(&plan);
        assert!(matches!(
            report.violations.first(),
            Some(Violation::Structure {
                rank: 0,
                step: 0,
                ..
            })
        ));
    }

    #[test]
    fn variant_and_byte_mismatches_name_both_ends() {
        let mut plan = ring(2, 1, 8);
        if let Some(CommOp::SendRecv {
            send_variant,
            send_bytes,
            ..
        }) = plan.ranks[1].ops.get_mut(0)
        {
            *send_variant = "Q";
            *send_bytes = 4;
        }
        let report = check_plan(&plan);
        let has_variant = report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::VariantMismatch { send, .. } if send.rank == 1));
        let has_bytes = report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ByteMismatch { send, .. } if send.rank == 1));
        assert!(has_variant && has_bytes, "{:?}", report.violations);
        // Byte skew also breaks channel conservation.
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Conservation { .. })));
    }

    #[test]
    fn dropped_hop_reports_unmatched_traffic() {
        let mut plan = ring(4, 3, 8);
        plan.ranks[2].ops.pop();
        let report = check_plan(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UnmatchedSend {
                from: 1,
                to: 2,
                sent: 3,
                received: 2
            }
        )));
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UnmatchedRecv {
                from: 2,
                to: 3,
                sent: 2,
                received: 3
            }
        )));
    }

    #[test]
    fn collective_count_skew_is_reported() {
        let mut plan = ring(3, 2, 8);
        plan.ranks[1].ops.push(CommOp::Barrier);
        let report = check_plan(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::CollectiveMismatch {
                kind: "barrier",
                ..
            }
        )));
    }

    #[test]
    fn all_to_all_row_column_byte_skew_is_reported() {
        let n = 3;
        let mut plan = CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![CommOp::AllToAll {
                        variant: "Out",
                        send_bytes: vec![10; n],
                        recv_bytes: vec![10; n],
                    }],
                })
                .collect(),
        );
        if let Some(CommOp::AllToAll { send_bytes, .. }) = plan.ranks[0].ops.get_mut(0) {
            send_bytes[2] = 99; // rank 0 -> rank 2 disagrees with rank 2's expectation
        }
        let report = check_plan(&plan);
        assert!(report.violations.iter().any(|v| match v {
            Violation::CollectiveMismatch { ranks, detail, .. } =>
                ranks == &vec![0, 2] && detail.contains("99"),
            _ => false,
        }));
    }

    #[test]
    fn mismatched_collective_instance_does_not_false_deadlock() {
        // A lone barrier on one rank stalls at runtime, but the checker
        // reports it as a collective mismatch, not a graph cycle.
        let mut plan = ring(2, 1, 8);
        plan.ranks[0].ops.push(CommOp::Barrier);
        let report = check_plan(&plan);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CollectiveMismatch { .. })));
        assert!(!report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Deadlock { .. })));
    }

    #[test]
    fn violations_render_with_rank_attribution() {
        let mut plan = ring(2, 2, 8);
        plan.ranks[1].ops.pop();
        for v in check_plan(&plan).violations {
            let text = v.to_string();
            assert!(
                v.offending_ranks()
                    .iter()
                    .any(|r| text.contains(&format!("rank {r}")))
                    || matches!(v, Violation::Conservation { .. }),
                "{text}"
            );
        }
    }
}
