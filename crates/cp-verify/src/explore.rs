//! Brute-force interleaving explorer for small worlds.
//!
//! [`explore_interleavings`] enumerates every reachable program-counter
//! vector of a plan under the fabric's execution model (buffered sends,
//! FIFO channels, blocking receives and collectives) and reports the first
//! stuck non-terminal state, if any. The state space is the product of the
//! ranks' schedule lengths, so this is tractable for CP ≤ 4 and serves as
//! an independent cross-check of the graph-based criterion in
//! [`crate::check_plan`] — the two must agree on deadlock-freedom.

use std::collections::{BTreeMap, HashSet};

use cp_comm::{CommOp, CommPlan};

/// Result of exhaustively stepping a plan through every interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every interleaving drains every rank's schedule.
    Complete {
        /// Distinct program-counter states visited.
        states: usize,
    },
    /// A reachable state where no rank can make progress.
    Deadlock {
        /// Program counter of each rank in the stuck state.
        pcs: Vec<usize>,
        /// Per stuck rank: `(rank, why its next op is blocked)`.
        blocked: Vec<(usize, String)>,
    },
    /// The search hit `max_states` before finishing (plan too large).
    Truncated {
        /// Distinct states visited before giving up.
        states: usize,
    },
}

impl ExploreOutcome {
    /// `true` when the exploration proved deadlock-freedom.
    pub fn is_complete(&self) -> bool {
        matches!(self, ExploreOutcome::Complete { .. })
    }
}

/// Per-op enabling condition, precomputed from the interleaving-independent
/// FIFO matching (Kahn network property).
#[derive(Debug, Clone)]
enum Enable {
    /// Buffered send: always enabled.
    Always,
    /// Receive: enabled once the matched send (on `rank`, at op index
    /// `issued_after`) has been *issued*, i.e. that rank's pc > index.
    AfterIssued { rank: usize, index: usize },
    /// Receive with no matching send anywhere: never enabled.
    Never(String),
    /// Collective: enabled once every listed `(rank, index)` counterpart
    /// has been issued.
    AllIssued(Vec<(usize, usize)>),
}

fn build_enables(plan: &CommPlan) -> Vec<Vec<Enable>> {
    let n = plan.ranks.len();
    // FIFO matching per directed channel: k-th send pairs with k-th recv.
    let mut send_sites: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    let mut recv_sites: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    // Collective counterparts: per kind, per rank, op indices in order.
    let mut coll_sites: BTreeMap<&'static str, Vec<Vec<usize>>> = BTreeMap::new();
    for rp in &plan.ranks {
        for (step, op) in rp.ops.iter().enumerate() {
            match op {
                CommOp::SendRecv { dst, src, .. } => {
                    send_sites.entry((rp.rank, *dst)).or_default().push(step);
                    recv_sites
                        .entry((*src, rp.rank))
                        .or_default()
                        .push((rp.rank, step));
                }
                CommOp::Send { dst, .. } => {
                    send_sites.entry((rp.rank, *dst)).or_default().push(step);
                }
                CommOp::Recv { src, .. } => {
                    recv_sites
                        .entry((*src, rp.rank))
                        .or_default()
                        .push((rp.rank, step));
                }
                CommOp::AllToAll { .. }
                | CommOp::AllGather { .. }
                | CommOp::AllReduce { .. }
                | CommOp::Barrier => {
                    let per_rank = coll_sites
                        .entry(op.kind())
                        .or_insert_with(|| vec![Vec::new(); n]);
                    if let Some(sites) = per_rank.get_mut(rp.rank) {
                        sites.push(step);
                    }
                }
            }
        }
    }

    let mut enables: Vec<Vec<Enable>> = plan
        .ranks
        .iter()
        .map(|rp| vec![Enable::Always; rp.ops.len()])
        .collect();
    let mut set = |rank: usize, step: usize, e: Enable| {
        if let Some(slot) = enables.get_mut(rank).and_then(|ops| ops.get_mut(step)) {
            *slot = e;
        }
    };

    // Receives (including the receive half of SendRecv, which is what
    // blocks) wait for the matched send's issuance.
    for (channel, receivers) in &recv_sites {
        let empty = Vec::new();
        let senders = send_sites.get(channel).unwrap_or(&empty);
        for (k, (rank, step)) in receivers.iter().enumerate() {
            match senders.get(k) {
                Some(send_index) => set(
                    *rank,
                    *step,
                    Enable::AfterIssued {
                        rank: channel.0,
                        index: *send_index,
                    },
                ),
                None => set(
                    *rank,
                    *step,
                    Enable::Never(format!(
                        "waiting for message {k} from rank {}, which sends only {}",
                        channel.0,
                        senders.len()
                    )),
                ),
            }
        }
    }

    // Collectives: the m-th instance of a kind on one rank meets the m-th
    // on every other; it completes once all counterparts are issued.
    for (kind, per_rank) in &coll_sites {
        let instances = per_rank.iter().map(Vec::len).max().unwrap_or(0);
        for inst in 0..instances {
            for (rank, sites) in per_rank.iter().enumerate() {
                let Some(step) = sites.get(inst) else {
                    continue;
                };
                let mut needs = Vec::new();
                let mut missing = None;
                for (peer, peer_sites) in per_rank.iter().enumerate() {
                    if peer == rank {
                        continue;
                    }
                    match peer_sites.get(inst) {
                        Some(peer_step) => needs.push((peer, *peer_step)),
                        None => missing = Some(peer),
                    }
                }
                match missing {
                    Some(peer) => set(
                        rank,
                        *step,
                        Enable::Never(format!(
                            "{kind} instance {inst} never reached by rank {peer}"
                        )),
                    ),
                    None => set(rank, *step, Enable::AllIssued(needs)),
                }
            }
        }
    }

    enables
}

fn enabled(e: &Enable, pcs: &[usize]) -> Result<(), String> {
    match e {
        Enable::Always => Ok(()),
        Enable::AfterIssued { rank, index } => {
            // Issuance, not completion: a rank that has finished every op
            // before `index` has already posted the (buffered) send half of
            // the op at `index`, even while blocked on its receive half.
            if pcs.get(*rank).copied().unwrap_or(0) >= *index {
                Ok(())
            } else {
                Err(format!(
                    "waiting for rank {rank} to issue its op {index} (pc {})",
                    pcs.get(*rank).copied().unwrap_or(0)
                ))
            }
        }
        Enable::Never(why) => Err(why.clone()),
        Enable::AllIssued(needs) => {
            for (rank, index) in needs {
                if pcs.get(*rank).copied().unwrap_or(0) < *index {
                    return Err(format!(
                        "waiting for rank {rank} to reach its collective at op {index}"
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Exhaustively explores every interleaving of the plan's rank schedules.
///
/// The search is a DFS over program-counter vectors with memoisation;
/// because enabling only ever depends on pc vectors (buffered FIFO
/// channels make matching schedule-independent), visiting each vector once
/// covers all interleavings. `max_states` bounds the search; the default
/// via [`explore_default`] is ample for CP ≤ 4 ring schedules.
pub fn explore_interleavings(plan: &CommPlan, max_states: usize) -> ExploreOutcome {
    let enables = build_enables(plan);
    let lens: Vec<usize> = plan.ranks.iter().map(|rp| rp.ops.len()).collect();
    let start = vec![0usize; lens.len()];

    let mut visited: HashSet<Vec<usize>> = HashSet::new();
    let mut stack = vec![start];
    while let Some(pcs) = stack.pop() {
        if !visited.insert(pcs.clone()) {
            continue;
        }
        if visited.len() > max_states {
            return ExploreOutcome::Truncated {
                states: visited.len(),
            };
        }
        let mut any_enabled = false;
        let mut blocked = Vec::new();
        for (rank, pc) in pcs.iter().enumerate() {
            if *pc >= lens.get(rank).copied().unwrap_or(0) {
                continue; // rank finished
            }
            match enables
                .get(rank)
                .and_then(|ops| ops.get(*pc))
                .map(|e| enabled(e, &pcs))
            {
                Some(Ok(())) => {
                    any_enabled = true;
                    let mut next = pcs.clone();
                    if let Some(slot) = next.get_mut(rank) {
                        *slot += 1;
                    }
                    stack.push(next);
                }
                Some(Err(why)) => blocked.push((rank, why)),
                None => blocked.push((rank, "op index out of schedule".to_string())),
            }
        }
        if !any_enabled && !blocked.is_empty() {
            return ExploreOutcome::Deadlock { pcs, blocked };
        }
    }
    ExploreOutcome::Complete {
        states: visited.len(),
    }
}

/// [`explore_interleavings`] with a state budget sized for CP ≤ 4 ring
/// schedules (schedule lengths up to ~40 ops per rank).
pub fn explore_default(plan: &CommPlan) -> ExploreOutcome {
    explore_interleavings(plan, 5_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_comm::RankPlan;

    fn ring(n: usize, hops: usize) -> CommPlan {
        CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: (0..hops)
                        .map(|_| CommOp::SendRecv {
                            dst: (r + 1) % n,
                            src: (r + n - 1) % n,
                            send_variant: "Kv",
                            recv_variant: "Kv",
                            send_bytes: 16,
                            recv_bytes: 16,
                        })
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn ring_completes_in_every_interleaving() {
        for n in [2, 3, 4] {
            let outcome = explore_default(&ring(n, n - 1));
            assert!(outcome.is_complete(), "{outcome:?}");
        }
    }

    #[test]
    fn state_count_is_full_product_for_two_rank_ring() {
        // With one symmetric hop per rank, either rank can step first (the
        // peer's send is posted at issuance), so all four pc vectors are
        // reachable.
        match explore_default(&ring(2, 1)) {
            ExploreOutcome::Complete { states } => assert_eq!(states, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recv_first_cycle_deadlocks_at_start() {
        let n = 3;
        let plan = CommPlan::from_ranks(
            (0..n)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![
                        CommOp::Recv {
                            src: (r + n - 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                        CommOp::Send {
                            dst: (r + 1) % n,
                            variant: "Kv",
                            bytes: 8,
                        },
                    ],
                })
                .collect(),
        );
        match explore_default(&plan) {
            ExploreOutcome::Deadlock { pcs, blocked } => {
                assert_eq!(pcs, vec![0, 0, 0]);
                assert_eq!(blocked.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_send_is_found_as_deadlock() {
        let mut plan = ring(3, 2);
        plan.ranks[1].ops.pop(); // rank 2 waits for a second message forever
        match explore_default(&plan) {
            ExploreOutcome::Deadlock { blocked, .. } => {
                assert!(blocked
                    .iter()
                    .any(|(r, why)| *r == 2 && why.contains("rank 1")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lopsided_barrier_deadlocks() {
        let plan = CommPlan::from_ranks(vec![
            RankPlan {
                rank: 0,
                ops: vec![CommOp::Barrier],
            },
            RankPlan {
                rank: 1,
                ops: vec![],
            },
        ]);
        match explore_default(&plan) {
            ExploreOutcome::Deadlock { blocked, .. } => {
                assert!(blocked
                    .iter()
                    .any(|(r, why)| *r == 0 && why.contains("barrier")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aligned_barriers_complete() {
        let plan = CommPlan::from_ranks(
            (0..3)
                .map(|r| RankPlan {
                    rank: r,
                    ops: vec![CommOp::Barrier, CommOp::Barrier],
                })
                .collect(),
        );
        assert!(explore_default(&plan).is_complete());
    }

    #[test]
    fn tiny_state_budget_truncates() {
        match explore_interleavings(&ring(4, 3), 5) {
            ExploreOutcome::Truncated { states } => assert!(states > 5),
            other => panic!("{other:?}"),
        }
    }
}
