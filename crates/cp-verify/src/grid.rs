//! The (T, P, varseq) configuration grid of real ring schedules.
//!
//! The checker's subject matter is the schedules the engine actually runs,
//! so this module builds [`CommPlan`]s through the *production* builders in
//! `cp_core::schedule` — pass-KV prefill, pass-Q prefill, batched pass-Q
//! decode, and the all-gather pass-KV baseline — over a grid of
//! tokens-per-rank, decode-slot counts, and sequence-length skew
//! (`varseq`). Inputs are zero tensors: plans depend only on shapes, never
//! on values.

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{CommPlan, Topology};
use cp_core::schedule::{
    all_gather_pass_kv_plan, decode_bidi_plan, decode_plan, pass_kv_bidi_plan,
    pass_kv_chunked_plan, pass_kv_plan, pass_kv_plan_on, pass_kv_quant_bidi_plan,
    pass_kv_quant_plan_on, pass_q_bidi_plan, pass_q_plan, pass_q_plan_on, RingLayout,
};
use cp_core::{CoreError, DecodeSlot, LocalSeq};
use cp_tensor::Tensor;

/// One grid point: a named, real schedule to verify.
#[derive(Debug, Clone)]
pub struct GridCase {
    /// Human-readable case id, e.g. `cp4/pass_q/t3/varseq`.
    pub name: String,
    /// The declared schedule for this case.
    pub plan: CommPlan,
}

/// Attention geometry used for every grid case. Plans scale linearly in
/// head counts, so a small GQA shape exercises the same schedule structure
/// as a production one.
pub(crate) fn grid_params() -> Result<AttentionParams, CoreError> {
    let shape = GqaShape::new(2, 1, 4).map_err(CoreError::from)?;
    Ok(AttentionParams::for_shape(shape))
}

/// Builds each rank's fused-batch prefill input. With `varseq`, ranks
/// alternate between `t_base` and `t_base + 1` query tokens while the KV
/// shard stays padded to the common maximum (the §3.5.2 invariant that
/// keeps circulating KV messages equal-sized).
pub(crate) fn grid_locals(
    cp: usize,
    t_base: usize,
    varseq: bool,
    shape: GqaShape,
) -> Vec<Vec<LocalSeq>> {
    let kv_len = t_base + usize::from(varseq);
    let mut start = 0usize;
    (0..cp)
        .map(|r| {
            let t = if varseq { t_base + r % 2 } else { t_base };
            let q_pos: Vec<usize> = (start..start + t).collect();
            let kv_pos: Vec<usize> = (start..start + kv_len).collect();
            start += kv_len;
            vec![LocalSeq {
                q: Tensor::zeros(&[t, shape.n_heads(), shape.head_dim()]),
                q_pos,
                k: Tensor::zeros(&[kv_len, shape.n_kv_heads(), shape.head_dim()]),
                v: Tensor::zeros(&[kv_len, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos,
            }]
        })
        .collect()
}

/// Builds each rank's decode slot vector. With `varseq`, some slots are
/// `None` padding (ranks with no active decode in that position), which is
/// how the batched decode schedule handles ragged batches.
pub(crate) fn grid_slots(
    cp: usize,
    slots: usize,
    varseq: bool,
    shape: GqaShape,
) -> Vec<Vec<Option<DecodeSlot>>> {
    (0..cp)
        .map(|r| {
            (0..slots)
                .map(|s| {
                    if varseq && (r + s) % 2 == 1 {
                        None
                    } else {
                        Some(DecodeSlot {
                            bid: s,
                            q: Tensor::zeros(&[1, shape.n_heads(), shape.head_dim()]),
                            pos: 8 * cp + s,
                        })
                    }
                })
                .collect()
        })
        .collect()
}

/// Hierarchical (nodes × ranks-per-node) factorizations of `cp` with at
/// least two nodes and two ranks per node — the layouts the topology-aware
/// schedules can actually use. Primes get none (hier degenerates to flat).
pub(crate) fn hier_topos(cp: usize) -> Vec<Topology> {
    (2..cp)
        .filter(|nodes| cp.is_multiple_of(*nodes) && cp / nodes >= 2)
        .map(|nodes| Topology::new(nodes, cp / nodes))
        .collect()
}

/// Builds every grid case for one CP degree: the cross product of
/// algorithm × schedule family (uni/bidi × flat/hier, plus the chunked
/// pipelined ring) × tokens-per-rank (or slots) × uniform/varseq.
///
/// # Errors
///
/// Propagates [`CoreError`] from the production plan builders (only
/// possible for degenerate configurations, which the grid avoids).
pub fn grid_cases(cp: usize) -> Result<Vec<GridCase>, CoreError> {
    let params = grid_params()?;
    let shape = params.shape;
    let mut cases = Vec::new();
    for &t in &[1usize, 3] {
        for &varseq in &[false, true] {
            if varseq && cp < 2 {
                continue;
            }
            let tag = if varseq { "varseq" } else { "uniform" };
            let locals = grid_locals(cp, t, varseq, shape);
            cases.push(GridCase {
                name: format!("cp{cp}/pass_kv/t{t}/{tag}"),
                plan: pass_kv_plan(&locals)?,
            });
            cases.push(GridCase {
                name: format!("cp{cp}/pass_q/t{t}/{tag}"),
                plan: pass_q_plan(&params, &locals)?,
            });
            cases.push(GridCase {
                name: format!("cp{cp}/all_gather/t{t}/{tag}"),
                plan: all_gather_pass_kv_plan(&locals)?,
            });
            // Compressed pass-KV families ride a `quant_kv` prefix of
            // their own: their whole point is moving *fewer* bytes than
            // the f32 `pass_kv` base, so they must not pattern-match into
            // the volume-preservation law below.
            cases.push(GridCase {
                name: format!("cp{cp}/quant_kv/t{t}/{tag}"),
                plan: pass_kv_quant_plan_on(&locals, RingLayout::Flat)?,
            });
            if cp >= 2 {
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_kv_bidi/t{t}/{tag}"),
                    plan: pass_kv_bidi_plan(&locals, RingLayout::Flat)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_q_bidi/t{t}/{tag}"),
                    plan: pass_q_bidi_plan(&params, &locals, RingLayout::Flat)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_kv_chunked/t{t}/{tag}"),
                    plan: pass_kv_chunked_plan(&locals)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/quant_kv_bidi/t{t}/{tag}"),
                    plan: pass_kv_quant_bidi_plan(&locals, RingLayout::Flat)?,
                });
            }
            for topo in hier_topos(cp) {
                let hier = format!("hier{}x{}", topo.nodes, topo.ranks_per_node);
                let layout = RingLayout::Hier(topo);
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_kv_{hier}/t{t}/{tag}"),
                    plan: pass_kv_plan_on(&locals, layout)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_q_{hier}/t{t}/{tag}"),
                    plan: pass_q_plan_on(&params, &locals, layout)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_kv_bidi_{hier}/t{t}/{tag}"),
                    plan: pass_kv_bidi_plan(&locals, layout)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/pass_q_bidi_{hier}/t{t}/{tag}"),
                    plan: pass_q_bidi_plan(&params, &locals, layout)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/quant_kv_{hier}/t{t}/{tag}"),
                    plan: pass_kv_quant_plan_on(&locals, layout)?,
                });
                cases.push(GridCase {
                    name: format!("cp{cp}/quant_kv_bidi_{hier}/t{t}/{tag}"),
                    plan: pass_kv_quant_bidi_plan(&locals, layout)?,
                });
            }
        }
    }
    for &slots in &[1usize, 3] {
        for &varseq in &[false, true] {
            let tag = if varseq { "ragged" } else { "full" };
            let decode_slots = grid_slots(cp, slots, varseq, shape);
            cases.push(GridCase {
                name: format!("cp{cp}/decode/p{slots}/{tag}"),
                plan: decode_plan(&params, &decode_slots)?,
            });
            if cp >= 2 {
                cases.push(GridCase {
                    name: format!("cp{cp}/decode_bidi/p{slots}/{tag}"),
                    plan: decode_bidi_plan(&params, &decode_slots)?,
                });
            }
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_plan;
    use crate::explore::explore_default;

    #[test]
    fn grid_covers_all_algorithms() {
        let cases = grid_cases(4).unwrap();
        for alg in [
            "pass_kv/",
            "pass_q/",
            "decode/",
            "all_gather/",
            "pass_kv_bidi/",
            "pass_q_bidi/",
            "pass_kv_chunked/",
            "pass_kv_hier2x2/",
            "pass_q_hier2x2/",
            "pass_kv_bidi_hier2x2/",
            "pass_q_bidi_hier2x2/",
            "decode_bidi/",
            "quant_kv/",
            "quant_kv_bidi/",
            "quant_kv_hier2x2/",
            "quant_kv_bidi_hier2x2/",
        ] {
            assert!(cases.iter().any(|c| c.name.contains(alg)), "missing {alg}");
        }
        assert!(cases.len() >= 16);
    }

    #[test]
    fn hier_factorizations_cover_composite_worlds() {
        assert!(hier_topos(2).is_empty());
        assert!(hier_topos(3).is_empty());
        assert!(hier_topos(5).is_empty());
        let t4: Vec<_> = hier_topos(4)
            .iter()
            .map(|t| (t.nodes, t.ranks_per_node))
            .collect();
        assert_eq!(t4, vec![(2, 2)]);
        let t6: Vec<_> = hier_topos(6)
            .iter()
            .map(|t| (t.nodes, t.ranks_per_node))
            .collect();
        assert_eq!(t6, vec![(2, 3), (3, 2)]);
    }

    #[test]
    fn all_gather_baseline_moves_the_ring_volume() {
        // §3.5.2: the baseline moves exactly the ring's bytes, just all at
        // once; the grid keeps both so the checker sees the trade-off pair.
        for cp in [2, 3, 4, 5, 8] {
            let cases = grid_cases(cp).unwrap();
            for case in &cases {
                let Some(rest) = case.name.strip_prefix(&format!("cp{cp}/all_gather/")) else {
                    continue;
                };
                let ring = cases
                    .iter()
                    .find(|c| c.name == format!("cp{cp}/pass_kv/{rest}"))
                    .expect("matching pass_kv case");
                assert_eq!(
                    case.plan.predicted_traffic().all_gather.bytes,
                    ring.plan.predicted_traffic().send_recv.bytes,
                    "{}",
                    case.name
                );
            }
        }
    }

    #[test]
    fn every_grid_schedule_is_clean_across_cp_degrees() {
        // Odd and non-power-of-two worlds (3, 5) included: rank-rotation
        // off-by-ones that cancel on even rings show up here.
        for cp in [2, 3, 4, 5, 8] {
            for case in grid_cases(cp).unwrap() {
                let report = check_plan(&case.plan);
                assert!(report.is_clean(), "{}: {:?}", case.name, report.violations);
            }
        }
    }

    #[test]
    fn explorer_agrees_with_checker_on_small_worlds() {
        for cp in [2, 3, 4] {
            for case in grid_cases(cp).unwrap() {
                let outcome = explore_default(&case.plan);
                assert!(outcome.is_complete(), "{}: {:?}", case.name, outcome);
            }
        }
    }

    #[test]
    fn pass_q_return_hop_is_double_buffered_point_to_point() {
        // The pass-Q return permutation is eager lone Sends (one per
        // visited origin — two per origin for the split bidirectional
        // halves — interleaved with the ring hops) plus trailing Recvs —
        // never an exposed All2All — and sent bytes mirror received bytes
        // across the world.
        for cp in [2, 3, 4, 5, 8] {
            for case in grid_cases(cp).unwrap() {
                if !case.name.contains("pass_q") {
                    continue;
                }
                let halves = if case.name.contains("bidi") { 2 } else { 1 };
                let mut sends = 0usize;
                let mut recvs = 0usize;
                for rp in &case.plan.ranks {
                    for op in &rp.ops {
                        match op {
                            cp_comm::CommOp::Send { variant, .. } => {
                                assert_eq!(*variant, "Out", "{}", case.name);
                                sends += 1;
                            }
                            cp_comm::CommOp::Recv { variant, .. } => {
                                assert_eq!(*variant, "Out", "{}", case.name);
                                recvs += 1;
                            }
                            cp_comm::CommOp::AllToAll { .. } => {
                                panic!("{}: exposed All2All in pass-Q plan", case.name)
                            }
                            _ => {}
                        }
                    }
                }
                assert_eq!(sends, halves * cp * (cp - 1), "{}", case.name);
                assert_eq!(recvs, halves * cp * (cp - 1), "{}", case.name);
            }
        }
    }

    #[test]
    fn varseq_kv_messages_stay_equal_sized() {
        // §3.5.2: KV shards are padded to a common length, so circulating
        // KV messages must all be the same size even with skewed queries.
        // The split families (bidi, chunked) carry at most two sizes — the
        // ceil and floor halves of the common payload.
        for case in grid_cases(4).unwrap() {
            if !case.name.contains("pass_kv") || case.name.contains("all_gather") {
                continue;
            }
            let split = case.name.contains("bidi") || case.name.contains("chunked");
            let mut sizes = std::collections::BTreeSet::new();
            for rp in &case.plan.ranks {
                for op in &rp.ops {
                    if let cp_comm::CommOp::SendRecv { send_bytes, .. } = op {
                        sizes.insert(*send_bytes);
                    }
                }
            }
            if split {
                assert!(sizes.len() <= 2, "{}: {sizes:?}", case.name);
            } else {
                assert_eq!(sizes.len(), 1, "{}: {sizes:?}", case.name);
            }
        }
    }

    #[test]
    fn quant_families_halve_the_ring_volume_layout_free() {
        // Compressed hops beat the f32 base — exactly 2x at the grid's
        // head_dim 4 (`2·(d+4)` vs `2·d·4` bytes per (token, kv-head)
        // block) — and, like the f32 families, splitting (bidi) or
        // re-routing (hier) the codes never changes the total volume.
        for cp in [2, 3, 4, 5, 8] {
            let cases = grid_cases(cp).unwrap();
            for case in &cases {
                let Some((alg, rest)) = case
                    .name
                    .strip_prefix(&format!("cp{cp}/"))
                    .and_then(|s| s.split_once('/'))
                else {
                    continue;
                };
                if !alg.starts_with("quant_kv") {
                    continue;
                }
                let find = |name: &str| {
                    cases
                        .iter()
                        .find(|c| c.name == format!("cp{cp}/{name}/{rest}"))
                        .expect("matching base case")
                        .plan
                        .predicted_traffic()
                        .send_recv
                        .bytes
                };
                let got = case.plan.predicted_traffic().send_recv.bytes;
                assert_eq!(got, find("quant_kv"), "{}", case.name);
                assert_eq!(2 * got, find("pass_kv"), "{}", case.name);
            }
        }
    }

    #[test]
    fn every_family_moves_the_unidirectional_ring_volume() {
        // Splitting the payload (bidi), cutting it into pipelined chunks,
        // or re-routing it hierarchically changes *when* bytes move and on
        // which links — never how many: each family's total predicted
        // traffic must equal its flat unidirectional base schedule's.
        for cp in [2, 3, 4, 5, 8] {
            let cases = grid_cases(cp).unwrap();
            for case in &cases {
                let Some((alg, rest)) = case
                    .name
                    .strip_prefix(&format!("cp{cp}/"))
                    .and_then(|s| s.split_once('/'))
                    .map(|(alg, rest)| (alg.to_string(), rest.to_string()))
                else {
                    continue;
                };
                let base_alg = match alg.as_str() {
                    a if a.starts_with("pass_kv_") => "pass_kv",
                    a if a.starts_with("pass_q_") => "pass_q",
                    a if a.starts_with("decode_") => "decode",
                    _ => continue,
                };
                let base = cases
                    .iter()
                    .find(|c| c.name == format!("cp{cp}/{base_alg}/{rest}"))
                    .expect("matching base case");
                let got = case.plan.predicted_traffic();
                let want = base.plan.predicted_traffic();
                assert_eq!(got.send_recv.bytes, want.send_recv.bytes, "{}", case.name);
                assert_eq!(got.all_to_all.bytes, want.all_to_all.bytes, "{}", case.name);
            }
        }
    }
}
