//! `cp-verify` — offline model checker for the ring communication
//! schedules declared by `cp_core::schedule`.
//!
//! The ring algorithms (paper Alg. 2–4) follow fixed, data-independent
//! communication schedules. `cp-core` declares them as [`cp_comm::CommPlan`]
//! data; this crate *checks* those declarations without running any rank:
//!
//! * [`check_plan`] — structural validation, FIFO send/recv matching
//!   (variant + wire-byte agreement per matched pair), collective
//!   agreement, deadlock-freedom over **all** interleavings via wait-for
//!   graph analysis, and wire-byte conservation. Sound and complete for
//!   the fabric's execution model (a Kahn process network with buffered
//!   sends), so it scales to any CP degree.
//! * [`explore_interleavings`] — brute-force enumeration of every
//!   reachable program-counter state, tractable for CP ≤ 4. Used to
//!   cross-validate the graph criterion: both engines must agree.
//! * [`grid_cases`] — the (T, P, varseq) grid of *real* schedules built
//!   through the production plan builders, for CP ∈ {2, 3, 4, 5, 8}
//!   (odd and non-power-of-two worlds included, so rank-rotation
//!   off-by-ones on odd rings are exercised).
//! * [`apply_mutation`] — seeded bugs (deadlock, wrong variant, dropped
//!   hop, short bytes) that both this checker and the runtime
//!   `cp_comm::CheckedFabric` sanitizer must catch.
//! * [`check_template`] — the **symbolic** layer: each schedule family
//!   ([`SymTemplate`]) declared once over symbolic `(W, byte tables)`,
//!   with the structural laws proven on the template itself, so one
//!   check covers every instantiation. [`verify_symbolic`] cross-grounds
//!   every template against the production builders for `W ∈ 2..=16`,
//!   and [`apply_template_mutation`] seeds template-level bugs that the
//!   symbolic checker must reject.
//!
//! The `cp-verify` binary runs both layers as a CI smoke check:
//!
//! ```text
//! cargo run -p cp-verify            # CP ∈ {2, 3, 4, 5, 8}
//! cargo run -p cp-verify -- --cp 2 --cp 4
//! cargo run -p cp-verify -- --symbolic --mutations
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod explore;
mod grid;
mod mutate;
mod template;

pub use check::{check_plan, CheckReport, OpRef, Violation};
pub use explore::{explore_default, explore_interleavings, ExploreOutcome};
pub use grid::{grid_cases, GridCase};
pub use mutate::{apply_mutation, Mutation};
pub use template::{
    all_gather_baseline_template, all_templates, apply_template_mutation, check_template,
    decode_bidi_template, decode_template, forward_template, pass_kv_bidi_hier_template,
    pass_kv_bidi_template, pass_kv_hier_template, pass_kv_template, pass_q_bidi_template,
    pass_q_hier_template, pass_q_template, template_cases, tp_all_gather_template,
    tp_all_reduce_template, ByteExpr, Guard, GuardedOp, Ix, PathDir, PeerExpr, SymCollective,
    SymOp, SymSegment, SymTemplate, SymViolation, TemplateCase, TemplateMutation,
};

/// CP degrees exhaustively explorable by [`explore_interleavings`] within
/// the default state budget.
pub const EXPLORABLE_CP: usize = 4;

/// Verifies every grid schedule for one CP degree with both engines.
///
/// Returns `(cases_checked, failures)` where each failure pairs the case
/// name with a description. The explorer runs only for `cp <=
/// EXPLORABLE_CP`; the graph checker runs always.
pub fn verify_grid(cp: usize) -> Result<(usize, Vec<(String, String)>), cp_core::CoreError> {
    let cases = grid_cases(cp)?;
    let mut failures = Vec::new();
    for case in &cases {
        let report = check_plan(&case.plan);
        for v in &report.violations {
            failures.push((case.name.clone(), v.to_string()));
        }
        if cp <= EXPLORABLE_CP {
            match explore_default(&case.plan) {
                ExploreOutcome::Complete { .. } => {}
                ExploreOutcome::Deadlock { pcs, blocked } => failures.push((
                    case.name.clone(),
                    format!("explorer found deadlock at pcs {pcs:?}: {blocked:?}"),
                )),
                ExploreOutcome::Truncated { states } => failures.push((
                    case.name.clone(),
                    format!("explorer truncated after {states} states"),
                )),
            }
        }
    }
    Ok((cases.len(), failures))
}

/// Runs the symbolic layer end to end: proves the template laws on every
/// declared family once, then cross-validates by grounding each template
/// at every `W ∈ 2..=max_world` — grounding must reproduce the production
/// builder's plan bitwise, pass the concrete graph checker (and the
/// exhaustive explorer for `W <= EXPLORABLE_CP`), and match the symbolic
/// closed-form traffic prediction.
///
/// Returns `(checks_run, failures)`.
///
/// # Errors
///
/// Propagates [`cp_core::CoreError`] from the production plan builders.
pub fn verify_symbolic(
    max_world: usize,
) -> Result<(usize, Vec<(String, String)>), cp_core::CoreError> {
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for t in all_templates() {
        checked += 1;
        for v in check_template(&t) {
            failures.push((t.name.clone(), format!("symbolic law violation: {v}")));
        }
    }
    for world in 2..=max_world {
        for case in template_cases(world)? {
            checked += 1;
            let grounded = match case.template.ground(world, &case.tables) {
                Ok(p) => p,
                Err(e) => {
                    failures.push((case.name.clone(), format!("grounding failed: {e}")));
                    continue;
                }
            };
            if grounded != case.production {
                failures.push((
                    case.name.clone(),
                    "grounded template disagrees with production builder".to_string(),
                ));
            }
            let report = check_plan(&grounded);
            for v in &report.violations {
                failures.push((case.name.clone(), v.to_string()));
            }
            if world <= EXPLORABLE_CP && !explore_default(&grounded).is_complete() {
                failures.push((
                    case.name.clone(),
                    "explorer did not complete on grounded instance".to_string(),
                ));
            }
            match case.template.symbolic_traffic(world, &case.tables) {
                Ok(sym) if sym == grounded.predicted_traffic() => {}
                Ok(_) => failures.push((
                    case.name.clone(),
                    "symbolic traffic diverges from grounded prediction".to_string(),
                )),
                Err(e) => failures.push((case.name.clone(), format!("symbolic traffic: {e}"))),
            }
        }
    }
    Ok((checked, failures))
}

/// Self-test for the symbolic layer: seeds every [`TemplateMutation`]
/// into every declared template (skipping templates with no site for a
/// mutation) and confirms [`check_template`] rejects each mutant.
/// Returns `(mutants_checked, escapes)`.
pub fn verify_template_mutations() -> (usize, Vec<String>) {
    let mut checked = 0usize;
    let mut escapes = Vec::new();
    for t in all_templates() {
        for mutation in TemplateMutation::seeds() {
            let Some(mutant) = apply_template_mutation(&t, mutation) else {
                continue;
            };
            checked += 1;
            if check_template(&mutant).is_empty() {
                escapes.push(format!("{} survived {}", t.name, mutation.tag()));
            }
        }
    }
    (checked, escapes)
}

/// Self-test: seeds every mutation into every grid schedule and confirms
/// the checker catches each one. Returns `(mutants_checked, escapes)`.
pub fn verify_mutations(cp: usize) -> Result<(usize, Vec<String>), cp_core::CoreError> {
    let cases = grid_cases(cp)?;
    let mut checked = 0usize;
    let mut escapes = Vec::new();
    for case in &cases {
        for mutation in Mutation::seeds(cp.saturating_sub(1)) {
            let Some(mutated) = apply_mutation(&case.plan, mutation) else {
                continue;
            };
            checked += 1;
            if check_plan(&mutated).is_clean() {
                escapes.push(format!("{} survived {}", case.name, mutation.tag()));
            }
        }
    }
    Ok((checked, escapes))
}
