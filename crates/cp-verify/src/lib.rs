//! `cp-verify` — offline model checker for the ring communication
//! schedules declared by `cp_core::schedule`.
//!
//! The ring algorithms (paper Alg. 2–4) follow fixed, data-independent
//! communication schedules. `cp-core` declares them as [`cp_comm::CommPlan`]
//! data; this crate *checks* those declarations without running any rank:
//!
//! * [`check_plan`] — structural validation, FIFO send/recv matching
//!   (variant + wire-byte agreement per matched pair), collective
//!   agreement, deadlock-freedom over **all** interleavings via wait-for
//!   graph analysis, and wire-byte conservation. Sound and complete for
//!   the fabric's execution model (a Kahn process network with buffered
//!   sends), so it scales to any CP degree.
//! * [`explore_interleavings`] — brute-force enumeration of every
//!   reachable program-counter state, tractable for CP ≤ 4. Used to
//!   cross-validate the graph criterion: both engines must agree.
//! * [`grid_cases`] — the (T, P, varseq) grid of *real* schedules built
//!   through the production plan builders, for CP ∈ {2, 4, 8}.
//! * [`apply_mutation`] — seeded bugs (deadlock, wrong variant, dropped
//!   hop, short bytes) that both this checker and the runtime
//!   `cp_comm::CheckedFabric` sanitizer must catch.
//!
//! The `cp-verify` binary runs the grid as a CI smoke check:
//!
//! ```text
//! cargo run -p cp-verify            # CP ∈ {2, 4, 8}
//! cargo run -p cp-verify -- --cp 2 --cp 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod explore;
mod grid;
mod mutate;

pub use check::{check_plan, CheckReport, OpRef, Violation};
pub use explore::{explore_default, explore_interleavings, ExploreOutcome};
pub use grid::{grid_cases, GridCase};
pub use mutate::{apply_mutation, Mutation};

/// CP degrees exhaustively explorable by [`explore_interleavings`] within
/// the default state budget.
pub const EXPLORABLE_CP: usize = 4;

/// Verifies every grid schedule for one CP degree with both engines.
///
/// Returns `(cases_checked, failures)` where each failure pairs the case
/// name with a description. The explorer runs only for `cp <=
/// EXPLORABLE_CP`; the graph checker runs always.
pub fn verify_grid(cp: usize) -> Result<(usize, Vec<(String, String)>), cp_core::CoreError> {
    let cases = grid_cases(cp)?;
    let mut failures = Vec::new();
    for case in &cases {
        let report = check_plan(&case.plan);
        for v in &report.violations {
            failures.push((case.name.clone(), v.to_string()));
        }
        if cp <= EXPLORABLE_CP {
            match explore_default(&case.plan) {
                ExploreOutcome::Complete { .. } => {}
                ExploreOutcome::Deadlock { pcs, blocked } => failures.push((
                    case.name.clone(),
                    format!("explorer found deadlock at pcs {pcs:?}: {blocked:?}"),
                )),
                ExploreOutcome::Truncated { states } => failures.push((
                    case.name.clone(),
                    format!("explorer truncated after {states} states"),
                )),
            }
        }
    }
    Ok((cases.len(), failures))
}

/// Self-test: seeds every mutation into every grid schedule and confirms
/// the checker catches each one. Returns `(mutants_checked, escapes)`.
pub fn verify_mutations(cp: usize) -> Result<(usize, Vec<String>), cp_core::CoreError> {
    let cases = grid_cases(cp)?;
    let mut checked = 0usize;
    let mut escapes = Vec::new();
    for case in &cases {
        for mutation in Mutation::seeds(cp.saturating_sub(1)) {
            let Some(mutated) = apply_mutation(&case.plan, mutation) else {
                continue;
            };
            checked += 1;
            if check_plan(&mutated).is_clean() {
                escapes.push(format!("{} survived {}", case.name, mutation.tag()));
            }
        }
    }
    Ok((checked, escapes))
}
