//! CI smoke binary: model-check the real ring schedules.
//!
//! ```text
//! cp-verify                 # CP ∈ {2, 3, 4, 5, 8}
//! cp-verify --cp 2 --cp 4   # explicit degrees
//! cp-verify --mutations     # also run the mutation self-tests
//! cp-verify --symbolic      # also prove the symbolic templates
//! ```
//!
//! `--symbolic` proves the template laws for every declared schedule
//! family and cross-grounds each against the production builders for
//! every world in 2..=16; with `--mutations` it additionally seeds
//! template-level bugs that the symbolic checker must reject.
//!
//! Exits non-zero (and prints every violation) if any schedule fails a
//! check or any seeded mutation escapes.

use std::process::ExitCode;

use cp_verify::{
    verify_grid, verify_mutations, verify_symbolic, verify_template_mutations, EXPLORABLE_CP,
};

/// Largest world the symbolic layer is spot-grounded at; small worlds
/// (where the symbolic offset arguments degenerate) are covered
/// exhaustively below `EXPLORABLE_CP`.
const SYMBOLIC_MAX_WORLD: usize = 16;

struct Args {
    cps: Vec<usize>,
    mutations: bool,
    symbolic: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cps = Vec::new();
    let mut mutations = false;
    let mut symbolic = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--cp" => {
                let value = argv.next().ok_or("--cp needs a value")?;
                let cp: usize = value
                    .parse()
                    .map_err(|_| format!("--cp {value}: not a number"))?;
                if cp == 0 {
                    return Err("--cp must be >= 1".to_string());
                }
                cps.push(cp);
            }
            "--mutations" => mutations = true,
            "--symbolic" => symbolic = true,
            "--help" | "-h" => {
                return Err("usage: cp-verify [--cp N]... [--mutations] [--symbolic]".to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if cps.is_empty() {
        cps = vec![2, 3, 4, 5, 8];
    }
    Ok(Args {
        cps,
        mutations,
        symbolic,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for &cp in &args.cps {
        match verify_grid(cp) {
            Ok((cases, failures)) => {
                if failures.is_empty() {
                    let engines = if cp <= EXPLORABLE_CP {
                        "graph + exhaustive interleavings"
                    } else {
                        "graph"
                    };
                    println!("cp={cp}: {cases} schedules clean ({engines})");
                } else {
                    failed = true;
                    for (case, detail) in failures {
                        eprintln!("cp={cp}: FAIL {case}: {detail}");
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("cp={cp}: could not build grid: {e}");
            }
        }
        if args.mutations {
            match verify_mutations(cp) {
                Ok((checked, escapes)) => {
                    if escapes.is_empty() {
                        println!("cp={cp}: {checked} seeded mutations all caught");
                    } else {
                        failed = true;
                        for escape in escapes {
                            eprintln!("cp={cp}: MUTATION ESCAPE {escape}");
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    eprintln!("cp={cp}: mutation self-test failed to build: {e}");
                }
            }
        }
    }

    if args.symbolic {
        match verify_symbolic(SYMBOLIC_MAX_WORLD) {
            Ok((checked, failures)) => {
                if failures.is_empty() {
                    println!(
                        "symbolic: {checked} template checks clean (laws proven once, grounded \
                         for W in 2..={SYMBOLIC_MAX_WORLD})"
                    );
                } else {
                    failed = true;
                    for (name, detail) in failures {
                        eprintln!("symbolic: FAIL {name}: {detail}");
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("symbolic: could not build template cases: {e}");
            }
        }
        if args.mutations {
            let (checked, escapes) = verify_template_mutations();
            if escapes.is_empty() {
                println!("symbolic: {checked} seeded template mutations all caught");
            } else {
                failed = true;
                for escape in escapes {
                    eprintln!("symbolic: TEMPLATE MUTATION ESCAPE {escape}");
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
