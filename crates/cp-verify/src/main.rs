//! CI smoke binary: model-check the real ring schedules.
//!
//! ```text
//! cp-verify                 # CP ∈ {2, 4, 8}
//! cp-verify --cp 2 --cp 4   # explicit degrees
//! cp-verify --mutations     # also run the mutation self-test
//! ```
//!
//! Exits non-zero (and prints every violation) if any schedule fails a
//! check or any seeded mutation escapes.

use std::process::ExitCode;

use cp_verify::{verify_grid, verify_mutations, EXPLORABLE_CP};

struct Args {
    cps: Vec<usize>,
    mutations: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut cps = Vec::new();
    let mut mutations = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--cp" => {
                let value = argv.next().ok_or("--cp needs a value")?;
                let cp: usize = value
                    .parse()
                    .map_err(|_| format!("--cp {value}: not a number"))?;
                if cp == 0 {
                    return Err("--cp must be >= 1".to_string());
                }
                cps.push(cp);
            }
            "--mutations" => mutations = true,
            "--help" | "-h" => return Err("usage: cp-verify [--cp N]... [--mutations]".to_string()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if cps.is_empty() {
        cps = vec![2, 4, 8];
    }
    Ok(Args { cps, mutations })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for &cp in &args.cps {
        match verify_grid(cp) {
            Ok((cases, failures)) => {
                if failures.is_empty() {
                    let engines = if cp <= EXPLORABLE_CP {
                        "graph + exhaustive interleavings"
                    } else {
                        "graph"
                    };
                    println!("cp={cp}: {cases} schedules clean ({engines})");
                } else {
                    failed = true;
                    for (case, detail) in failures {
                        eprintln!("cp={cp}: FAIL {case}: {detail}");
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("cp={cp}: could not build grid: {e}");
            }
        }
        if args.mutations {
            match verify_mutations(cp) {
                Ok((checked, escapes)) => {
                    if escapes.is_empty() {
                        println!("cp={cp}: {checked} seeded mutations all caught");
                    } else {
                        failed = true;
                        for escape in escapes {
                            eprintln!("cp={cp}: MUTATION ESCAPE {escape}");
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    eprintln!("cp={cp}: mutation self-test failed to build: {e}");
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
