//! Seeded schedule mutations for validating the checker and the runtime
//! sanitizer.
//!
//! Each [`Mutation`] injects one realistic communication bug into a clean
//! plan. The test suite asserts that every mutation is caught **twice**:
//! offline by [`crate::check_plan`] / [`crate::explore_interleavings`],
//! and at runtime by `cp_comm::CheckedFabric` when live traffic is held
//! against the mutated plan — in both cases naming the offending rank.

use cp_comm::{CommOp, CommPlan};

/// A single seeded communication-schedule bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Every rank's first ring hop is split into a blocking `Recv`
    /// followed by the `Send`: the classic cyclic-wait deadlock that
    /// buffered sends normally prevent.
    RecvBeforeSend,
    /// One rank declares the wrong message variant on its first ring hop
    /// (e.g. `Kv` traffic labelled as another payload kind).
    WrongVariant {
        /// The rank whose declaration is corrupted.
        rank: usize,
    },
    /// One rank drops its final ring hop — an off-by-one in the ring step
    /// count, leaving a dangling send upstream and a starving receive
    /// downstream.
    DropLastHop {
        /// The rank whose schedule loses its last hop.
        rank: usize,
    },
    /// One rank under-declares the wire bytes of its first ring hop,
    /// breaking sent == received conservation.
    ShortBytes {
        /// The rank whose byte count is shrunk.
        rank: usize,
    },
}

impl Mutation {
    /// The four seeded bugs targeting `rank` (where applicable).
    pub fn seeds(rank: usize) -> [Mutation; 4] {
        [
            Mutation::RecvBeforeSend,
            Mutation::WrongVariant { rank },
            Mutation::DropLastHop { rank },
            Mutation::ShortBytes { rank },
        ]
    }

    /// Short tag for reporting, e.g. `recv-before-send`.
    pub fn tag(&self) -> &'static str {
        match self {
            Mutation::RecvBeforeSend => "recv-before-send",
            Mutation::WrongVariant { .. } => "wrong-variant",
            Mutation::DropLastHop { .. } => "drop-last-hop",
            Mutation::ShortBytes { .. } => "short-bytes",
        }
    }

    /// The rank this mutation corrupts, when it targets a single rank.
    pub fn target_rank(&self) -> Option<usize> {
        match self {
            Mutation::RecvBeforeSend => None,
            Mutation::WrongVariant { rank }
            | Mutation::DropLastHop { rank }
            | Mutation::ShortBytes { rank } => Some(*rank),
        }
    }
}

/// Index of the first `SendRecv` op in a rank's schedule.
fn first_hop(ops: &[CommOp]) -> Option<usize> {
    ops.iter()
        .position(|op| matches!(op, CommOp::SendRecv { .. }))
}

/// Index of the last `SendRecv` op in a rank's schedule.
fn last_hop(ops: &[CommOp]) -> Option<usize> {
    ops.iter()
        .rposition(|op| matches!(op, CommOp::SendRecv { .. }))
}

/// Applies `mutation` to a copy of `plan`. Returns `None` when the plan
/// has no site for the mutation (e.g. a single-rank schedule with no ring
/// hops), so callers can skip degenerate grid points.
pub fn apply_mutation(plan: &CommPlan, mutation: Mutation) -> Option<CommPlan> {
    let mut mutated = plan.clone();
    match mutation {
        Mutation::RecvBeforeSend => {
            // Rewrite every rank, otherwise the surviving buffered sends
            // still unblock the ring.
            let mut rewrote = false;
            for rp in &mut mutated.ranks {
                let Some(i) = first_hop(&rp.ops) else {
                    continue;
                };
                let Some(CommOp::SendRecv {
                    dst,
                    src,
                    send_variant,
                    recv_variant,
                    send_bytes,
                    recv_bytes,
                }) = rp.ops.get(i).cloned()
                else {
                    continue;
                };
                rp.ops.splice(
                    i..=i,
                    [
                        CommOp::Recv {
                            src,
                            variant: recv_variant,
                            bytes: recv_bytes,
                        },
                        CommOp::Send {
                            dst,
                            variant: send_variant,
                            bytes: send_bytes,
                        },
                    ],
                );
                rewrote = true;
            }
            rewrote.then_some(mutated)
        }
        Mutation::WrongVariant { rank } => {
            let rp = mutated.ranks.get_mut(rank)?;
            let i = first_hop(&rp.ops)?;
            if let Some(CommOp::SendRecv { send_variant, .. }) = rp.ops.get_mut(i) {
                *send_variant = "Corrupt";
            }
            Some(mutated)
        }
        Mutation::DropLastHop { rank } => {
            let rp = mutated.ranks.get_mut(rank)?;
            let i = last_hop(&rp.ops)?;
            rp.ops.remove(i);
            Some(mutated)
        }
        Mutation::ShortBytes { rank } => {
            // A zero-byte hop (all-padding decode slot) has no byte to
            // shave; report "no site" rather than a no-op mutation.
            let rp = mutated.ranks.get_mut(rank)?;
            let i = rp.ops.iter().position(
                |op| matches!(op, CommOp::SendRecv { send_bytes, .. } if *send_bytes > 0),
            )?;
            if let Some(CommOp::SendRecv { send_bytes, .. }) = rp.ops.get_mut(i) {
                *send_bytes -= 1;
            }
            Some(mutated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_plan, Violation};
    use crate::explore::{explore_default, ExploreOutcome};
    use crate::grid::grid_cases;

    /// Every seeded mutation of every ring-bearing grid schedule must be
    /// caught by the model checker, with the target rank named.
    #[test]
    fn checker_catches_every_seeded_mutation() {
        for cp in [2, 3, 4, 5] {
            for case in grid_cases(cp).unwrap() {
                for mutation in Mutation::seeds(1) {
                    let Some(mutated) = apply_mutation(&case.plan, mutation) else {
                        continue;
                    };
                    let report = check_plan(&mutated);
                    assert!(
                        !report.is_clean(),
                        "{} survived {}",
                        case.name,
                        mutation.tag()
                    );
                    if let Some(rank) = mutation.target_rank() {
                        assert!(
                            report
                                .violations
                                .iter()
                                .any(|v| v.offending_ranks().contains(&rank)),
                            "{}: {} violations {:?} do not name rank {rank}",
                            case.name,
                            mutation.tag(),
                            report.violations
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recv_before_send_is_reported_as_deadlock_by_both_engines() {
        for case in grid_cases(3).unwrap() {
            let Some(mutated) = apply_mutation(&case.plan, Mutation::RecvBeforeSend) else {
                continue;
            };
            let report = check_plan(&mutated);
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::Deadlock { .. })),
                "{}: {:?}",
                case.name,
                report.violations
            );
            assert!(
                matches!(explore_default(&mutated), ExploreOutcome::Deadlock { .. }),
                "{}",
                case.name
            );
        }
    }

    #[test]
    fn drop_last_hop_deadlocks_under_exploration() {
        for case in grid_cases(3).unwrap() {
            let Some(mutated) = apply_mutation(&case.plan, Mutation::DropLastHop { rank: 1 })
            else {
                continue;
            };
            match explore_default(&mutated) {
                ExploreOutcome::Deadlock { blocked, .. } => {
                    assert!(!blocked.is_empty(), "{}", case.name);
                }
                other => panic!("{}: {:?}", case.name, other),
            }
        }
    }

    #[test]
    fn short_bytes_breaks_conservation() {
        for case in grid_cases(2).unwrap() {
            let Some(mutated) = apply_mutation(&case.plan, Mutation::ShortBytes { rank: 0 }) else {
                continue;
            };
            let report = check_plan(&mutated);
            assert!(report.violations.iter().any(|v| matches!(
                v,
                Violation::ByteMismatch { .. } | Violation::Conservation { .. }
            )));
        }
    }

    #[test]
    fn mutations_skip_hopless_plans() {
        let params =
            cp_attention::AttentionParams::for_shape(cp_attention::GqaShape::new(2, 1, 4).unwrap());
        let locals = vec![vec![cp_core::LocalSeq {
            q: cp_tensor::Tensor::zeros(&[1, 2, 4]),
            q_pos: vec![0],
            k: cp_tensor::Tensor::zeros(&[1, 1, 4]),
            v: cp_tensor::Tensor::zeros(&[1, 1, 4]),
            kv_pos: vec![0],
        }]];
        let plan = cp_core::schedule::pass_kv_plan(&locals).unwrap();
        let _ = params;
        for mutation in Mutation::seeds(0) {
            assert!(
                apply_mutation(&plan, mutation).is_none(),
                "{}",
                mutation.tag()
            );
        }
    }
}
