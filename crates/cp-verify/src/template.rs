//! Symbolic schedule templates: each ring-algorithm *family* declared once
//! over symbolic parameters, with structural laws checked on the template
//! itself — so one check covers **every** world size and byte table, not
//! one grid instantiation.
//!
//! A [`SymTemplate`] describes a rank-relative schedule: peers are
//! expressions over the executing rank (`Next`, `Prev`, the visiting
//! block's origin), byte counts are expressions over per-origin byte
//! tables (`bytes[origin_at(j)]`, `bytes[self]`), and rounds are guarded
//! by predicates over the symbolic round index `j` and world size `W`.
//! [`check_template`] proves the schedule laws directly on that symbolic
//! form:
//!
//! * **ring-hop law** — every `SendRecv` is a `Next`/`Prev` hop whose
//!   send/recv byte expressions are consecutive origin lookups of one
//!   table with one variant, so FIFO matching holds for all `W`: rank
//!   `r`'s round-`j` receive expression equals rank `r-1`'s round-`j`
//!   send expression by the rotation identity
//!   `origin(r, j+1) = origin(r-1, j)`;
//! * **coverage law** — hops are guarded to run exactly rounds
//!   `0..W-1`, so every origin's block visits every rank exactly once
//!   and the final hop is neither dropped nor wrapped into a self-send;
//! * **scatter/gather law** — eager returns target the visiting origin,
//!   skip round 0 (the origin's own block), carry that origin's byte
//!   entry, and pair with a later ascending gather of the rank's own
//!   entry — the double-buffered pass-Q permutation;
//! * **collective law** — gather-shaped collectives broadcast the
//!   rank's **own** table entry.
//!
//! Deadlock-freedom lifts to the template level: sends are buffered in
//! the fabric's execution model, so a law-conforming template's only
//! blocking dependencies are each round's receive on the predecessor's
//! same-round send — posted *before* the predecessor's own round-`j`
//! receive — and the trailing gather on eager sends all posted before any
//! rank's gather begins. The wait-for graph of any instantiation is
//! therefore acyclic by induction on rounds, for every `W`. The grounded
//! cross-check ([`SymTemplate::ground`] + `check_plan` +
//! `explore_interleavings`) re-verifies this instance-by-instance for
//! small worlds, bounding the soundness of the symbolic argument (offset
//! distinctness degenerates for `W < 4`, where grounding is exhaustive).
//!
//! # Paths: bidirectional and hierarchical families
//!
//! The bidirectional (TokenRing-style) and topology-aware (TASP-style)
//! families generalize the flat forward ring to a pair of counter-rotating
//! [`RingPath`]s. Every op carries a [`PathDir`] selecting which path its
//! peers and origin lookups follow, and a template's
//! [`SymTemplate::ranks_per_node`] selects the path *shape*: `None`
//! grounds over the flat ring, `Some(g)` over the hierarchical ring of
//! `W/g` nodes. The ring-hop law is unchanged — `Next`/`Prev` mean the
//! hop path's send/receive peer, and every path is a Hamiltonian cycle
//! with the same lockstep-FIFO rotation identity — so one symbolic proof
//! covers all four `{uni, bidi} × {flat, hier}` layouts.
//!
//! Grounding applies the same FIFO-safety transform as the production
//! builders: an eager return targeting a peer that is also a hop channel
//! is deferred to the final-round flush point (`defer_return` in
//! `cp_core::schedule`), and the bidirectional trailing gather orders each
//! peer's two `Out` halves by which half that peer hosted first (the
//! τ-rule via [`RingPath::step_of`]). Both transforms are
//! semantics-preserving reorderings of buffered sends, so the symbolic
//! laws are checked on the *declared* order while grounding reproduces
//! the production op order bitwise.
//!
//! [`template_cases`] closes the loop with the production builders in
//! `cp_core::schedule`: grounding each template at concrete `(W, tables)`
//! must reproduce the production [`CommPlan`] **exactly**, and
//! [`SymTemplate::symbolic_traffic`]'s closed-form volume must equal the
//! grounded plan's `predicted_traffic`.

use cp_attention::AttentionParams;
use cp_comm::{CommOp, CommPlan, PredictedTraffic, RankPlan, Topology, Wire};
use cp_core::schedule::{
    all_gather_pass_kv_plan, all_gather_plan, all_reduce_plan, decode_bidi_plan, decode_plan,
    helix_decode_plan, helix_layer_plan, pass_kv_bidi_plan, pass_kv_plan, pass_kv_plan_on,
    pass_kv_quant_bidi_plan, pass_kv_quant_plan_on, pass_q_bidi_plan, pass_q_plan, pass_q_plan_on,
    stacked_plan, tp_only_decode_plan, RingLayout, RingPath,
};
use cp_core::{
    split_slot_vec, CoreError, DecodeSlot, LocalSeq, QuantSeqKv, RingMsg, SeqKv, SeqQ, ELEM_BYTES,
};
use cp_tensor::Tensor;

use crate::grid::{grid_locals, grid_params, grid_slots};

/// A symbolic index into a per-origin byte table, evaluated per
/// `(rank, world, round)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ix {
    /// The executing rank's own entry: `table[r]`.
    SelfRank,
    /// The entry of the block visiting at round `j + offset`:
    /// `table[ring_origin(r, W, j + offset)]`.
    OriginAt(usize),
}

/// A symbolic wire-byte count: one [`Ix`] lookup into one byte table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteExpr {
    /// Index of the byte table in [`SymTemplate::table_names`].
    pub table: usize,
    /// The symbolic lookup.
    pub ix: Ix,
}

/// A symbolic peer rank, evaluated per `(rank, world, round)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerExpr {
    /// The hop path's send peer at the current round — `(r + 1) mod W`
    /// on the flat forward ring.
    Next,
    /// The hop path's receive peer at the current round —
    /// `(r + W - 1) mod W` on the flat forward ring.
    Prev,
    /// The origin of the block visiting this rank at the current round
    /// along the op's path, `path.origin_at(r, j)`.
    VisitingOrigin,
}

/// Which of the template's two counter-rotating paths an op follows.
/// Unidirectional templates use only [`PathDir::Fwd`]; bidirectional ones
/// pair each forward op with a reverse twin over the second half's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathDir {
    /// The forward path (`FlatFwd`/`HierFwd`).
    #[default]
    Fwd,
    /// The reverse path (`FlatRev`/`HierRev`).
    Rev,
}

/// A guard over the symbolic round index `j ∈ 0..W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Runs every round.
    Always,
    /// Runs while `j + margin < W` — `BeforeRound(1)` is the ring-hop
    /// guard selecting exactly rounds `0..W-1`.
    BeforeRound(usize),
    /// Runs every round except `j = 0` (the rank's own block).
    NotFirstRound,
}

/// One symbolic point-to-point operation inside a round.
///
/// There is deliberately no lone symbolic `Recv` in rounds: a receive
/// ordered before its matching send (the classic ring deadlock seed) is
/// *inexpressible* in the template language — hop receives are fused into
/// `SendRecv` and gather receives live in a dedicated trailing segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymOp {
    /// A buffered ring step: send to `dst`, then receive from `src`.
    SendRecv {
        /// Which counter-rotating path the hop travels.
        path: PathDir,
        /// Symbolic destination of the send half.
        dst: PeerExpr,
        /// Symbolic source of the receive half.
        src: PeerExpr,
        /// Variant of the sent message.
        send_variant: &'static str,
        /// Variant of the received message.
        recv_variant: &'static str,
        /// Symbolic wire bytes of the send half.
        send: ByteExpr,
        /// Symbolic wire bytes of the receive half.
        recv: ByteExpr,
    },
    /// A lone buffered send (the eager pass-Q return hop).
    Send {
        /// Which path's visiting origin the return targets.
        path: PathDir,
        /// Symbolic destination rank.
        dst: PeerExpr,
        /// Variant of the sent message.
        variant: &'static str,
        /// Symbolic wire bytes of the message.
        bytes: ByteExpr,
    },
}

/// A guarded symbolic operation: `op` runs in every round where `guard`
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardedOp {
    /// Round guard.
    pub guard: Guard,
    /// The operation.
    pub op: SymOp,
}

/// A symbolic fused collective over one byte table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymCollective {
    /// `All2All`: entry `j` of the table goes to rank `j`; each rank
    /// receives its own entry from every peer.
    AllToAll {
        /// Variant of every payload.
        variant: &'static str,
        /// Byte table indexed by destination rank.
        table: usize,
    },
    /// `AllGather`: each rank broadcasts `table[send_ix]` and collects the
    /// whole table.
    AllGather {
        /// Variant of every payload.
        variant: &'static str,
        /// Byte table indexed by source rank.
        table: usize,
        /// Which entry this rank broadcasts (lawful: [`Ix::SelfRank`]).
        send_ix: Ix,
    },
    /// `AllReduce`: gather + deterministic fold, same shape as
    /// `AllGather`.
    AllReduce {
        /// Variant of every payload.
        variant: &'static str,
        /// Byte table indexed by source rank.
        table: usize,
        /// Which entry this rank contributes (lawful: [`Ix::SelfRank`]).
        send_ix: Ix,
    },
}

/// One segment of a symbolic schedule, executed in order by every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymSegment {
    /// A round loop `for j in 0..W`, running each guarded op in order per
    /// round — the ring-hop structure shared by Alg. 2–4.
    Rounds(Vec<GuardedOp>),
    /// Trailing lone receives from every peer in ascending rank order —
    /// the collection half of the double-buffered pass-Q return.
    GatherAscending {
        /// Variant of every received message.
        variant: &'static str,
        /// Symbolic wire bytes of each received message.
        bytes: ByteExpr,
    },
    /// Trailing receives of the bidirectional pass-Q return: **two**
    /// messages per peer in ascending rank order, carrying the rank's own
    /// forward-half and reverse-half partials. Grounding orders each pair
    /// by the τ-rule — the half the peer hosted (hence posted) at the
    /// earlier step arrives first on its FIFO channel, `first` winning
    /// ties because the round loop posts the forward return before the
    /// reverse one.
    GatherAscendingBidi {
        /// Variant of every received message.
        variant: &'static str,
        /// Bytes of the forward-half return (lawful: [`Ix::SelfRank`]).
        first: ByteExpr,
        /// Bytes of the reverse-half return (lawful: [`Ix::SelfRank`]).
        second: ByteExpr,
    },
    /// A single fused collective.
    Collective(SymCollective),
}

/// A schedule family declared once over symbolic `(W, byte tables)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymTemplate {
    /// Template name, used in reports.
    pub name: String,
    /// How many times the whole segment list repeats per rank (layers of
    /// a stacked forward plan).
    pub repeat: usize,
    /// Path shape the ops' peer and origin expressions evaluate over:
    /// `None` grounds on the flat ring at any `W`; `Some(g)` grounds on
    /// the hierarchical ring of `W/g` nodes × `g` ranks (TASP-style) and
    /// requires `g | W`. The symbolic laws are shape-independent — every
    /// path is a Hamiltonian cycle with the flat ring's rotation identity.
    pub ranks_per_node: Option<usize>,
    /// Names of the byte tables the expressions index; grounding supplies
    /// one concrete `Vec<usize>` of length `W` per name.
    pub table_names: Vec<&'static str>,
    /// Segments in per-rank program order.
    pub segments: Vec<SymSegment>,
}

/// A violation of the template laws, found symbolically — it holds for
/// *every* instantiation of the template, not one grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymViolation {
    /// Malformed template (bad table id, zero repeat, multiple round
    /// loops).
    Structure {
        /// What is malformed.
        detail: String,
    },
    /// A `SendRecv` that is not a lawful `Next`/`Prev` hop with
    /// consecutive origin byte expressions.
    RingHop {
        /// Segment index.
        segment: usize,
        /// Op index within the round loop.
        op: usize,
        /// What disagrees.
        detail: String,
    },
    /// A guard that breaks origin coverage (dropped final hop, or a
    /// wrapped self-send round).
    Coverage {
        /// Segment index.
        segment: usize,
        /// Op index within the round loop.
        op: usize,
        /// What the guard does wrong.
        detail: String,
    },
    /// An eager return send without a lawful shape or matching trailing
    /// gather.
    ScatterGather {
        /// Segment index.
        segment: usize,
        /// What is unpaired or misshapen.
        detail: String,
    },
    /// A gather-shaped collective broadcasting someone else's entry.
    Collective {
        /// Segment index.
        segment: usize,
        /// What the send expression does wrong.
        detail: String,
    },
}

impl std::fmt::Display for SymViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymViolation::Structure { detail } => write!(f, "structure: {detail}"),
            SymViolation::RingHop {
                segment,
                op,
                detail,
            } => write!(f, "ring-hop law (segment {segment}, op {op}): {detail}"),
            SymViolation::Coverage {
                segment,
                op,
                detail,
            } => write!(f, "coverage law (segment {segment}, op {op}): {detail}"),
            SymViolation::ScatterGather { segment, detail } => {
                write!(f, "scatter/gather law (segment {segment}): {detail}")
            }
            SymViolation::Collective { segment, detail } => {
                write!(f, "collective law (segment {segment}): {detail}")
            }
        }
    }
}

fn guard_holds(guard: Guard, j: usize, world: usize) -> bool {
    match guard {
        Guard::Always => true,
        Guard::BeforeRound(margin) => j + margin < world,
        Guard::NotFirstRound => j > 0,
    }
}

/// Closed-form count of rounds `j ∈ 0..W` satisfying `guard` — the
/// symbolic per-rank call count of a guarded op.
fn guard_rounds(guard: Guard, world: usize) -> usize {
    match guard {
        Guard::Always => world,
        Guard::BeforeRound(margin) => world.saturating_sub(margin),
        Guard::NotFirstRound => world.saturating_sub(1),
    }
}

fn eval_peer(peer: PeerExpr, path: RingPath, rank: usize, round: usize) -> usize {
    match peer {
        PeerExpr::Next => path.send_peer(rank, round),
        PeerExpr::Prev => path.recv_peer(rank, round),
        PeerExpr::VisitingOrigin => path.origin_at(rank, round),
    }
}

fn eval_ix(ix: Ix, path: RingPath, rank: usize, round: usize) -> usize {
    match ix {
        Ix::SelfRank => rank,
        Ix::OriginAt(offset) => path.origin_at(rank, round + offset),
    }
}

fn table(tables: &[Vec<usize>], id: usize) -> Result<&Vec<usize>, String> {
    tables
        .get(id)
        .ok_or_else(|| format!("byte table {id} out of range ({} supplied)", tables.len()))
}

fn eval_bytes(
    expr: ByteExpr,
    tables: &[Vec<usize>],
    path: RingPath,
    rank: usize,
    round: usize,
) -> Result<usize, String> {
    let t = table(tables, expr.table)?;
    let i = eval_ix(expr.ix, path, rank, round);
    t.get(i)
        .copied()
        .ok_or_else(|| format!("byte table {} has no entry {i}", expr.table))
}

impl SymTemplate {
    /// Instantiates the template at a concrete world size and byte
    /// tables, producing the exact [`CommPlan`] the production builders
    /// would declare.
    ///
    /// # Errors
    ///
    /// A description of the first structural mismatch: zero world, table
    /// count or length disagreeing with the template.
    pub fn ground(&self, world: usize, tables: &[Vec<usize>]) -> Result<CommPlan, String> {
        if world == 0 {
            return Err("cannot ground at world 0".to_string());
        }
        if tables.len() != self.table_names.len() {
            return Err(format!(
                "template {} declares {} byte tables, {} supplied",
                self.name,
                self.table_names.len(),
                tables.len()
            ));
        }
        for (name, t) in self.table_names.iter().zip(tables) {
            if t.len() != world {
                return Err(format!(
                    "byte table {name} has {} entries for world {world}",
                    t.len()
                ));
            }
        }
        let layout = match self.ranks_per_node {
            None => RingLayout::Flat,
            Some(g) => {
                if g == 0 || !world.is_multiple_of(g) {
                    return Err(format!(
                        "template {}: {g} ranks per node do not tile world {world}",
                        self.name
                    ));
                }
                RingLayout::Hier(Topology::new(world / g, g))
            }
        };
        let fwd = layout.fwd(world).map_err(|e| e.to_string())?;
        let rev = layout.rev(world).map_err(|e| e.to_string())?;
        let ranks = (0..world)
            .map(|r| {
                Ok(RankPlan {
                    rank: r,
                    ops: self.ground_rank(r, world, tables, fwd, rev)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CommPlan::from_ranks(ranks))
    }

    fn ground_rank(
        &self,
        rank: usize,
        world: usize,
        tables: &[Vec<usize>],
        fwd: RingPath,
        rev: RingPath,
    ) -> Result<Vec<CommOp>, String> {
        let on = |dir: PathDir| match dir {
            PathDir::Fwd => fwd,
            PathDir::Rev => rev,
        };
        let mut ops = Vec::new();
        for _ in 0..self.repeat {
            for segment in &self.segments {
                match segment {
                    SymSegment::Rounds(gops) => {
                        // The FIFO-safety transform the production
                        // builders apply (`hop_channels` + `defer_return`):
                        // an eager return whose destination also carries
                        // hop traffic is stashed and flushed after the
                        // final hop post, keeping each channel's order
                        // equal to the trailing gather declaration. On the
                        // flat forward ring this is a no-op (the visiting
                        // origin only equals `Next` at the final round).
                        let mut is_hop_dst = vec![false; world];
                        for gop in gops {
                            if let SymOp::SendRecv { path, .. } = gop.op {
                                let p = on(path);
                                for h in 0..world.saturating_sub(1) {
                                    if let Some(slot) = is_hop_dst.get_mut(p.send_peer(rank, h)) {
                                        *slot = true;
                                    }
                                }
                            }
                        }
                        let mut deferred: Vec<CommOp> = Vec::new();
                        for j in 0..world {
                            if j + 1 == world {
                                ops.append(&mut deferred);
                            }
                            for gop in gops {
                                if !guard_holds(gop.guard, j, world) {
                                    continue;
                                }
                                match gop.op {
                                    SymOp::SendRecv {
                                        path,
                                        dst,
                                        src,
                                        send_variant,
                                        recv_variant,
                                        send,
                                        recv,
                                    } => {
                                        let p = on(path);
                                        ops.push(CommOp::SendRecv {
                                            dst: eval_peer(dst, p, rank, j),
                                            src: eval_peer(src, p, rank, j),
                                            send_variant,
                                            recv_variant,
                                            send_bytes: eval_bytes(send, tables, p, rank, j)?,
                                            recv_bytes: eval_bytes(recv, tables, p, rank, j)?,
                                        });
                                    }
                                    SymOp::Send {
                                        path,
                                        dst,
                                        variant,
                                        bytes,
                                    } => {
                                        let p = on(path);
                                        let d = eval_peer(dst, p, rank, j);
                                        let op = CommOp::Send {
                                            dst: d,
                                            variant,
                                            bytes: eval_bytes(bytes, tables, p, rank, j)?,
                                        };
                                        let defer = j + 1 < world
                                            && is_hop_dst.get(d).copied().unwrap_or(false);
                                        if defer {
                                            deferred.push(op);
                                        } else {
                                            ops.push(op);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    SymSegment::GatherAscending { variant, bytes } => {
                        for src in (0..world).filter(|&s| s != rank) {
                            ops.push(CommOp::Recv {
                                src,
                                variant,
                                bytes: eval_bytes(*bytes, tables, fwd, rank, 0)?,
                            });
                        }
                    }
                    SymSegment::GatherAscendingBidi {
                        variant,
                        first,
                        second,
                    } => {
                        for src in (0..world).filter(|&s| s != rank) {
                            // τ-rule: `src` posts our forward-half return
                            // at the step it hosts our A half and the
                            // reverse-half return at the step it hosts our
                            // B half; the earlier host step lands first on
                            // its FIFO channel (forward first on a tie).
                            let step = |p: RingPath| {
                                p.step_of(src, rank).ok_or_else(|| {
                                    format!(
                                        "ring path never routes rank {rank}'s block \
                                         through rank {src}"
                                    )
                                })
                            };
                            let (x, y) = if step(fwd)? <= step(rev)? {
                                (*first, *second)
                            } else {
                                (*second, *first)
                            };
                            for expr in [x, y] {
                                ops.push(CommOp::Recv {
                                    src,
                                    variant,
                                    bytes: eval_bytes(expr, tables, fwd, rank, 0)?,
                                });
                            }
                        }
                    }
                    SymSegment::Collective(c) => ops.push(match *c {
                        SymCollective::AllToAll { variant, table: t } => {
                            let tbl = table(tables, t)?;
                            CommOp::AllToAll {
                                variant,
                                send_bytes: tbl.clone(),
                                recv_bytes: vec![
                                    *tbl.get(rank).ok_or_else(|| format!(
                                        "byte table {t} has no entry {rank}"
                                    ))?;
                                    world
                                ],
                            }
                        }
                        SymCollective::AllGather {
                            variant,
                            table: t,
                            send_ix,
                        } => CommOp::AllGather {
                            variant,
                            send_bytes: eval_bytes(
                                ByteExpr {
                                    table: t,
                                    ix: send_ix,
                                },
                                tables,
                                fwd,
                                rank,
                                0,
                            )?,
                            recv_bytes: table(tables, t)?.clone(),
                        },
                        SymCollective::AllReduce {
                            variant,
                            table: t,
                            send_ix,
                        } => CommOp::AllReduce {
                            variant,
                            send_bytes: eval_bytes(
                                ByteExpr {
                                    table: t,
                                    ix: send_ix,
                                },
                                tables,
                                fwd,
                                rank,
                                0,
                            )?,
                            recv_bytes: table(tables, t)?.clone(),
                        },
                    }),
                }
            }
        }
        Ok(ops)
    }

    /// Closed-form traffic prediction, polynomial in `W` — no per-rank
    /// enumeration of ops.
    ///
    /// For any guarded op with an origin-relative byte expression, the
    /// per-round sum over ranks is a bijection over the table
    /// (`Σ_r table[origin(r, j + c)] = Σ table` for every fixed round
    /// `j`), so each op class contributes `rounds × Σ table` bytes and
    /// `W × rounds` calls per repeat; gather-shaped collectives
    /// contribute `(W − 1) × Σ table` sender-side bytes. Must equal the
    /// grounded plan's `predicted_traffic` for every instantiation.
    ///
    /// # Errors
    ///
    /// A description of a byte-table id out of range.
    pub fn symbolic_traffic(
        &self,
        world: usize,
        tables: &[Vec<usize>],
    ) -> Result<PredictedTraffic, String> {
        let sums: Vec<usize> = tables.iter().map(|t| t.iter().sum()).collect();
        let sum_of = |id: usize| -> Result<usize, String> {
            sums.get(id)
                .copied()
                .ok_or_else(|| format!("byte table {id} out of range ({} supplied)", sums.len()))
        };
        let mut p = PredictedTraffic::default();
        for segment in &self.segments {
            match segment {
                SymSegment::Rounds(gops) => {
                    for gop in gops {
                        let rounds = guard_rounds(gop.guard, world);
                        let (calls, bytes) = match gop.op {
                            SymOp::SendRecv { send, .. } => {
                                (world * rounds, rounds * sum_of(send.table)?)
                            }
                            SymOp::Send { bytes, .. } => {
                                (world * rounds, rounds * sum_of(bytes.table)?)
                            }
                        };
                        p.send_recv.calls += calls as u64;
                        p.send_recv.bytes += bytes;
                        p.messages += calls as u64;
                    }
                }
                // Receives are metered sender-side; the matching sends are
                // already counted by their own op class.
                SymSegment::GatherAscending { .. } | SymSegment::GatherAscendingBidi { .. } => {}
                SymSegment::Collective(c) => {
                    let peers = world.saturating_sub(1);
                    match *c {
                        SymCollective::AllToAll { table: t, .. } => {
                            p.all_to_all.calls += world as u64;
                            p.all_to_all.bytes += peers * sum_of(t)?;
                        }
                        SymCollective::AllGather { table: t, .. } => {
                            p.all_gather.calls += world as u64;
                            p.all_gather.bytes += peers * sum_of(t)?;
                        }
                        SymCollective::AllReduce { table: t, .. } => {
                            p.all_reduce.calls += world as u64;
                            p.all_reduce.bytes += peers * sum_of(t)?;
                        }
                    }
                    p.messages += (world * peers) as u64;
                }
            }
        }
        let repeat = self.repeat;
        p.messages *= repeat as u64;
        for c in [
            &mut p.send_recv,
            &mut p.all_to_all,
            &mut p.all_gather,
            &mut p.all_reduce,
        ] {
            c.calls *= repeat as u64;
            c.bytes *= repeat;
        }
        Ok(p)
    }
}

/// Checks the template laws symbolically. An empty result proves the
/// properties — FIFO matching, variant agreement, origin coverage,
/// scatter/gather pairing, collective self-contribution, and (via the
/// module-level argument) deadlock-freedom — for **every** `(W, tables)`
/// instantiation at once.
pub fn check_template(template: &SymTemplate) -> Vec<SymViolation> {
    let mut v = Vec::new();
    if template.repeat == 0 {
        v.push(SymViolation::Structure {
            detail: format!("template {} repeats zero times", template.name),
        });
    }
    if template.ranks_per_node == Some(0) {
        v.push(SymViolation::Structure {
            detail: format!(
                "template {} declares a hierarchical layout with zero ranks per node",
                template.name
            ),
        });
    }
    let n_tables = template.table_names.len();
    let check_table = |v: &mut Vec<SymViolation>, id: usize, what: &str| {
        if id >= n_tables {
            v.push(SymViolation::Structure {
                detail: format!("{what} references byte table {id}, only {n_tables} declared"),
            });
        }
    };
    let round_segments = template
        .segments
        .iter()
        .filter(|s| matches!(s, SymSegment::Rounds(_)))
        .count();
    if round_segments > 1 {
        v.push(SymViolation::Structure {
            detail: format!(
                "template {} has {round_segments} round loops; the coverage argument \
                 assumes at most one",
                template.name
            ),
        });
    }

    for (si, segment) in template.segments.iter().enumerate() {
        match segment {
            SymSegment::Rounds(gops) => {
                for (oi, gop) in gops.iter().enumerate() {
                    match gop.op {
                        SymOp::SendRecv {
                            path: _,
                            dst,
                            src,
                            send_variant,
                            recv_variant,
                            send,
                            recv,
                        } => {
                            check_table(&mut v, send.table, "hop send");
                            check_table(&mut v, recv.table, "hop recv");
                            if dst != PeerExpr::Next || src != PeerExpr::Prev {
                                v.push(SymViolation::RingHop {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "hop must send to its path's Next and receive from \
                                         its path's Prev, got dst {dst:?}, src {src:?}"
                                    ),
                                });
                            }
                            if send_variant != recv_variant {
                                v.push(SymViolation::RingHop {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "hop variants disagree: sends {send_variant}, \
                                         receives {recv_variant}"
                                    ),
                                });
                            }
                            if send.table != recv.table {
                                v.push(SymViolation::RingHop {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "hop halves index different byte tables ({} vs {})",
                                        send.table, recv.table
                                    ),
                                });
                            }
                            match (send.ix, recv.ix) {
                                (Ix::OriginAt(a), Ix::OriginAt(b)) if b == a + 1 => {}
                                (send_ix, recv_ix) => v.push(SymViolation::RingHop {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "hop byte expressions must be consecutive origin \
                                         lookups (send origin_at(a), recv origin_at(a+1)) so \
                                         rank r's receive matches rank r-1's send for all W; \
                                         got send {send_ix:?}, recv {recv_ix:?}"
                                    ),
                                }),
                            }
                            if gop.guard != Guard::BeforeRound(1) {
                                v.push(SymViolation::Coverage {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "hop guard must be BeforeRound(1) (exactly W-1 hops: \
                                         every origin visits every rank once, no wrapped \
                                         self-send); got {:?}",
                                        gop.guard
                                    ),
                                });
                            }
                        }
                        SymOp::Send {
                            path: _,
                            dst,
                            variant,
                            bytes,
                        } => {
                            check_table(&mut v, bytes.table, "eager return send");
                            if dst != PeerExpr::VisitingOrigin {
                                v.push(SymViolation::ScatterGather {
                                    segment: si,
                                    detail: format!(
                                        "op {oi}: eager return must target the visiting \
                                         origin, got {dst:?}"
                                    ),
                                });
                            }
                            if gop.guard != Guard::NotFirstRound {
                                v.push(SymViolation::Coverage {
                                    segment: si,
                                    op: oi,
                                    detail: format!(
                                        "eager return guard must be NotFirstRound (round 0 \
                                         visits the rank's own block, which stays local); \
                                         got {:?}",
                                        gop.guard
                                    ),
                                });
                            }
                            if bytes.ix != Ix::OriginAt(0) {
                                v.push(SymViolation::ScatterGather {
                                    segment: si,
                                    detail: format!(
                                        "op {oi}: eager return must carry the visiting \
                                         origin's entry origin_at(0), got {:?}",
                                        bytes.ix
                                    ),
                                });
                            }
                            let paired = template.segments[si + 1..].iter().any(|s| match s {
                                SymSegment::GatherAscending {
                                    variant: gv,
                                    bytes: gb,
                                } => {
                                    *gv == variant
                                        && gb.table == bytes.table
                                        && gb.ix == Ix::SelfRank
                                }
                                SymSegment::GatherAscendingBidi {
                                    variant: gv,
                                    first,
                                    second,
                                } => {
                                    *gv == variant
                                        && [first, second].iter().any(|gb| {
                                            gb.table == bytes.table && gb.ix == Ix::SelfRank
                                        })
                                }
                                _ => false,
                            });
                            if !paired {
                                v.push(SymViolation::ScatterGather {
                                    segment: si,
                                    detail: format!(
                                        "op {oi}: eager {variant} return has no later \
                                         ascending gather of the rank's own table entry"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            SymSegment::GatherAscending { variant, bytes } => {
                check_table(&mut v, bytes.table, "trailing gather");
                if bytes.ix != Ix::SelfRank {
                    v.push(SymViolation::ScatterGather {
                        segment: si,
                        detail: format!(
                            "trailing gather must collect the rank's own entry \
                             (every peer returns bytes[self]), got {:?}",
                            bytes.ix
                        ),
                    });
                }
                let sourced = template.segments[..si].iter().any(|s| {
                    matches!(s, SymSegment::Rounds(gops) if gops.iter().any(|g| matches!(
                        g.op,
                        SymOp::Send { variant: sv, bytes: sb, .. }
                            if sv == *variant && sb.table == bytes.table
                    )))
                });
                if !sourced {
                    v.push(SymViolation::ScatterGather {
                        segment: si,
                        detail: format!(
                            "trailing {variant} gather has no earlier eager return feeding it"
                        ),
                    });
                }
            }
            SymSegment::GatherAscendingBidi {
                variant,
                first,
                second,
            } => {
                for (half, expr, dir) in [
                    ("forward", first, PathDir::Fwd),
                    ("reverse", second, PathDir::Rev),
                ] {
                    check_table(&mut v, expr.table, "bidirectional trailing gather");
                    if expr.ix != Ix::SelfRank {
                        v.push(SymViolation::ScatterGather {
                            segment: si,
                            detail: format!(
                                "bidirectional gather's {half} half must collect the rank's \
                                 own entry (every peer returns bytes[self]), got {:?}",
                                expr.ix
                            ),
                        });
                    }
                    // Each half must be fed by an eager return travelling
                    // the matching path, so the τ-rule ordering at
                    // grounding time names the channel the bytes actually
                    // arrive on.
                    let sourced = template.segments[..si].iter().any(|s| {
                        matches!(s, SymSegment::Rounds(gops) if gops.iter().any(|g| matches!(
                            g.op,
                            SymOp::Send { path: sp, variant: sv, bytes: sb, .. }
                                if sv == *variant && sb.table == expr.table && sp == dir
                        )))
                    });
                    if !sourced {
                        v.push(SymViolation::ScatterGather {
                            segment: si,
                            detail: format!(
                                "bidirectional {variant} gather's {half} half has no earlier \
                                 {half}-path eager return feeding it"
                            ),
                        });
                    }
                }
            }
            SymSegment::Collective(c) => match *c {
                SymCollective::AllToAll { table: t, .. } => check_table(&mut v, t, "all_to_all"),
                SymCollective::AllGather {
                    table: t, send_ix, ..
                }
                | SymCollective::AllReduce {
                    table: t, send_ix, ..
                } => {
                    check_table(&mut v, t, "gather-shaped collective");
                    if send_ix != Ix::SelfRank {
                        v.push(SymViolation::Collective {
                            segment: si,
                            detail: format!(
                                "gather-shaped collective must broadcast the rank's own \
                                 entry bytes[self], got {send_ix:?}"
                            ),
                        });
                    }
                }
            },
        }
    }
    v
}

/// A seeded template-level bug: unlike the concrete [`crate::Mutation`]s,
/// these corrupt the *symbolic* declaration, so a single seed misdeclares
/// every instantiation of the family at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateMutation {
    /// Hop receive expression reuses the send's origin offset — the
    /// schedule stops tracking block rotation.
    WrongRecvByteExpr,
    /// Hop receive expression skips an origin (`origin_at(a+2)`) — a
    /// rank-rotation off-by-one.
    RotationOffByOne,
    /// Hop guard tightened to `BeforeRound(2)` — the final hop is
    /// dropped, so the last origin never completes its tour. The grounded
    /// plan is still a *valid shorter ring* that concrete `check_plan`
    /// accepts; only the symbolic coverage law (and the runtime
    /// `CheckedFabric` drain check) catch it.
    DropFinalHop,
    /// Gather-shaped collective broadcasts a rotated entry instead of the
    /// rank's own.
    WrongCollectiveSend,
}

impl TemplateMutation {
    /// Every template-level mutation.
    pub fn seeds() -> [TemplateMutation; 4] {
        [
            TemplateMutation::WrongRecvByteExpr,
            TemplateMutation::RotationOffByOne,
            TemplateMutation::DropFinalHop,
            TemplateMutation::WrongCollectiveSend,
        ]
    }

    /// Short id used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            TemplateMutation::WrongRecvByteExpr => "wrong-recv-byte-expr",
            TemplateMutation::RotationOffByOne => "rotation-off-by-one",
            TemplateMutation::DropFinalHop => "drop-final-hop",
            TemplateMutation::WrongCollectiveSend => "wrong-collective-send",
        }
    }
}

/// Applies a template mutation, returning `None` when the template has no
/// site for it (e.g. a collective-only template for a hop mutation).
pub fn apply_template_mutation(
    template: &SymTemplate,
    mutation: TemplateMutation,
) -> Option<SymTemplate> {
    let mut t = template.clone();
    let mut applied = false;
    for segment in &mut t.segments {
        if applied {
            break;
        }
        match (mutation, segment) {
            (
                TemplateMutation::WrongRecvByteExpr
                | TemplateMutation::RotationOffByOne
                | TemplateMutation::DropFinalHop,
                SymSegment::Rounds(gops),
            ) => {
                for gop in gops.iter_mut() {
                    if let SymOp::SendRecv { send, recv, .. } = &mut gop.op {
                        let Ix::OriginAt(a) = send.ix else { continue };
                        match mutation {
                            TemplateMutation::WrongRecvByteExpr => recv.ix = Ix::OriginAt(a),
                            TemplateMutation::RotationOffByOne => recv.ix = Ix::OriginAt(a + 2),
                            TemplateMutation::DropFinalHop => gop.guard = Guard::BeforeRound(2),
                            TemplateMutation::WrongCollectiveSend => unreachable!(),
                        }
                        applied = true;
                        break;
                    }
                }
            }
            (TemplateMutation::WrongCollectiveSend, SymSegment::Collective(c)) => match c {
                SymCollective::AllGather { send_ix, .. }
                | SymCollective::AllReduce { send_ix, .. } => {
                    *send_ix = Ix::OriginAt(1);
                    applied = true;
                }
                SymCollective::AllToAll { .. } => {}
            },
            _ => {}
        }
    }
    applied.then(|| {
        t.name = format!("{}+{}", t.name, mutation.tag());
        t
    })
}

fn hop(variant: &'static str, table: usize) -> GuardedOp {
    hop_on(variant, table, PathDir::Fwd)
}

fn hop_on(variant: &'static str, table: usize, path: PathDir) -> GuardedOp {
    GuardedOp {
        guard: Guard::BeforeRound(1),
        op: SymOp::SendRecv {
            path,
            dst: PeerExpr::Next,
            src: PeerExpr::Prev,
            send_variant: variant,
            recv_variant: variant,
            send: ByteExpr {
                table,
                ix: Ix::OriginAt(0),
            },
            recv: ByteExpr {
                table,
                ix: Ix::OriginAt(1),
            },
        },
    }
}

fn eager_return(variant: &'static str, table: usize, path: PathDir) -> GuardedOp {
    GuardedOp {
        guard: Guard::NotFirstRound,
        op: SymOp::Send {
            path,
            dst: PeerExpr::VisitingOrigin,
            variant,
            bytes: ByteExpr {
                table,
                ix: Ix::OriginAt(0),
            },
        },
    }
}

/// The pass-KV prefill family (Algorithm 2): `W-1` KV ring hops.
pub fn pass_kv_template() -> SymTemplate {
    SymTemplate {
        name: "pass_kv".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kv"],
        segments: vec![SymSegment::Rounds(vec![hop("Kv", 0)])],
    }
}

/// The pass-Q prefill family (Algorithm 3, double-buffered return): Q
/// ring hops interleaved with eager partial-output returns, then an
/// ascending gather of this rank's own partials.
pub fn pass_q_template() -> SymTemplate {
    SymTemplate {
        name: "pass_q".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["q", "out"],
        segments: vec![
            SymSegment::Rounds(vec![hop("Q", 0), eager_return("Out", 1, PathDir::Fwd)]),
            SymSegment::GatherAscending {
                variant: "Out",
                bytes: ByteExpr {
                    table: 1,
                    ix: Ix::SelfRank,
                },
            },
        ],
    }
}

/// The batched pass-Q decode family (Algorithm 4): decode-Q ring hops,
/// then one fused `All2All` of per-slot partial outputs.
pub fn decode_template() -> SymTemplate {
    SymTemplate {
        name: "decode".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["dq", "dout"],
        segments: vec![
            SymSegment::Rounds(vec![hop("DecodeQ", 0)]),
            SymSegment::Collective(SymCollective::AllToAll {
                variant: "DecodeOut",
                table: 1,
            }),
        ],
    }
}

/// The all-gather pass-KV baseline family (§3.5.2): one fused `AllGather`
/// of every rank's KV shard.
pub fn all_gather_baseline_template() -> SymTemplate {
    SymTemplate {
        name: "all_gather_baseline".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kv"],
        segments: vec![SymSegment::Collective(SymCollective::AllGather {
            variant: "Kv",
            table: 0,
            send_ix: Ix::SelfRank,
        })],
    }
}

/// The TP column→row activation `AllReduce` family (Table 2).
pub fn tp_all_reduce_template() -> SymTemplate {
    SymTemplate {
        name: "tp_all_reduce".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["payload"],
        segments: vec![SymSegment::Collective(SymCollective::AllReduce {
            variant: "payload",
            table: 0,
            send_ix: Ix::SelfRank,
        })],
    }
}

/// The TP attention output `AllGather` family (§4.2.2).
pub fn tp_all_gather_template() -> SymTemplate {
    SymTemplate {
        name: "tp_all_gather".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["payload"],
        segments: vec![SymSegment::Collective(SymCollective::AllGather {
            variant: "payload",
            table: 0,
            send_ix: Ix::SelfRank,
        })],
    }
}

/// The bidirectional pass-KV prefill family (TokenRing-style,
/// arXiv:2412.20501): each rank's KV block splits at the token midpoint
/// and the two halves counter-rotate, one forward hop and one reverse hop
/// per round — per-link bytes per step halve while total volume is
/// unchanged.
pub fn pass_kv_bidi_template() -> SymTemplate {
    SymTemplate {
        name: "pass_kv_bidi".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kv_a", "kv_b"],
        segments: vec![SymSegment::Rounds(vec![
            hop_on("Kv", 0, PathDir::Fwd),
            hop_on("Kv", 1, PathDir::Rev),
        ])],
    }
}

/// The bidirectional pass-Q prefill family: the two query halves
/// counter-rotate, each round posting both hops and both eager partial
/// returns, with a trailing gather of **two** `Out` messages per peer
/// ordered by the τ-rule.
pub fn pass_q_bidi_template() -> SymTemplate {
    SymTemplate {
        name: "pass_q_bidi".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["q_a", "q_b", "out_a", "out_b"],
        segments: vec![
            SymSegment::Rounds(vec![
                hop_on("Q", 0, PathDir::Fwd),
                hop_on("Q", 1, PathDir::Rev),
                eager_return("Out", 2, PathDir::Fwd),
                eager_return("Out", 3, PathDir::Rev),
            ]),
            SymSegment::GatherAscendingBidi {
                variant: "Out",
                first: ByteExpr {
                    table: 2,
                    ix: Ix::SelfRank,
                },
                second: ByteExpr {
                    table: 3,
                    ix: Ix::SelfRank,
                },
            },
        ],
    }
}

/// The bidirectional batched pass-Q decode family: the slot vector splits
/// at the midpoint, the halves counter-rotate, and the same single
/// `All2All` as the unidirectional family returns the per-origin partials.
pub fn decode_bidi_template() -> SymTemplate {
    SymTemplate {
        name: "decode_bidi".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["dq_a", "dq_b", "dout"],
        segments: vec![
            SymSegment::Rounds(vec![
                hop_on("DecodeQ", 0, PathDir::Fwd),
                hop_on("DecodeQ", 1, PathDir::Rev),
            ]),
            SymSegment::Collective(SymCollective::AllToAll {
                variant: "DecodeOut",
                table: 2,
            }),
        ],
    }
}

/// The Helix decode attention family (Helix-parallelism-style,
/// arXiv:2507.07120): the `W-1` DecodeQ ring hops of [`decode_template`]
/// fuse into one `AllGather` of every origin's slot vector — each rank
/// attends over its local KV shard for the whole batch at once — and the
/// same single `All2All` returns the per-origin partials for the exact
/// ascending-rank merge.
pub fn helix_decode_template() -> SymTemplate {
    SymTemplate {
        name: "helix_decode".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["dq", "dout"],
        segments: vec![
            SymSegment::Collective(SymCollective::AllGather {
                variant: "DecodeQ",
                table: 0,
                send_ix: Ix::SelfRank,
            }),
            SymSegment::Collective(SymCollective::AllToAll {
                variant: "DecodeOut",
                table: 1,
            }),
        ],
    }
}

/// The TP-only decode family: one `AllGather` replicating every rank's
/// owned per-sequence KV shards; each slot's owner then folds one partial
/// per source shard locally, so no partials travel back. The `W = 1`
/// production plan degenerates to zero ops (no collective is issued);
/// the family covers the `W ≥ 2` collective.
pub fn tp_only_decode_template() -> SymTemplate {
    SymTemplate {
        name: "tp_only_decode".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kv"],
        segments: vec![SymSegment::Collective(SymCollective::AllGather {
            variant: "Kv",
            table: 0,
            send_ix: Ix::SelfRank,
        })],
    }
}

/// One serve-engine transformer layer of Helix decode: the attention
/// collectives of [`helix_decode_template`] followed by the TP reshard —
/// an `AllGather` replicating each owner's merged attention rows (`act`:
/// per-rank real-slot rows × `D`), then two row-parallel `AllReduce`s
/// (out projection, FFN down projection), each summing a full
/// `[batch, D]` partial (`act_sum`, uniform). Stacked per layer via
/// `repeat` — the symbolic form of `stacked_plan` over
/// `helix_layer_plan`.
pub fn helix_layer_template() -> SymTemplate {
    SymTemplate {
        name: "helix_layer".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["dq", "dout", "act", "act_sum"],
        segments: vec![
            SymSegment::Collective(SymCollective::AllGather {
                variant: "DecodeQ",
                table: 0,
                send_ix: Ix::SelfRank,
            }),
            SymSegment::Collective(SymCollective::AllToAll {
                variant: "DecodeOut",
                table: 1,
            }),
            SymSegment::Collective(SymCollective::AllGather {
                variant: "Act",
                table: 2,
                send_ix: Ix::SelfRank,
            }),
            SymSegment::Collective(SymCollective::AllReduce {
                variant: "Act",
                table: 3,
                send_ix: Ix::SelfRank,
            }),
            SymSegment::Collective(SymCollective::AllReduce {
                variant: "Act",
                table: 3,
                send_ix: Ix::SelfRank,
            }),
        ],
    }
}

/// The topology-aware pass-KV prefill family (TASP-style,
/// arXiv:2509.26541): the flat hop structure over the hierarchical ring of
/// `g` ranks per node, keeping `W-N` of the `W-1` hops on fast intra-node
/// links.
pub fn pass_kv_hier_template(ranks_per_node: usize) -> SymTemplate {
    SymTemplate {
        name: "pass_kv_hier".to_string(),
        ranks_per_node: Some(ranks_per_node),
        ..pass_kv_template()
    }
}

/// The topology-aware pass-Q prefill family: hierarchical Q circulation
/// with the same eager-return / trailing-gather permutation; grounding
/// defers returns that share a channel with later hops (the production
/// `defer_return` transform, a no-op on the flat ring).
pub fn pass_q_hier_template(ranks_per_node: usize) -> SymTemplate {
    SymTemplate {
        name: "pass_q_hier".to_string(),
        ranks_per_node: Some(ranks_per_node),
        ..pass_q_template()
    }
}

/// The bidirectional **and** topology-aware pass-KV family: counter-
/// rotating KV halves over the hierarchical ring — the schedule the
/// adaptive heuristics pick for long-context prefill on multi-node
/// asymmetric fabrics.
pub fn pass_kv_bidi_hier_template(ranks_per_node: usize) -> SymTemplate {
    SymTemplate {
        name: "pass_kv_bidi_hier".to_string(),
        ranks_per_node: Some(ranks_per_node),
        ..pass_kv_bidi_template()
    }
}

/// The compressed pass-KV prefill family (APB-style INT8 wire format):
/// structurally the flat KV ring, but each hop relays `KvQuant` blocks —
/// 1-byte codes plus one `f32` scale per `(token, head)`, `2·l·n_kv·(d+4)`
/// bytes instead of the f32 `2·l·n_kv·d·4`. One byte table, same ring-hop
/// and coverage laws; only the table's entries (and the variant) change.
pub fn pass_kv_quant_template() -> SymTemplate {
    SymTemplate {
        name: "pass_kv_quant".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kvq"],
        segments: vec![SymSegment::Rounds(vec![hop("KvQuant", 0)])],
    }
}

/// The bidirectional compressed pass-KV family: the INT8 block splits at
/// the token midpoint (codes copied verbatim, no requantization) and the
/// halves counter-rotate.
pub fn pass_kv_quant_bidi_template() -> SymTemplate {
    SymTemplate {
        name: "pass_kv_quant_bidi".to_string(),
        repeat: 1,
        ranks_per_node: None,
        table_names: vec!["kvq_a", "kvq_b"],
        segments: vec![SymSegment::Rounds(vec![
            hop_on("KvQuant", 0, PathDir::Fwd),
            hop_on("KvQuant", 1, PathDir::Rev),
        ])],
    }
}

/// The topology-aware compressed pass-KV family: INT8 hops over the
/// hierarchical ring.
pub fn pass_kv_quant_hier_template(ranks_per_node: usize) -> SymTemplate {
    SymTemplate {
        name: "pass_kv_quant_hier".to_string(),
        ranks_per_node: Some(ranks_per_node),
        ..pass_kv_quant_template()
    }
}

/// The bidirectional **and** topology-aware compressed pass-KV family.
pub fn pass_kv_quant_bidi_hier_template(ranks_per_node: usize) -> SymTemplate {
    SymTemplate {
        name: "pass_kv_quant_bidi_hier".to_string(),
        ranks_per_node: Some(ranks_per_node),
        ..pass_kv_quant_bidi_template()
    }
}

/// The full-stack forward family: one ring schedule (pass-KV or pass-Q)
/// per transformer layer inside a single fabric session — the symbolic
/// form of `cp_core::schedule::stacked_plan` over the layer template.
pub fn forward_template(layers: usize, pass_q: bool) -> SymTemplate {
    let layer = if pass_q {
        pass_q_template()
    } else {
        pass_kv_template()
    };
    SymTemplate {
        name: format!(
            "forward_{}_x{layers}",
            if pass_q { "pass_q" } else { "pass_kv" }
        ),
        repeat: layers,
        ranks_per_node: layer.ranks_per_node,
        table_names: layer.table_names,
        segments: layer.segments,
    }
}

/// Every declared template family, covering every collective the
/// workspace issues: the three ring algorithms in both directions, the
/// hierarchical layouts, the three decode strategies (batched pass-Q,
/// Helix, TP-only — plus the Helix serve layer with its TP reshard), the
/// all-gather baseline, both TP collectives, and the stacked full-stack
/// forward in both ring variants.
pub fn all_templates() -> Vec<SymTemplate> {
    vec![
        pass_kv_template(),
        pass_q_template(),
        decode_template(),
        pass_kv_bidi_template(),
        pass_q_bidi_template(),
        decode_bidi_template(),
        helix_decode_template(),
        tp_only_decode_template(),
        helix_layer_template(),
        pass_kv_hier_template(2),
        pass_q_hier_template(2),
        pass_kv_bidi_hier_template(2),
        pass_kv_quant_template(),
        pass_kv_quant_bidi_template(),
        pass_kv_quant_hier_template(2),
        pass_kv_quant_bidi_hier_template(2),
        all_gather_baseline_template(),
        tp_all_reduce_template(),
        tp_all_gather_template(),
        forward_template(3, false),
        forward_template(2, true),
    ]
}

/// One grounded template instance paired with the production builder's
/// plan for the same inputs.
#[derive(Debug, Clone)]
pub struct TemplateCase {
    /// Case id, e.g. `w5/pass_q`.
    pub name: String,
    /// The symbolic template.
    pub template: SymTemplate,
    /// Concrete per-origin byte tables, derived independently from the
    /// payload types' [`Wire`] impls (never copied from the builders).
    pub tables: Vec<Vec<usize>>,
    /// The plan the production builder in `cp_core::schedule` declares
    /// for the same inputs — grounding must reproduce it exactly.
    pub production: CommPlan,
}

fn kv_bytes(locals: &[Vec<LocalSeq>]) -> Vec<usize> {
    locals
        .iter()
        .map(|ls| {
            RingMsg::Kv {
                seqs: ls
                    .iter()
                    .map(|l| SeqKv {
                        k: l.k.clone(),
                        v: l.v.clone(),
                        pos: l.kv_pos.clone(),
                    })
                    .collect(),
            }
            .wire_bytes()
        })
        .collect()
}

fn q_bytes(locals: &[Vec<LocalSeq>]) -> Vec<usize> {
    locals
        .iter()
        .enumerate()
        .map(|(r, ls)| {
            RingMsg::Q {
                origin: r,
                seqs: ls
                    .iter()
                    .map(|l| SeqQ {
                        q: l.q.clone(),
                        pos: l.q_pos.clone(),
                    })
                    .collect(),
            }
            .wire_bytes()
        })
        .collect()
}

fn out_bytes(params: &AttentionParams, locals: &[Vec<LocalSeq>]) -> Vec<usize> {
    let h = params.shape.n_heads();
    locals
        .iter()
        .map(|ls| {
            ls.iter()
                .map(|l| (l.q.numel() + l.q_pos.len() * h) * ELEM_BYTES)
                .sum()
        })
        .collect()
}

fn dq_bytes(slots: &[Vec<Option<DecodeSlot>>]) -> Vec<usize> {
    slots
        .iter()
        .enumerate()
        .map(|(r, s)| {
            RingMsg::DecodeQ {
                origin: r,
                slots: s.clone(),
            }
            .wire_bytes()
        })
        .collect()
}

fn dout_bytes(params: &AttentionParams, slots: &[Vec<Option<DecodeSlot>>]) -> Vec<usize> {
    let h = params.shape.n_heads();
    slots
        .iter()
        .map(|s| {
            s.iter()
                .flatten()
                .map(|slot| (slot.q.numel() + h) * ELEM_BYTES)
                .sum()
        })
        .collect()
}

/// Per-rank wire bytes of the compressed KV blocks, derived by actually
/// quantizing the grid inputs and asking the [`Wire`] impl — independent
/// of the builders' zero-code skeletons (byte counts depend only on
/// geometry, which both sides must agree on).
fn kv_quant_bytes(locals: &[Vec<LocalSeq>]) -> Result<Vec<usize>, CoreError> {
    locals
        .iter()
        .map(|ls| {
            let seqs = ls
                .iter()
                .map(|l| {
                    QuantSeqKv::quantize(&SeqKv {
                        k: l.k.clone(),
                        v: l.v.clone(),
                        pos: l.kv_pos.clone(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RingMsg::KvQuant { seqs }.wire_bytes())
        })
        .collect()
}

/// Per-rank `(A, B)` wire bytes of the bidirectional compressed KV
/// halves: quantize, split the codes at the token midpoint, meter each
/// half — the same verbatim-code split the production loops perform.
fn kv_quant_half_tables(locals: &[Vec<LocalSeq>]) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        for l in ls {
            let q = QuantSeqKv::quantize(&SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            })?;
            let (ha, hb) = q.split_halves()?;
            ab += RingMsg::KvQuant { seqs: vec![ha] }.wire_bytes();
            bb += RingMsg::KvQuant { seqs: vec![hb] }.wire_bytes();
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Per-rank `(A, B)` wire bytes of the bidirectional KV halves, derived
/// from the payload types' own midpoint split — independent of the
/// builders' internal tables.
fn kv_half_tables(locals: &[Vec<LocalSeq>]) -> Result<(Vec<usize>, Vec<usize>), CoreError> {
    let mut a = Vec::with_capacity(locals.len());
    let mut b = Vec::with_capacity(locals.len());
    for ls in locals {
        let (mut ab, mut bb) = (0usize, 0usize);
        for l in ls {
            let (ha, hb) = SeqKv {
                k: l.k.clone(),
                v: l.v.clone(),
                pos: l.kv_pos.clone(),
            }
            .split_halves()?;
            ab += RingMsg::Kv { seqs: vec![ha] }.wire_bytes();
            bb += RingMsg::Kv { seqs: vec![hb] }.wire_bytes();
        }
        a.push(ab);
        b.push(bb);
    }
    Ok((a, b))
}

/// Per-rank byte tables `(q_a, q_b, out_a, out_b)` for the
/// bidirectional pass-Q family.
type QOutHalves = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>);

/// Per-rank `(A, B)` wire bytes of the bidirectional Q halves and the
/// `Out` messages returning each half's partials.
fn q_out_half_tables(
    params: &AttentionParams,
    locals: &[Vec<LocalSeq>],
) -> Result<QOutHalves, CoreError> {
    let h = params.shape.n_heads();
    let n = locals.len();
    let (mut qa, mut qb) = (Vec::with_capacity(n), Vec::with_capacity(n));
    let (mut oa, mut ob) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for ls in locals {
        let (mut qav, mut qbv, mut oav, mut obv) = (0usize, 0usize, 0usize, 0usize);
        for l in ls {
            let (ha, hb) = SeqQ {
                q: l.q.clone(),
                pos: l.q_pos.clone(),
            }
            .split_halves()?;
            qav += ha.q.numel() * ELEM_BYTES;
            qbv += hb.q.numel() * ELEM_BYTES;
            oav += (ha.q.numel() + ha.pos.len() * h) * ELEM_BYTES;
            obv += (hb.q.numel() + hb.pos.len() * h) * ELEM_BYTES;
        }
        qa.push(qav);
        qb.push(qbv);
        oa.push(oav);
        ob.push(obv);
    }
    Ok((qa, qb, oa, ob))
}

/// Per-rank `(A, B)` wire bytes of the bidirectional decode-slot halves.
fn dq_half_tables(slots: &[Vec<Option<DecodeSlot>>]) -> (Vec<usize>, Vec<usize>) {
    let mut a = Vec::with_capacity(slots.len());
    let mut b = Vec::with_capacity(slots.len());
    for (r, s) in slots.iter().enumerate() {
        let (ha, hb) = split_slot_vec(s);
        a.push(
            RingMsg::DecodeQ {
                origin: r,
                slots: ha,
            }
            .wire_bytes(),
        );
        b.push(
            RingMsg::DecodeQ {
                origin: r,
                slots: hb,
            }
            .wire_bytes(),
        );
    }
    (a, b)
}

/// Builds every template family's grounding case at one world size:
/// skewed (`varseq`) prefill inputs and ragged decode slots, so byte
/// tables are non-uniform and index bugs are visible. Hierarchical cases
/// (two ranks per node) appear at even worlds ≥ 4, where the topology
/// tiles the ring into at least two nodes.
///
/// # Errors
///
/// Propagates [`CoreError`] from the production plan builders.
pub fn template_cases(world: usize) -> Result<Vec<TemplateCase>, CoreError> {
    let params = grid_params()?;
    let shape = params.shape;
    let locals = grid_locals(world, 2, world > 1, shape);
    let kv = kv_bytes(&locals);
    let q = q_bytes(&locals);
    let outs = out_bytes(&params, &locals);
    let (kv_a, kv_b) = kv_half_tables(&locals)?;
    let kvq = kv_quant_bytes(&locals)?;
    let (kvq_a, kvq_b) = kv_quant_half_tables(&locals)?;
    let (q_a, q_b, out_a, out_b) = q_out_half_tables(&params, &locals)?;
    let slots = grid_slots(world, 2, true, shape);
    let dq = dq_bytes(&slots);
    let dout = dout_bytes(&params, &slots);
    let (dq_a, dq_b) = dq_half_tables(&slots);
    // Helix reshard tables, metered through the `Act` payload's `Wire`
    // impl: per-rank merged attention rows (one `[1, D]` row per real
    // slot) and the uniform `[batch, D]` row-parallel partial.
    let model_dim = shape.n_heads() * shape.head_dim();
    let act_rows = |rows: usize| {
        RingMsg::Act {
            x: Tensor::zeros(&[rows, model_dim]),
        }
        .wire_bytes()
    };
    let act: Vec<usize> = slots
        .iter()
        .map(|s| act_rows(s.iter().flatten().count()))
        .collect();
    let batch_rows: usize = slots.iter().map(|s| s.iter().flatten().count()).sum();
    let act_sum = vec![act_rows(batch_rows); world];
    // Distinct per-rank TP payload sizes: uniform tables would hide
    // wrong-index bugs at grounding time.
    let payload: Vec<usize> = (0..world).map(|r| 4 * (r + 2)).collect();

    let case = |t: SymTemplate, tables: Vec<Vec<usize>>, production: CommPlan| TemplateCase {
        name: format!("w{world}/{}", t.name),
        template: t,
        tables,
        production,
    };
    let mut cases = vec![
        case(pass_kv_template(), vec![kv.clone()], pass_kv_plan(&locals)?),
        case(
            pass_q_template(),
            vec![q.clone(), outs.clone()],
            pass_q_plan(&params, &locals)?,
        ),
        case(
            decode_template(),
            vec![dq.clone(), dout.clone()],
            decode_plan(&params, &slots)?,
        ),
        case(
            helix_decode_template(),
            vec![dq.clone(), dout.clone()],
            helix_decode_plan(&params, &slots)?,
        ),
        case(
            tp_only_decode_template(),
            vec![kv.clone()],
            tp_only_decode_plan(&kv)?,
        ),
        case(
            helix_layer_template(),
            vec![dq.clone(), dout.clone(), act.clone(), act_sum.clone()],
            helix_layer_plan(&params, &slots, model_dim)?,
        ),
        case(
            SymTemplate {
                name: "helix_layer_x3".to_string(),
                repeat: 3,
                ..helix_layer_template()
            },
            vec![dq.clone(), dout.clone(), act, act_sum],
            stacked_plan(helix_layer_plan(&params, &slots, model_dim)?, 3),
        ),
        case(
            pass_kv_bidi_template(),
            vec![kv_a.clone(), kv_b.clone()],
            pass_kv_bidi_plan(&locals, RingLayout::Flat)?,
        ),
        case(
            pass_q_bidi_template(),
            vec![q_a, q_b, out_a, out_b],
            pass_q_bidi_plan(&params, &locals, RingLayout::Flat)?,
        ),
        case(
            decode_bidi_template(),
            vec![dq_a, dq_b, dout],
            decode_bidi_plan(&params, &slots)?,
        ),
        case(
            pass_kv_quant_template(),
            vec![kvq.clone()],
            pass_kv_quant_plan_on(&locals, RingLayout::Flat)?,
        ),
        case(
            pass_kv_quant_bidi_template(),
            vec![kvq_a.clone(), kvq_b.clone()],
            pass_kv_quant_bidi_plan(&locals, RingLayout::Flat)?,
        ),
        case(
            all_gather_baseline_template(),
            vec![kv.clone()],
            all_gather_pass_kv_plan(&locals)?,
        ),
        case(
            tp_all_reduce_template(),
            vec![payload.clone()],
            all_reduce_plan("payload", &payload)?,
        ),
        case(
            tp_all_gather_template(),
            vec![payload.clone()],
            all_gather_plan("payload", &payload)?,
        ),
        case(
            forward_template(3, false),
            vec![kv.clone()],
            stacked_plan(pass_kv_plan(&locals)?, 3),
        ),
        case(
            forward_template(2, true),
            vec![q, outs],
            stacked_plan(pass_q_plan(&params, &locals)?, 2),
        ),
    ];
    if world >= 4 && world.is_multiple_of(2) {
        let hier = RingLayout::Hier(Topology::new(world / 2, 2));
        cases.push(case(
            pass_kv_hier_template(2),
            vec![kv.clone()],
            pass_kv_plan_on(&locals, hier)?,
        ));
        cases.push(case(
            pass_q_hier_template(2),
            vec![q_bytes(&locals), out_bytes(&params, &locals)],
            pass_q_plan_on(&params, &locals, hier)?,
        ));
        cases.push(case(
            pass_kv_bidi_hier_template(2),
            vec![kv_a, kv_b],
            pass_kv_bidi_plan(&locals, hier)?,
        ));
        cases.push(case(
            pass_kv_quant_hier_template(2),
            vec![kvq],
            pass_kv_quant_plan_on(&locals, hier)?,
        ));
        cases.push(case(
            pass_kv_quant_bidi_hier_template(2),
            vec![kvq_a, kvq_b],
            pass_kv_quant_bidi_plan(&locals, hier)?,
        ));
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_plan;
    use crate::explore::explore_default;
    use cp_comm::{CheckedFabric, CommError};
    use cp_core::ring::{helix_decode, ring_pass_kv_prefill, ring_pass_q_prefill};
    use cp_core::schedule::run_ring_checked;

    #[test]
    fn laws_accept_every_production_template() {
        for t in all_templates() {
            let v = check_template(&t);
            assert!(v.is_empty(), "{}: {v:?}", t.name);
        }
    }

    #[test]
    fn grounding_reproduces_production_plans_bitwise() {
        for world in 2..=16 {
            for case in template_cases(world).unwrap() {
                let grounded = case.template.ground(world, &case.tables).unwrap();
                assert_eq!(grounded, case.production, "{}", case.name);
            }
        }
    }

    #[test]
    fn grounded_instances_are_clean_and_explorable() {
        for world in 2..=16 {
            for case in template_cases(world).unwrap() {
                let grounded = case.template.ground(world, &case.tables).unwrap();
                let report = check_plan(&grounded);
                assert!(report.is_clean(), "{}: {:?}", case.name, report.violations);
                if world <= crate::EXPLORABLE_CP {
                    let outcome = explore_default(&grounded);
                    assert!(outcome.is_complete(), "{}: {outcome:?}", case.name);
                }
            }
        }
    }

    #[test]
    fn symbolic_traffic_matches_grounded_prediction() {
        for world in 2..=16 {
            for case in template_cases(world).unwrap() {
                let grounded = case.template.ground(world, &case.tables).unwrap();
                let symbolic = case.template.symbolic_traffic(world, &case.tables).unwrap();
                assert_eq!(
                    symbolic,
                    grounded.predicted_traffic(),
                    "{}: symbolic closed form diverges from grounded metering",
                    case.name
                );
            }
        }
    }

    #[test]
    fn ground_rejects_mismatched_tables() {
        let t = pass_kv_template();
        assert!(t.ground(0, &[vec![]]).is_err());
        assert!(t.ground(3, &[]).is_err(), "missing table");
        assert!(t.ground(3, &[vec![8, 8]]).is_err(), "short table");
    }

    #[test]
    fn ground_rejects_non_tiling_hier_world() {
        // 2 ranks per node cannot tile an odd world.
        let t = pass_kv_hier_template(2);
        let err = t.ground(5, &[vec![8; 5]]).unwrap_err();
        assert!(err.contains("do not tile"), "{err}");
        assert!(t.ground(6, &[vec![8; 6]]).is_ok());
    }

    #[test]
    fn every_schedule_family_is_declared() {
        // 21 families: 3 ring algorithms × {uni, bidi}, the Helix and
        // TP-only decode strategies plus the Helix serve layer (attention
        // collectives + TP reshard), 3 hierarchical layouts, 4 compressed
        // pass-KV layouts ({uni, bidi} × {flat, hier}), the all-gather
        // baseline, 2 TP collectives, 2 stacked forwards.
        assert_eq!(all_templates().len(), 21);
    }

    #[test]
    fn quant_templates_compress_every_layout_identically() {
        // All four compressed layouts predict the same total volume
        // (splitting or re-routing the codes moves no extra bytes), and
        // that volume is strictly below the f32 family's — here exactly
        // half: the grid's head_dim 4 gives 2·(4+4) vs 2·4·4 bytes per
        // (token, kv-head) block.
        for world in [4usize, 6] {
            let cases = template_cases(world).unwrap();
            let volume = |name: &str| {
                let case = cases
                    .iter()
                    .find(|c| c.name == format!("w{world}/{name}"))
                    .unwrap_or_else(|| panic!("missing case {name}"));
                case.template
                    .symbolic_traffic(world, &case.tables)
                    .unwrap()
                    .send_recv
                    .bytes
            };
            let f32_volume = volume("pass_kv");
            let quant = volume("pass_kv_quant");
            assert_eq!(quant, volume("pass_kv_quant_bidi"));
            assert_eq!(quant, volume("pass_kv_quant_hier"));
            assert_eq!(quant, volume("pass_kv_quant_bidi_hier"));
            assert_eq!(2 * quant, f32_volume);
        }
    }

    #[test]
    fn bidi_gather_tau_rule_orders_halves_by_host_step() {
        // At world 4 the flat paths give fwd.step_of(src, r) != rev's for
        // off-diagonal peers, so some pair must be reverse-first — pin
        // that the grounding actually exercises both orders.
        let world = 4;
        let case = template_cases(world)
            .unwrap()
            .into_iter()
            .find(|c| c.name.ends_with("/pass_q_bidi"))
            .unwrap();
        let plan = case.template.ground(world, &case.tables).unwrap();
        let out_a = &case.tables[2];
        let out_b = &case.tables[3];
        let mut saw = [false; 2];
        for rank in &plan.ranks {
            let recvs: Vec<usize> = rank
                .ops
                .iter()
                .filter_map(|op| match op {
                    CommOp::Recv { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .collect();
            for pair in recvs.chunks(2) {
                let r = rank.rank;
                if pair[0] == out_a[r] && pair[1] == out_b[r] && out_a[r] != out_b[r] {
                    saw[0] = true;
                }
                if pair[0] == out_b[r] && pair[1] == out_a[r] && out_a[r] != out_b[r] {
                    saw[1] = true;
                }
            }
        }
        assert!(
            saw[0] && saw[1],
            "expected both A-first and B-first pairs: {saw:?}"
        );
    }

    #[test]
    fn symbolic_checker_rejects_every_mutation_class() {
        // Each mutation lands on a template with a site for it and is
        // caught by the expected law.
        let cases = [
            (
                pass_kv_template(),
                TemplateMutation::WrongRecvByteExpr,
                "ring-hop",
            ),
            (
                pass_q_template(),
                TemplateMutation::RotationOffByOne,
                "ring-hop",
            ),
            (
                pass_kv_template(),
                TemplateMutation::DropFinalHop,
                "coverage",
            ),
            (
                tp_all_reduce_template(),
                TemplateMutation::WrongCollectiveSend,
                "collective",
            ),
            (
                all_gather_baseline_template(),
                TemplateMutation::WrongCollectiveSend,
                "collective",
            ),
            (
                forward_template(2, true),
                TemplateMutation::WrongRecvByteExpr,
                "ring-hop",
            ),
            (
                pass_kv_bidi_template(),
                TemplateMutation::WrongRecvByteExpr,
                "ring-hop",
            ),
            (
                pass_q_bidi_template(),
                TemplateMutation::RotationOffByOne,
                "ring-hop",
            ),
            (
                decode_bidi_template(),
                TemplateMutation::DropFinalHop,
                "coverage",
            ),
            (
                pass_q_hier_template(2),
                TemplateMutation::DropFinalHop,
                "coverage",
            ),
            (
                pass_kv_bidi_hier_template(2),
                TemplateMutation::WrongRecvByteExpr,
                "ring-hop",
            ),
            (
                helix_decode_template(),
                TemplateMutation::WrongCollectiveSend,
                "collective",
            ),
            (
                tp_only_decode_template(),
                TemplateMutation::WrongCollectiveSend,
                "collective",
            ),
            (
                helix_layer_template(),
                TemplateMutation::WrongCollectiveSend,
                "collective",
            ),
        ];
        for (template, mutation, law) in cases {
            let name = template.name.clone();
            let mutant = apply_template_mutation(&template, mutation)
                .unwrap_or_else(|| panic!("{name}: no site for {}", mutation.tag()));
            let violations = check_template(&mutant);
            assert!(
                violations.iter().any(|v| v.to_string().contains(law)),
                "{name}+{}: expected a {law} violation, got {violations:?}",
                mutation.tag()
            );
        }
        // Templates without a site return None rather than a silent no-op.
        assert!(
            apply_template_mutation(&tp_all_reduce_template(), TemplateMutation::DropFinalHop)
                .is_none()
        );
        assert!(apply_template_mutation(
            &pass_kv_template(),
            TemplateMutation::WrongCollectiveSend
        )
        .is_none());
        // Collective-only decode families have no ring-hop sites.
        assert!(
            apply_template_mutation(&helix_decode_template(), TemplateMutation::DropFinalHop)
                .is_none()
        );
    }

    /// Skewed 3-rank prefill inputs: non-uniform Q/Out byte tables, so a
    /// wrong origin lookup grounds to genuinely different byte counts.
    fn skewed_locals() -> Vec<Vec<LocalSeq>> {
        let params = grid_params().unwrap();
        grid_locals(3, 2, true, params.shape)
    }

    fn expect_plan_violation(err: CoreError, what: &str) {
        match err {
            CoreError::Comm(CommError::PlanViolation { .. }) => {}
            other => panic!("{what}: expected PlanViolation, got {other:?}"),
        }
    }

    #[test]
    fn checked_fabric_catches_wrong_recv_byte_expr_at_runtime() {
        let params = grid_params().unwrap();
        let locals = skewed_locals();
        let tables = vec![q_bytes(&locals), out_bytes(&params, &locals)];
        let mutant =
            apply_template_mutation(&pass_q_template(), TemplateMutation::WrongRecvByteExpr)
                .unwrap();
        let plan = mutant.ground(3, &tables).unwrap();
        let fabric = CheckedFabric::new(plan);
        let err = run_ring_checked(&fabric, |comm| {
            ring_pass_q_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap_err();
        expect_plan_violation(err, "wrong-recv-byte-expr");
    }

    #[test]
    fn checked_fabric_catches_rotation_off_by_one_at_runtime() {
        let params = grid_params().unwrap();
        let locals = skewed_locals();
        let tables = vec![q_bytes(&locals), out_bytes(&params, &locals)];
        let mutant =
            apply_template_mutation(&pass_q_template(), TemplateMutation::RotationOffByOne)
                .unwrap();
        let plan = mutant.ground(3, &tables).unwrap();
        let fabric = CheckedFabric::new(plan);
        let err = run_ring_checked(&fabric, |comm| {
            ring_pass_q_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap_err();
        expect_plan_violation(err, "rotation-off-by-one");
    }

    #[test]
    fn checked_fabric_catches_dropped_final_hop_at_runtime() {
        let params = grid_params().unwrap();
        let locals = skewed_locals();
        let tables = vec![kv_bytes(&locals)];
        let mutant =
            apply_template_mutation(&pass_kv_template(), TemplateMutation::DropFinalHop).unwrap();
        let plan = mutant.ground(3, &tables).unwrap();
        // The grounded mutant is a *valid shorter ring*: concrete
        // check_plan accepts it. Only the symbolic coverage law (above)
        // and the runtime drain check here can tell it from the real
        // schedule — the leverage the template layer adds.
        assert!(check_plan(&plan).is_clean());
        let fabric = CheckedFabric::new(plan);
        let err = run_ring_checked(&fabric, |comm| {
            ring_pass_kv_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap_err();
        expect_plan_violation(err, "drop-final-hop");
    }

    #[test]
    fn checked_fabric_catches_wrong_collective_send_at_runtime() {
        // Per-rank payload lengths differ, so broadcasting a rotated
        // table entry declares byte counts the live all_gather breaks.
        let lens: Vec<usize> = vec![2, 3, 4];
        let tables = vec![lens.iter().map(|l| l * 4).collect::<Vec<usize>>()];
        let mutant = apply_template_mutation(
            &tp_all_gather_template(),
            TemplateMutation::WrongCollectiveSend,
        )
        .unwrap();
        let plan = mutant.ground(3, &tables).unwrap();
        let fabric = CheckedFabric::new(plan);
        let lens_ref = &lens;
        let err = fabric
            .run::<Vec<f32>, _, _>(|comm| comm.all_gather(vec![0.0f32; lens_ref[comm.rank()]]))
            .unwrap_err();
        match err {
            CommError::PlanViolation { .. } => {}
            other => panic!("wrong-collective-send: expected PlanViolation, got {other:?}"),
        }
    }

    /// Ragged 3-slot decode grids: `(r + s) % 2` padding gives per-rank
    /// real-slot counts `[2, 1, 2]` at world 3, so the Helix byte tables
    /// are genuinely non-uniform (the 2-slot grid used by
    /// `template_cases` degenerates to one real slot per rank).
    fn helix_grid() -> (Vec<Vec<Option<DecodeSlot>>>, Vec<SeqKv>) {
        let params = grid_params().unwrap();
        let shape = params.shape;
        let slots = grid_slots(3, 3, true, shape);
        let batch_kv: Vec<SeqKv> = (0..3)
            .map(|b| SeqKv {
                k: Tensor::zeros(&[b + 2, shape.n_kv_heads(), shape.head_dim()]),
                v: Tensor::zeros(&[b + 2, shape.n_kv_heads(), shape.head_dim()]),
                pos: (0..b + 2).collect(),
            })
            .collect();
        (slots, batch_kv)
    }

    #[test]
    fn checked_fabric_catches_wrong_helix_collective_send_at_runtime() {
        // A Helix-plan mutation caught end-to-end: the mutated template
        // declares each rank broadcasts a *rotated* DecodeQ table entry,
        // and the live `helix_decode` AllGather (which sends the rank's
        // own slots) breaks the declaration on the skewed tables.
        let params = grid_params().unwrap();
        let (slots, batch_kv) = helix_grid();
        let tables = vec![dq_bytes(&slots), dout_bytes(&params, &slots)];
        let mutant = apply_template_mutation(
            &helix_decode_template(),
            TemplateMutation::WrongCollectiveSend,
        )
        .unwrap();
        let plan = mutant.ground(3, &tables).unwrap();
        let fabric = CheckedFabric::new(plan);
        let slots_ref = &slots;
        let kv_ref = &batch_kv;
        let err = run_ring_checked(&fabric, |comm| {
            helix_decode(comm, &params, &slots_ref[comm.rank()], kv_ref)
        })
        .unwrap_err();
        expect_plan_violation(err, "wrong-helix-collective-send");
    }

    #[test]
    fn conforming_helix_template_runs_clean_under_checked_fabric() {
        // The unmutated grounded Helix template drives the real
        // `helix_decode` body end-to-end with zero violations and the
        // predicted traffic accounts every byte.
        let params = grid_params().unwrap();
        let (slots, batch_kv) = helix_grid();
        let tables = vec![dq_bytes(&slots), dout_bytes(&params, &slots)];
        let plan = helix_decode_template().ground(3, &tables).unwrap();
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let slots_ref = &slots;
        let kv_ref = &batch_kv;
        let (_, report) = run_ring_checked(&fabric, |comm| {
            helix_decode(comm, &params, &slots_ref[comm.rank()], kv_ref)
        })
        .unwrap();
        predicted.check_report(&report).unwrap();
    }

    #[test]
    fn conforming_templates_run_clean_under_checked_fabric() {
        // The unmutated grounded templates drive the real ring bodies
        // end-to-end with zero violations.
        let params = grid_params().unwrap();
        let locals = skewed_locals();
        let q_tables = vec![q_bytes(&locals), out_bytes(&params, &locals)];
        let plan = pass_q_template().ground(3, &q_tables).unwrap();
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (_, report) = run_ring_checked(&fabric, |comm| {
            ring_pass_q_prefill(comm, &params, &locals[comm.rank()])
        })
        .unwrap();
        predicted.check_report(&report).unwrap();
    }

    #[test]
    fn skewed_tables_are_actually_non_uniform() {
        // The runtime mutation tests rely on per-rank byte-table skew;
        // pin it so a grid refactor can't silently flatten the tables.
        let params = grid_params().unwrap();
        let locals = skewed_locals();
        let q = q_bytes(&locals);
        assert!(q.iter().any(|&b| b != q[0]), "{q:?}");
        let outs = out_bytes(&params, &locals);
        assert!(outs.iter().any(|&b| b != outs[0]), "{outs:?}");
        // The Helix runtime tests rely on skewed DecodeQ tables too.
        let (slots, _) = helix_grid();
        let dq = dq_bytes(&slots);
        assert!(dq.iter().any(|&b| b != dq[0]), "{dq:?}");
    }
}
