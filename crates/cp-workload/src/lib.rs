//! Synthetic workload generation for the context-parallel experiments.
//!
//! The paper evaluates on production-style traffic this reproduction does
//! not have: single long prompts (full prefill), multi-turn conversations
//! with persistent KV (partial prefill at varying cache-hit rates), and
//! batched decode. Every experiment only depends on the *shape* of that
//! traffic — sequence lengths, `(T, P)` splits, turn structure — so this
//! crate generates it synthetically, seeded and reproducible:
//!
//! * [`table4_grid`] — the exact 14 `(P, T)` rows of Table 4,
//! * [`context_sweep`] — the doubling context-length axis of Figures 6/8,
//! * [`ConversationPlan`] / [`conversations`] — multi-turn chats with
//!   configurable prompt/response length distributions,
//! * [`varseq_lengths`] — fused variable-length batch shapes,
//! * [`timed_trace`] / [`TimedRequest`] — Poisson-arrival trace replay
//!   (plus [`trace_token`] for the concrete token streams) feeding the
//!   `cp-serve` scheduler's admission queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One conversation turn: the user's prompt length and the assistant's
/// response length (both in tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Turn {
    /// User prompt tokens (prefilled).
    pub prompt_tokens: usize,
    /// Assistant response tokens (decoded, then part of the cache).
    pub response_tokens: usize,
}

/// A multi-turn conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conversation {
    /// The turns in order.
    pub turns: Vec<Turn>,
}

impl Conversation {
    /// Total context length after all turns.
    pub fn total_tokens(&self) -> usize {
        self.turns
            .iter()
            .map(|t| t.prompt_tokens + t.response_tokens)
            .sum()
    }

    /// The `(T, P)` prefill points this conversation produces: for each
    /// turn, the new prompt length and the cache length it sees.
    pub fn prefill_points(&self) -> Vec<(usize, usize)> {
        let mut cached = 0;
        let mut points = Vec::with_capacity(self.turns.len());
        for t in &self.turns {
            points.push((t.prompt_tokens, cached));
            cached += t.prompt_tokens + t.response_tokens;
        }
        points
    }

    /// KV-cache miss rate of the final turn's prefill.
    pub fn final_miss_rate(&self) -> f64 {
        match self.prefill_points().last() {
            Some(&(t, p)) if t + p > 0 => t as f64 / (t + p) as f64,
            _ => 0.0,
        }
    }
}

/// Parameters of a synthetic conversation distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConversationPlan {
    /// Turns per conversation (inclusive range).
    pub turns: (usize, usize),
    /// Prompt tokens per turn (inclusive range).
    pub prompt_tokens: (usize, usize),
    /// Response tokens per turn (inclusive range).
    pub response_tokens: (usize, usize),
}

impl ConversationPlan {
    /// A long-document-then-chat plan: a large first prompt followed by
    /// short follow-ups — the regime where persistent KV and pass-Q pay
    /// off (Table 4's low miss rates).
    pub fn long_document_chat() -> Self {
        ConversationPlan {
            turns: (3, 6),
            prompt_tokens: (16, 64),
            response_tokens: (8, 32),
        }
    }

    /// A short interactive chat plan.
    pub fn short_chat() -> Self {
        ConversationPlan {
            turns: (2, 8),
            prompt_tokens: (4, 24),
            response_tokens: (4, 24),
        }
    }
}

fn sample_range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi, "range must be non-decreasing");
    rng.random_range(lo..=hi)
}

/// Generates `n` conversations from a plan, deterministically from `seed`.
///
/// # Panics
///
/// Panics if any plan range is decreasing.
pub fn conversations(seed: u64, n: usize, plan: &ConversationPlan) -> Vec<Conversation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let n_turns = sample_range(&mut rng, plan.turns);
            Conversation {
                turns: (0..n_turns)
                    .map(|_| Turn {
                        prompt_tokens: sample_range(&mut rng, plan.prompt_tokens),
                        response_tokens: sample_range(&mut rng, plan.response_tokens),
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One request of a serving trace: a conversation plus its arrival time
/// (abstract time units — the scheduler replays arrivals in order and the
/// bench maps units to wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Stable request id (also seeds the request's token stream via
    /// [`trace_token`]).
    pub id: u64,
    /// Arrival time in abstract units, non-decreasing across the trace.
    pub arrival: f64,
    /// The conversation to serve.
    pub conversation: Conversation,
}

/// Generates a Poisson-arrival serving trace: `n` conversations from
/// `plan` with exponential inter-arrival times of mean
/// `mean_interarrival`, deterministically from `seed`.
///
/// # Panics
///
/// Panics if any plan range is decreasing or `mean_interarrival` is not
/// finite and non-negative.
pub fn timed_trace(
    seed: u64,
    n: usize,
    plan: &ConversationPlan,
    mean_interarrival: f64,
) -> Vec<TimedRequest> {
    assert!(
        mean_interarrival.is_finite() && mean_interarrival >= 0.0,
        "mean inter-arrival must be finite and non-negative"
    );
    let convs = conversations(seed, n, plan);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA55A_5AA5_55AA_AA55);
    let mut clock = 0.0;
    convs
        .into_iter()
        .enumerate()
        .map(|(i, conversation)| {
            // Inverse-CDF exponential; u in [0, 1) keeps ln(1 - u) finite.
            let u: f64 = rng.random_range(0.0..1.0);
            clock += -mean_interarrival * (1.0 - u).ln();
            TimedRequest {
                id: i as u64,
                arrival: clock,
                conversation,
            }
        })
        .collect()
}

/// The `index`-th token of request `request`'s deterministic token
/// stream, in `[0, vocab)` — how trace replays synthesize concrete token
/// ids (prompts and decoded continuations) without a tokenizer, stably
/// across runs and engines.
pub fn trace_token(request: u64, index: usize, vocab: u32) -> u32 {
    // splitmix64 finalizer over (request, index).
    let mut z = request
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % u64::from(vocab.max(1))) as u32
}

/// Sequence lengths for a fused variable-length batch, uniform in
/// `[min_len, max_len]`.
///
/// # Panics
///
/// Panics if `min_len > max_len`.
pub fn varseq_lengths(seed: u64, batch: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batch)
        .map(|_| sample_range(&mut rng, (min_len, max_len)))
        .collect()
}

/// The exact `(P, T)` rows of Table 4: `P + T = total`, miss rates 1%,
/// 2.5%, 3.25%, 5%, 10%, 20%, ..., 100%. With `total = 128000` this is
/// the paper's table verbatim.
pub fn table4_grid(total: usize) -> Vec<(usize, usize)> {
    let fracs = [
        0.01, 0.025, 0.0325, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00,
    ];
    fracs
        .iter()
        .map(|f| {
            let t = ((total as f64) * f).round() as usize;
            (total - t, t)
        })
        .collect()
}

/// Doubling context-length sweep `[min, 2*min, ..., <= max]` — the x-axis
/// of Figures 6 and 8.
pub fn context_sweep(min: usize, max: usize) -> Vec<usize> {
    assert!(min > 0, "sweep must start above zero");
    let mut v = Vec::new();
    let mut c = min;
    while c <= max {
        v.push(c);
        c *= 2;
    }
    v
}

/// A dense grid of `(T, P)` points in log-T and log-miss space for fitting
/// the Appendix D empirical heuristic (Figure 10's scatter).
pub fn heuristic_fit_grid(
    t_points: &[usize],
    miss_denominators: &[usize],
    max_total: usize,
) -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for &t in t_points {
        if t == 0 {
            continue;
        }
        for &d in miss_denominators {
            let total = t.saturating_mul(d.max(1));
            if total > max_total || total < t {
                continue;
            }
            grid.push((t, total - t));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_rows() {
        let grid = table4_grid(128_000);
        assert_eq!(grid.len(), 14);
        // Paper's first and last rows: (126720, 1280) and (0, 128000).
        assert_eq!(grid[0], (126_720, 1_280));
        assert_eq!(grid[3], (121_600, 6_400)); // the 5% tipping point
        assert_eq!(grid[4], (115_200, 12_800)); // 10%
        assert_eq!(grid[13], (0, 128_000));
        // All rows sum to the total.
        assert!(grid.iter().all(|&(p, t)| p + t == 128_000));
    }

    #[test]
    fn context_sweep_doubles() {
        assert_eq!(
            context_sweep(2_000, 128_000),
            vec![2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000]
        );
        assert_eq!(context_sweep(5, 4), Vec::<usize>::new());
    }

    #[test]
    fn conversations_are_deterministic_and_in_range() {
        let plan = ConversationPlan::long_document_chat();
        let a = conversations(1, 10, &plan);
        let b = conversations(1, 10, &plan);
        assert_eq!(a, b);
        let c = conversations(2, 10, &plan);
        assert_ne!(a, c);
        for conv in &a {
            assert!(conv.turns.len() >= plan.turns.0 && conv.turns.len() <= plan.turns.1);
            for t in &conv.turns {
                assert!(
                    t.prompt_tokens >= plan.prompt_tokens.0
                        && t.prompt_tokens <= plan.prompt_tokens.1
                );
                assert!(
                    t.response_tokens >= plan.response_tokens.0
                        && t.response_tokens <= plan.response_tokens.1
                );
            }
        }
    }

    #[test]
    fn prefill_points_accumulate_cache() {
        let conv = Conversation {
            turns: vec![
                Turn {
                    prompt_tokens: 10,
                    response_tokens: 5,
                },
                Turn {
                    prompt_tokens: 3,
                    response_tokens: 2,
                },
                Turn {
                    prompt_tokens: 7,
                    response_tokens: 1,
                },
            ],
        };
        assert_eq!(conv.prefill_points(), vec![(10, 0), (3, 15), (7, 20)]);
        assert_eq!(conv.total_tokens(), 28);
        assert!((conv.final_miss_rate() - 7.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_falls_over_turns() {
        // Later turns see more cache: the miss rate of successive prefill
        // points is (weakly) dominated by earlier ones for equal prompts.
        let conv = Conversation {
            turns: (0..5)
                .map(|_| Turn {
                    prompt_tokens: 10,
                    response_tokens: 10,
                })
                .collect(),
        };
        let rates: Vec<f64> = conv
            .prefill_points()
            .iter()
            .map(|&(t, p)| t as f64 / (t + p) as f64)
            .collect();
        assert!(rates.windows(2).all(|w| w[1] < w[0]), "{rates:?}");
    }

    #[test]
    fn varseq_lengths_deterministic_in_range() {
        let a = varseq_lengths(7, 16, 3, 9);
        assert_eq!(a, varseq_lengths(7, 16, 3, 9));
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&l| (3..=9).contains(&l)));
        // Degenerate range works.
        assert!(varseq_lengths(7, 4, 5, 5).iter().all(|&l| l == 5));
    }

    #[test]
    fn heuristic_grid_respects_caps() {
        let grid = heuristic_fit_grid(&[100, 1000], &[1, 2, 10], 5_000);
        assert!(grid.contains(&(100, 0)));
        assert!(grid.contains(&(100, 900)));
        assert!(grid.contains(&(1000, 1000)));
        // 1000 * 10 exceeds the cap.
        assert!(!grid.contains(&(1000, 9000)));
        // Zero-t points are skipped.
        assert!(heuristic_fit_grid(&[0], &[1], 100).is_empty());
    }

    #[test]
    fn timed_trace_is_deterministic_with_ordered_arrivals() {
        let plan = ConversationPlan::short_chat();
        let a = timed_trace(9, 20, &plan, 4.0);
        assert_eq!(a, timed_trace(9, 20, &plan, 4.0));
        assert_eq!(a.len(), 20);
        // Arrivals are strictly positive and non-decreasing; ids are stable.
        assert!(a[0].arrival > 0.0);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
        // Conversations match the untimed generator (same seed).
        let convs = conversations(9, 20, &plan);
        assert!(a.iter().zip(&convs).all(|(r, c)| &r.conversation == c));
        // Zero mean inter-arrival degenerates to all-at-once admission.
        assert!(timed_trace(9, 5, &plan, 0.0)
            .iter()
            .all(|r| r.arrival == 0.0));
    }

    #[test]
    fn trace_tokens_are_stable_in_vocab_and_spread() {
        let a: Vec<u32> = (0..64).map(|i| trace_token(3, i, 128)).collect();
        let b: Vec<u32> = (0..64).map(|i| trace_token(3, i, 128)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < 128));
        // Different requests get different streams.
        let c: Vec<u32> = (0..64).map(|i| trace_token(4, i, 128)).collect();
        assert_ne!(a, c);
        // Degenerate vocab never divides by zero.
        assert_eq!(trace_token(1, 1, 0), 0);
    }

    #[test]
    fn empty_conversation_is_safe() {
        let conv = Conversation { turns: vec![] };
        assert_eq!(conv.total_tokens(), 0);
        assert_eq!(conv.final_miss_rate(), 0.0);
        assert!(conv.prefill_points().is_empty());
    }
}
