//! Capacity and deployment planning with the calibrated models: how many
//! CP nodes does a target context length need (memory *and* latency), and
//! what does disaggregating prefill from decode buy (§4.3)?
//!
//! ```bash
//! cargo run --release --example capacity_planner
//! ```

use cp_perf::memory::{max_context, memory_budget, min_nodes_for};
use cp_perf::serve::{simulate, uniform_trace, Deployment};
use cp_perf::{decode, prefill, HardwareSpec, ModelSpec};

fn main() {
    let model = ModelSpec::llama3_405b();
    let hw = HardwareSpec::gtt();

    println!("=== KV-cache capacity: {} on {} ===\n", model.name, hw.name);
    let b1 = memory_budget(&model, &hw, 1);
    println!(
        "per GPU: {:.1} GB weights + {:.1} GB reserve of {:.0} GB HBM -> {:.1} GB for KV",
        b1.weights_per_gpu / 1e9,
        b1.reserve_per_gpu / 1e9,
        hw.hbm_capacity_gb,
        b1.kv_budget_per_gpu / 1e9
    );
    println!(
        "KV cost: {:.1} KB per token per GPU ({} layers, {} KV heads / TP8, BF16)\n",
        b1.kv_per_token_per_gpu / 1e3,
        model.n_layers,
        model.n_kv_heads
    );
    println!(
        "{:>7} | {:>16} {:>16} {:>14}",
        "nodes", "max ctx (B=1)", "max ctx (B=4)", "1M TTFT"
    );
    for n in [1usize, 2, 4, 8, 16] {
        let c1 = max_context(&model, &hw, n, 1);
        let c4 = max_context(&model, &hw, n, 4);
        let ttft = if c1 >= 1_000_000 {
            format!(
                "{:>9.1}s",
                prefill::cp_full_prefill_s(&model, &hw, n, 1_000_000)
            )
        } else {
            "   (OOM)".to_string()
        };
        println!("{n:>7} | {c1:>16} {c4:>16} {ttft:>14}");
    }
    println!(
        "\nminimum nodes for 1M context: {} by memory; the paper uses 8-16 for latency",
        min_nodes_for(&model, &hw, 1_000_000, 1)
    );

    println!("\n=== Deployment: co-located vs disaggregated (§4.3) ===\n");
    // A decode-heavy open-loop trace: 64K prompts, 800-token responses,
    // one request every 5 seconds.
    let trace = uniform_trace(8, 5.0, 64_000, 800);
    let colo = simulate(&model, &hw, Deployment::Colocated { n_nodes: 4 }, &trace);
    let disagg = simulate(
        &model,
        &hw,
        Deployment::Disaggregated {
            prefill_nodes: 4,
            decode_replicas: 4,
        },
        &trace,
    );
    println!("trace: 8 requests, 64K prompt + 800 decode tokens, 5s apart");
    println!(
        "{:>14} | {:>10} {:>10} {:>9} {:>10}",
        "deployment", "mean TTFT", "max TTFT", "TTIT", "makespan"
    );
    for (name, r) in [("co-located", &colo), ("disaggregated", &disagg)] {
        println!(
            "{name:>14} | {:>9.1}s {:>9.1}s {:>7.1}ms {:>9.1}s",
            r.mean_ttft_s,
            r.max_ttft_s,
            r.mean_ttit_s * 1e3,
            r.makespan_s
        );
    }
    println!(
        "\n(co-located CP4: each request's {:.0}s decode tail blocks the next prefill;\n disaggregation overlaps them and decodes on TP8 at {:.1}ms/token vs CP4's {:.1}ms)",
        800.0 * colo.mean_ttit_s,
        disagg.mean_ttit_s * 1e3,
        decode::cp_ttit_s(&model, &hw, 4, 64_000, 1) * 1e3
    );
}
