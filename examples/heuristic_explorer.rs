//! Explore the pass-KV vs pass-Q decision space: Algorithms 1 and 5, the
//! refitted Appendix D empirical model, and the oracle — an interactive
//! map of Figure 10.
//!
//! ```bash
//! cargo run --release --example heuristic_explorer
//! ```

use cp_core::heuristics::{
    choose_variant, empirical_h, fit_empirical, selection_accuracy, HeuristicKind, SystemContext,
    PAPER_EMPIRICAL,
};
use cp_perf::{ranked_decode_strategies, DecodeStrategy, ModelSpec, RingVariant, TopologySpec};
use cp_workload::{heuristic_fit_grid, table4_grid};

fn mark(v: RingVariant) -> &'static str {
    match v {
        RingVariant::PassKv => "K",
        RingVariant::PassQ => "q",
    }
}

fn main() {
    let ctx = SystemContext::llama3_405b_gtt(4);
    println!(
        "system: {} nodes, Eq.2 threshold T* = {:.0} new tokens, Eq.1 miss threshold = {:.1}%\n",
        ctx.n_nodes,
        ctx.pass_kv_overlap_threshold(),
        ctx.model.pass_q_miss_threshold() * 100.0
    );

    // Table 4's grid with every heuristic.
    println!("Table 4 grid (T+P = 128000, CP4) — selections per heuristic:");
    println!(
        "{:>8} {:>8} {:>7} | {:>6} {:>6} {:>6} {:>6}",
        "P", "T", "miss%", "Alg1", "Alg5", "emp.", "oracle"
    );
    let fit_grid = heuristic_fit_grid(
        &(7..18).map(|l| 1usize << l).collect::<Vec<_>>(),
        &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128],
        1 << 20,
    );
    let (alpha, beta, gamma) = fit_empirical(&ctx, &fit_grid);
    let fitted = HeuristicKind::Empirical { alpha, beta, gamma };
    for (p, t) in table4_grid(128_000) {
        println!(
            "{:>8} {:>8} {:>7.2} | {:>6} {:>6} {:>6} {:>6}",
            p,
            t,
            100.0 * t as f64 / 128_000.0,
            mark(choose_variant(HeuristicKind::Threshold, &ctx, t, p)),
            mark(choose_variant(HeuristicKind::All2AllAware, &ctx, t, p)),
            mark(choose_variant(fitted, &ctx, t, p)),
            mark(choose_variant(HeuristicKind::Oracle, &ctx, t, p)),
        );
    }

    // Figure 10: the (T, miss-rate) decision map of the fitted model.
    println!(
        "\nfitted empirical model (this system): h = {alpha:.3}*ln(T) + {beta:.3}*ln(miss) + {gamma:.3}"
    );
    println!("(paper's testbed fit: -1.059*ln(T) + 1.145*ln(miss) + 12.112)\n");
    println!("decision map: rows = miss rate, cols = T; K = pass-KV, q = pass-Q, * = fitted disagrees with oracle");
    let t_axis: Vec<usize> = (7..18).map(|l| 1usize << l).collect();
    print!("{:>7} ", "miss%");
    for &t in &t_axis {
        print!("{:>7}", t);
    }
    println!();
    for denom in [64usize, 32, 16, 12, 8, 6, 4, 3, 2, 1] {
        print!("{:>6.1}% ", 100.0 / denom as f64);
        for &t in &t_axis {
            let p = t * denom - t;
            let fit = choose_variant(fitted, &ctx, t, p);
            let oracle = choose_variant(HeuristicKind::Oracle, &ctx, t, p);
            let c = if fit == oracle {
                mark(fit).to_string()
            } else {
                format!("{}*", mark(fit))
            };
            print!("{c:>7}");
        }
        println!();
    }

    // Accuracy summary over the dense grid.
    println!(
        "\nselection accuracy vs oracle over {} grid points:",
        fit_grid.len()
    );
    for (name, kind) in [
        ("Algorithm 1 (threshold)", HeuristicKind::Threshold),
        ("Algorithm 5 (All2All-aware)", HeuristicKind::All2AllAware),
        ("empirical (refit, this system)", fitted),
        ("empirical (paper constants)", PAPER_EMPIRICAL),
    ] {
        println!(
            "  {name:<32} {:>6.1}%",
            100.0 * selection_accuracy(kind, &ctx, &fit_grid)
        );
    }

    // A sample of h values along the boundary.
    println!("\nsample h(T, P) values at 5% miss:");
    for t in [1_000usize, 4_000, 16_000, 64_000] {
        let p = 19 * t;
        println!(
            "  T={t:>6}: h = {:+.2} -> {}",
            empirical_h(alpha, beta, gamma, t, p),
            mark(choose_variant(fitted, &ctx, t, p))
        );
    }

    // Decode-strategy map: which of batched pass-Q / Helix / TP-only the
    // Appendix-D comm terms rank first, across context length and world
    // size. TP-only ships O(T) KV bytes per token so it only survives at
    // W = 1 (where it issues no collectives at all); pass-Q's (W-1)
    // serialized hops lose to Helix's two fused collectives as latency
    // or W grows.
    let model = ModelSpec::llama3_405b();
    println!("\ndecode strategy map (Llama3-405B, batch 8): rows = topology, cols = context T");
    let t_axis: Vec<usize> = (13..=20).map(|l| 1usize << l).collect();
    print!("{:>32}", "topology \\ T  ");
    for &t in &t_axis {
        print!("{:>9}", t);
    }
    println!();
    for (label, mk_topo) in [
        (
            "NVLink-ish (400GB/s, 2us)",
            (|w| TopologySpec::uniform(w, 400.0, 2.0)) as fn(usize) -> TopologySpec,
        ),
        ("RDMA-ish (50GB/s, 10us)", |w| {
            TopologySpec::uniform(w, 50.0, 10.0)
        }),
        ("TCP-ish (10GB/s, 50us)", |w| {
            TopologySpec::uniform(w, 10.0, 50.0)
        }),
    ] {
        for w in [1usize, 2, 4, 8, 16] {
            print!("{label:>26} W={w:<3}");
            for &t in &t_axis {
                let ranked = ranked_decode_strategies(&model, &mk_topo(w), t, 8);
                let c = match ranked[0].0 {
                    DecodeStrategy::PassQ => "q",
                    DecodeStrategy::Helix => "H",
                    DecodeStrategy::TpOnly => "tp",
                };
                print!("{c:>9}");
            }
            println!();
        }
    }
    println!("(q = batched pass-Q, H = Helix, tp = TP-only)");

    // The full ranking with modeled comm seconds at one representative
    // long-context point.
    let topo = TopologySpec::uniform(8, 50.0, 10.0);
    println!("\nranked decode strategies at T = 1M, W = 8, RDMA-ish (modeled comm s/token):");
    for (strategy, secs) in ranked_decode_strategies(&model, &topo, 1 << 20, 8) {
        println!("  {:<8} {secs:.3e}", strategy.name());
    }
}
