//! Million-token prefill on the simulated Grand Teton clusters: reproduces
//! the paper's headline scaling results (Figures 6 and 8, Appendix A)
//! using the calibrated performance model.
//!
//! ```bash
//! cargo run --release --example million_token_prefill
//! ```

use cp_perf::{mfu, prefill, tp, HardwareSpec, ModelSpec, RingVariant};
use cp_workload::context_sweep;

fn main() {
    let model = ModelSpec::llama3_405b();
    let gtt = HardwareSpec::gtt();
    let gti = HardwareSpec::gti();

    println!("Llama3 405B full prefill TTFT (simulated {})\n", gtt.name);
    println!(
        "{:>10} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "tokens", "CP1", "CP2", "CP4", "CP8", "CP16"
    );
    for t in context_sweep(2_000, 128_000) {
        print!("{t:>10} |");
        for n in [1usize, 2, 4, 8, 16] {
            let s = prefill::cp_full_prefill_s(&model, &gtt, n, t);
            print!(" {s:>7.2}s");
        }
        println!();
    }

    println!("\nscaling to 1M tokens (Figure 8):");
    println!("{:>10} | {:>9} {:>9}", "tokens", "CP8", "CP16");
    for t in context_sweep(128_000, 1_024_000) {
        let c8 = prefill::cp_full_prefill_s(&model, &gtt, 8, t);
        let c16 = prefill::cp_full_prefill_s(&model, &gtt, 16, t);
        println!("{t:>10} | {c8:>8.1}s {c16:>8.1}s");
    }

    let t1m = 1_000_000;
    let s = prefill::cp_full_prefill_s(&model, &gtt, 16, t1m);
    let report = mfu::mfu_report(&model, &gtt, t1m, 128, s);
    println!(
        "\n1M tokens on 128 H100s: {:.0}s | {:.0} TF/s/GPU | {:.0}% parallel efficiency | {:.0}% MFU",
        s,
        report.achieved_tflops_per_gpu,
        report.parallelization_efficiency * 100.0,
        report.mfu * 100.0
    );
    println!("(paper: 77s, 502 TF/s, 93%, ~63%)");

    println!("\nCP vs multi-node TP at 128K (Figure 7 / Table 7):");
    println!(
        "{:>7} | {:>10} {:>10} | {:>8} {:>8}",
        "nodes", "CP TTFT", "TP TTFT", "CP x", "TP x"
    );
    let cp1 = prefill::cp_full_prefill_s(&model, &gtt, 1, 128_000);
    let tp1 = tp::tp_prefill(&model, &gtt, 1, 128_000).total_s;
    for n in [1usize, 2, 4, 8] {
        let cp = prefill::cp_full_prefill_s(&model, &gtt, n, 128_000);
        let tpl = tp::tp_prefill(&model, &gtt, n, 128_000).total_s;
        println!(
            "{n:>7} | {cp:>9.2}s {tpl:>9.2}s | {:>7.2}x {:>7.2}x",
            cp1 / cp,
            tp1 / tpl
        );
    }

    println!("\nGTI (TCP front-end, ~3 GB/s) still scales for long context (Figure 6b):");
    for n in [1usize, 2, 4] {
        let b = prefill::cp_prefill(&model, &gti, n, 128_000, 0, RingVariant::PassKv);
        println!(
            "  CP{n}: {:>7.2}s  (per-iter SendRecv {:.0}us vs ATTN {:.0}us -> {})",
            b.total_s,
            b.iter.sendrecv_us,
            b.iter.attn_us,
            if b.iter.sendrecv_us <= b.iter.attn_us {
                "fully overlapped"
            } else {
                "comm exposed"
            }
        );
    }
}
