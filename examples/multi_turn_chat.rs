//! Multi-turn chat over the context-parallel engine: persistent KV cache,
//! heuristic pass-KV/pass-Q switching, and decode — the workload of §3.3
//! and Table 4 of the paper.
//!
//! ```bash
//! cargo run --release --example multi_turn_chat
//! ```

use cp_attention::GqaShape;
use cp_core::heuristics::SystemContext;
use cp_core::{ChatSession, ContextParallelEngine, EngineConfig, ToyProjector};
use cp_kvcache::SeqId;
use cp_perf::HardwareSpec;
use cp_workload::{conversations, ConversationPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = GqaShape::new(8, 2, 16)?;
    let n_ranks = 2;
    // Evaluate heuristics as if serving Llama3 405B over a low-bandwidth
    // GTI (TCP) cluster, where pass-Q's window is widest.
    let system = SystemContext {
        model: cp_perf::ModelSpec::llama3_405b(),
        hw: HardwareSpec::gti(),
        n_nodes: n_ranks,
    };
    let mut engine = ContextParallelEngine::new(
        EngineConfig::new(n_ranks, shape)
            .with_page_size(32)
            .with_system(system),
    )?;

    println!("multi-turn chat on {n_ranks} CP ranks (persistent KV cache)\n");

    // A "long document then chat" conversation: big first prompt, short
    // follow-ups — exactly the regime where KV-cache hit rates climb and
    // the engine flips from pass-KV to pass-Q.
    let plan = ConversationPlan {
        turns: (4, 4),
        prompt_tokens: (6, 12),
        response_tokens: (4, 10),
    };
    let conv = &conversations(7, 1, &plan)[0];

    let projector = ToyProjector::new(shape, 2025);
    let mut session = ChatSession::new(&mut engine, projector, SeqId(0));

    // Turn 0: paste a long document.
    let document: Vec<u32> = (0..512).map(|i| (i * 31 % 997) as u32).collect();
    let (stats, _) = session.user_turn(&document)?;
    println!(
        "turn 0 (document): T={:4} P={:5} miss={:6.2}% -> {:8} | est. TTFT on 405B/GTI: {:.2}s",
        stats.new_tokens,
        stats.cached_tokens,
        stats.miss_rate * 100.0,
        stats.variant.to_string(),
        stats.estimated_ttft_s
    );
    let (reply, ttit) = session.assistant_turn(8)?;
    println!(
        "          assistant: {} tokens (est. TTIT {:.1} ms), e.g. {:?}",
        reply.len(),
        ttit * 1e3,
        &reply[..3.min(reply.len())]
    );

    // Follow-up turns: short questions against the big cached context.
    for (i, turn) in conv.turns.iter().enumerate() {
        let prompt: Vec<u32> = (0..turn.prompt_tokens as u32).map(|x| x + 1000).collect();
        let (stats, _) = session.user_turn(&prompt)?;
        println!(
            "turn {} (question): T={:4} P={:5} miss={:6.2}% -> {:8} | est. TTFT: {:.2}s",
            i + 1,
            stats.new_tokens,
            stats.cached_tokens,
            stats.miss_rate * 100.0,
            stats.variant.to_string(),
            stats.estimated_ttft_s
        );
        let (reply, _) = session.assistant_turn(turn.response_tokens)?;
        println!("          assistant: {} tokens", reply.len());
    }

    println!(
        "\nconversation done: {} tokens of context, per-rank KV shards {:?}",
        session.context_len(),
        engine.rank_kv_lens(SeqId(0))?
    );
    println!("(note the pass-KV -> pass-Q switch as the miss rate falls — Algorithm 1 at work)");
    Ok(())
}
