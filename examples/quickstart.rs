//! Quickstart: run an exact context-parallel prefill + decode across 4
//! simulated CP ranks and verify it against single-device attention.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cp_attention::GqaShape;
use cp_core::baseline::single_device_prefill;
use cp_core::{ContextParallelEngine, EngineConfig};
use cp_kvcache::SeqId;
use cp_tensor::DetRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small GQA model: 8 query heads sharing 2 KV heads, head_dim 16.
    let shape = GqaShape::new(8, 2, 16)?;
    let n_ranks = 4;
    let mut engine = ContextParallelEngine::new(EngineConfig::new(n_ranks, shape))?;

    println!("context-parallel quickstart: {n_ranks} ranks, {shape:?}\n");

    // --- Full prefill -----------------------------------------------------
    let t = 256;
    let mut rng = DetRng::new(42);
    let q = rng.tensor(&[t, shape.n_heads(), shape.head_dim()]);
    let k = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);
    let v = rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]);

    let seq = SeqId(0);
    let outcome = engine.full_prefill(seq, &q, &k, &v)?;
    println!(
        "full prefill: {} tokens via {} | ring traffic: {}",
        outcome.new_tokens, outcome.variant, outcome.traffic
    );

    // Verify losslessness against a single device.
    let pos: Vec<usize> = (0..t).collect();
    let reference = single_device_prefill(&q, &k, &v, engine.params(), &pos, &pos)?;
    let max_err = outcome.output.out.max_abs_diff(&reference.out)?;
    println!("max |distributed - single_device| = {max_err:.2e} (exact ring attention)");
    assert!(outcome.output.out.approx_eq(&reference.out, 1e-3)?);

    // KV cache is spread across ranks (the capacity story).
    println!(
        "per-rank KV shard sizes: {:?} (sum = {})",
        engine.rank_kv_lens(seq)?,
        engine.context_len(seq)?
    );

    // --- Partial prefill (a follow-up prompt hits the persistent cache) ---
    let t2 = 32;
    let q2 = rng.tensor(&[t2, shape.n_heads(), shape.head_dim()]);
    let k2 = rng.tensor(&[t2, shape.n_kv_heads(), shape.head_dim()]);
    let v2 = rng.tensor(&[t2, shape.n_kv_heads(), shape.head_dim()]);
    let outcome2 = engine.partial_prefill(seq, &q2, &k2, &v2)?;
    println!(
        "\npartial prefill: T={} against P={} cached (miss rate {:.1}%), heuristic chose {}",
        outcome2.new_tokens,
        outcome2.cached_tokens,
        100.0 * outcome2.new_tokens as f64 / (outcome2.new_tokens + outcome2.cached_tokens) as f64,
        outcome2.variant,
    );

    // --- Decode ------------------------------------------------------------
    for step in 0..3 {
        let q1 = rng.tensor(&[1, shape.n_heads(), shape.head_dim()]);
        let k1 = rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]);
        let v1 = rng.tensor(&[1, shape.n_kv_heads(), shape.head_dim()]);
        let out = engine.decode_step(&[(seq, q1, k1, v1)])?;
        println!(
            "decode step {step}: 1 token, ring pass-Q traffic {} B",
            out.traffic.send_recv_bytes + out.traffic.all_to_all_bytes
        );
    }
    println!(
        "\nfinal context length: {} tokens, per-rank shards {:?}",
        engine.context_len(seq)?,
        engine.rank_kv_lens(seq)?
    );
    Ok(())
}
