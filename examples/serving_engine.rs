//! End-to-end serving of a multi-layer transformer under context
//! parallelism: multi-turn prefill with persistent per-layer distributed
//! KV caches, heuristic pass-KV/pass-Q switching, and rotating pass-Q
//! decode — verified live against the single-device incremental
//! reference.
//!
//! ```bash
//! cargo run --release --example serving_engine
//! ```

use cp_model::{Transformer, TransformerConfig};
use cp_serve::{ReferenceSession, TransformerEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TransformerConfig::small();
    let model = Transformer::new(&config, 77);
    let n_ranks = 4;
    let mut engine = TransformerEngine::new(model.clone(), n_ranks)?;
    let mut reference = ReferenceSession::new(model);

    println!(
        "serving a {}-layer transformer (D={}) on {n_ranks} CP ranks\n",
        config.n_layers,
        config.model_dim()
    );

    // Turn 1: a document prefill.
    let document: Vec<u32> = (0..120).map(|i| i * 13 % 997).collect();
    let out = engine.prefill(&document)?;
    let expected = reference.process(&document)?;
    println!(
        "turn 1 prefill: {} tokens via {} | {} layers of ring traffic: {} B | max err vs reference {:.2e}",
        document.len(),
        out.variant.expect("prefill reports its variant"),
        config.n_layers,
        out.traffic.send_recv_bytes,
        out.activations.max_abs_diff(&expected)?
    );

    // Assistant decodes a few tokens (each lands on a rotating rank).
    print!("decode: ");
    for tok in 500..506 {
        let d = engine.decode(tok)?;
        let e = reference.process(&[tok])?;
        assert!(d.activations.approx_eq(&e, 5e-3)?);
        print!("{tok} ");
    }
    println!("\nper-rank KV after decode: {:?}", engine.rank_kv_lens()?);

    // Turn 2: a short follow-up against the persistent cache.
    let follow: Vec<u32> = vec![7, 8, 9];
    let out2 = engine.prefill(&follow)?;
    let expected2 = reference.process(&follow)?;
    println!(
        "turn 2 prefill: {} new tokens against {} cached via {} | max err {:.2e}",
        follow.len(),
        engine.context_len() - follow.len(),
        out2.variant.expect("prefill reports its variant"),
        out2.activations.max_abs_diff(&expected2)?
    );

    println!(
        "\ncontext: {} tokens, distributed {:?} across ranks — all exact to f32 noise",
        engine.context_len(),
        engine.rank_kv_lens()?
    );
    Ok(())
}
