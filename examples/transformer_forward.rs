//! Run a full multi-layer GQA transformer (RMSNorm + RoPE + SwiGLU) under
//! context parallelism and verify the whole-stack forward is exact: every
//! rank executes all layers on its token shard, with ring pass-KV
//! attention as the only cross-rank operation per layer — the paper's
//! execution structure, end to end.
//!
//! ```bash
//! cargo run --release --example transformer_forward
//! ```

use cp_model::{cp_forward, tp, Linear, Transformer, TransformerConfig};
use cp_tensor::DetRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TransformerConfig::small();
    let model = Transformer::new(&config, 2025);
    let t = 96;
    let tokens: Vec<u32> = (0..t as u32).map(|i| i * 17 % 1000).collect();

    println!(
        "transformer: {} layers, D={}, {} Q heads / {} KV heads, {} tokens\n",
        config.n_layers,
        config.model_dim(),
        config.shape.n_heads(),
        config.shape.n_kv_heads(),
        t
    );

    let reference = model.forward(&tokens)?;
    println!(
        "single-device forward done ({:?} activations)",
        reference.shape()
    );

    println!("\ncontext-parallel forward (ring pass-KV per layer):");
    for n in [1usize, 2, 4] {
        let (out, traffic) = cp_forward(&model, &tokens, n)?;
        let err = out.max_abs_diff(&reference)?;
        println!(
            "  CP{n}: max |err| = {err:.2e} | ring traffic {:>8} B over {} layers ({} B/layer)",
            traffic.send_recv_bytes,
            config.n_layers,
            traffic.send_recv_bytes / config.n_layers.max(1)
        );
        assert!(out.approx_eq(&reference, 3e-3)?);
    }

    // Contrast with tensor parallelism's communication pattern: one
    // column->row Megatron pair (= half a transformer block's AllReduce
    // load) on the same fabric.
    println!("\ntensor-parallel Megatron pair (column + row split, AllReduce):");
    let d = config.model_dim();
    let x = DetRng::new(5).tensor(&[t, d]);
    let w_a = Linear::new(d, d, 1);
    let w_b = Linear::new(d, d, 2);
    for n in [2usize, 4] {
        let (_, traffic) = tp::tp_linear_pair(&x, &w_a, &w_b, n)?;
        println!(
            "  TP{n}: AllReduce traffic {:>9} B for one linear pair",
            traffic.all_gather_bytes
        );
    }
    println!(
        "\n(Table 2's point on real bytes: TP pays activation-sized AllReduces per block;\n CP pays one KV-sized SendRecv ring per block — {}x fewer KV than Q heads here.)",
        config.shape.group_size()
    );
    Ok(())
}
