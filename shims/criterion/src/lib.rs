//! Offline stand-in for the `criterion` crate.
//!
//! A plain wall-clock harness with criterion's bench-definition API surface
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_with_setup`, `criterion_group!`, `criterion_main!`). Per benchmark
//! it runs a warmup pass, then `sample_size` timed samples, and prints the
//! min/mean/max per-iteration time. No statistical analysis, HTML reports,
//! or outlier rejection — just honest timings that make A/B comparisons in
//! this repo possible without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (string or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Per-sample wall times of the routine only (setup excluded).
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Times `routine` for `sample_size` samples after one warmup call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine(setup())`, excluding `setup` from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_name:<60} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{:<60} time: [{} {} {}]",
        full_name,
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, 20, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // one warmup + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher::new(2);
        b.iter_with_setup(|| vec![1u8; 16], |v| v.len());
        assert_eq!(b.samples.len(), 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("blocked", 64).into_id(), "blocked/64");
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
    }
}
