//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError, TryRecvError}`, all of which `std::sync::mpsc` provides
//! with identical semantics for our purposes (unbounded buffering, FIFO per
//! pair, sender disconnect surfacing as `RecvTimeoutError::Disconnected`).
//! This crate lets the workspace build in environments with no crates.io
//! access.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded channel, mirroring `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
    }

    #[test]
    fn disconnect_is_detected() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
