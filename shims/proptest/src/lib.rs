//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the [`Strategy`]
//! trait (ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`) and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Unlike real proptest there is
//! no shrinking — a failing case reports its deterministic case index so it
//! can be replayed by rerunning the test. Sampling is seeded per
//! (test-name, case), so runs are fully reproducible.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property (produced by `prop_assert!`-style macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic splitmix64 RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name and case index (FNV-1a over the name).
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values. Object-safe: combinators that need
    /// `Sized` carry a `where Self: Sized` bound so `Box<dyn Strategy>`
    /// works for `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<u128> {
        type Value = u128;

        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            self.start + (rng.next_u64() as u128 % span)
        }
    }

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    (lo + rng.next_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Types with a canonical "sample anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: a fixed size or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prelude::prop::...` paths (`prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Arbitrary, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::{TestCaseError, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic samples (default 64, override with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest_fns!{ ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Rotate(usize),
        Barrier,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(1usize..20).prop_map(Op::Rotate), Just(Op::Barrier)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..9, x in -2.0f32..2.0, s in any::<u64>()) {
            let _ = s;
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(1u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn oneof_and_map_compose(o in op(), pair in (1usize..4, 0u64..10)) {
            match o {
                Op::Rotate(n) => prop_assert!((1..20).contains(&n)),
                Op::Barrier => {}
            }
            prop_assert_eq!(pair.0.min(3), pair.0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (1usize..100, 0.0f64..1.0);
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(s.sample(&mut a).0, s.sample(&mut b).0);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
