//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements exactly what the workspace consumes: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer ranges.
//! The generator is splitmix64 — deterministic, seedable, and statistically
//! fine for synthetic workload generation (it is not the real `StdRng`
//! stream, so sampled workloads differ from upstream `rand`, which the
//! workspace does not depend on).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Subset of `rand::Rng`: uniform sampling from a range.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly (subset of `rand::distr`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele et al.), full 2^64 period over the state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..=1_000_000),
                b.random_range(0usize..=1_000_000)
            );
        }
    }

    #[test]
    fn inclusive_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.random_range(5usize..=5), 5);
    }
}
