//! Offline stand-in for the `serde` crate.
//!
//! Real serde is a zero-cost streaming framework; this shim is a small
//! value-tree model: `Serialize` lowers a type to a [`Value`], `Deserialize`
//! lifts it back. That is all the workspace needs (JSON round-trips of config
//! and report structs), and it keeps the derive macro dependency-free (no
//! `syn`/`quote`, see `serde_derive`). The API points consumed by the
//! workspace — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` — resolve exactly as with real serde.

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Ordered map used for JSON objects (BTreeMap so output is deterministic).
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// An in-memory JSON value. Numbers are stored as `f64`, which covers every
/// numeric field in the workspace (counts, microseconds, ratios).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking lookup used by `value["key"]`-style chains.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// `value["key"]` returns `Value::Null` for missing keys, like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident($conv:expr)),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call)]
                Value::$variant(($conv)(v))
            }
        }
    )*};
}

impl_value_from! {
    bool => Bool(|v| v),
    f64 => Number(|v| v),
    f32 => Number(|v: f32| v as f64),
    usize => Number(|v: usize| v as f64),
    u64 => Number(|v: u64| v as f64),
    u32 => Number(|v: u32| v as f64),
    i64 => Number(|v: i64| v as f64),
    i32 => Number(|v: i32| v as f64),
    String => String(|v| v),
    &str => String(|v: &str| v.to_string()),
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` to a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_float_serde {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_float_serde!(f32, f64);

macro_rules! impl_int_serde {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int_serde!(usize, u64, u32, u16, u8, isize, i64, i32);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_tuple_serialize! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&7u32.to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn index_missing_key_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
    }

    #[test]
    fn int_rejects_fractional() {
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
    }
}
