//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-tree `serde::Serialize` / `serde::Deserialize` traits of
//! the sibling serde shim. Because those traits recover field types through
//! trait dispatch, the macro only needs field and variant *names*, so the
//! input can be parsed with a small hand-rolled `TokenTree` walk instead of
//! `syn`, and the output emitted as a string — no external dependencies.
//!
//! Supported shapes (everything the workspace derives on): structs with named
//! fields, unit structs, and enums mixing unit and struct variants. Tuple
//! structs/variants and generics panic at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields (or empty for unit structs).
    Struct { name: String, fields: Vec<String> },
    /// Variants: `None` fields = unit variant, `Some(fields)` = struct variant.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Consumes leading `#[...]` attributes.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
        }
    }
}

/// Consumes a `pub` / `pub(...)` visibility prefix if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Extracts the field names from a `{ ... }` struct-body group, skipping the
/// field types (tracking `<`/`>` depth so commas inside generics don't split).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            // `struct Name;`
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
                name,
                fields: Vec::new(),
            },
            _ => panic!("serde_derive shim: tuple struct `{name}` is not supported"),
        },
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            let mut variants = Vec::new();
            let mut vt = body.into_iter().peekable();
            loop {
                skip_attrs(&mut vt);
                let vname = match vt.next() {
                    None => break,
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("serde_derive shim: expected variant name, got {other:?}"),
                };
                match vt.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vt.next();
                        variants.push((vname, Some(fields)));
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde_derive shim: tuple variant `{name}::{vname}` is not supported"
                        )
                    }
                    _ => variants.push((vname, None)),
                }
                // Consume separators (`,`) and discriminants are unsupported.
                while matches!(vt.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    vt.next();
                }
            }
            Shape::Enum { name, variants }
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let inserts: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner = ::serde::Map::new();\n\
                                 {inserts}\
                                 let mut outer = ::serde::Map::new();\n\
                                 outer.insert(\"{v}\".to_string(), ::serde::Value::Object(inner));\n\
                                 ::serde::Value::Object(outer)\n\
                             }}\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(m.get(\"{f}\").ok_or_else(|| \
                             ::serde::DeError::new(\"{name}: missing field `{f}`\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let m = v.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}: expected object\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{field_inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let field_inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(im.get(\"{f}\").ok_or_else(|| \
                                     ::serde::DeError::new(\"{name}::{v}: missing field `{f}`\"))?)?,\n"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let im = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{v}: expected object payload\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{field_inits}}})\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(m) => {{\n\
                                 let (tag, inner) = m.iter().next().ok_or_else(|| \
                                     ::serde::DeError::new(\"{name}: empty variant object\"))?;\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"{name}: expected string or object\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
