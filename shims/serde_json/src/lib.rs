//! Offline stand-in for `serde_json`, built on the serde shim's [`Value`]
//! tree: `to_string` / `to_string_pretty` / `from_str` plus the `json!`
//! macro. Numbers print via Rust's shortest-roundtrip `f64` formatting, so
//! `to_string -> from_str` preserves every finite value bit-exactly.

pub use serde::{DeError, Map, Value};

/// Unified serde_json-style error (this shim only fails on deserialize).
pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

/// Lowers any serializable value to a [`Value`] tree. Infallible here, but
/// returns `Result` to match serde_json's signature (`.unwrap()` call sites).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Infallible lowering used by the `json!` macro expansion.
#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Lifts a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's f64 Display is shortest-roundtrip and prints whole
                // floats without an exponent or trailing ".0" — valid JSON.
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no Inf/NaN; serde_json emits null likewise.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            level,
            ('[', ']'),
            |o, item, lvl| write_value(o, item, indent, lvl),
        ),
        Value::Object(map) => write_seq(
            out,
            map.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, val), lvl| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, val, indent, lvl)
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(&mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte chars pass through).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Object values may be arbitrary
/// expressions (tokens are munched up to the next top-level comma), nested
/// `{...}`/`[...]` literals, or `null`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_array_items!(items; $($tt)*);
            items
        };
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_entries!(map; $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__to_value(&($other)) };
}

/// Implementation detail of [`json!`]: parses `"key": value, ...` entries.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($map:ident; ) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $( $crate::json_object_entries!($map; $($rest)*); )?
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json_object_entries!($map; $($rest)*); )?
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::json_object_entries!($map; $($rest)*); )?
    };
    ($map:ident; $key:literal : $($rest:tt)+) => {
        $crate::json_munch_expr!($map; $key; []; $($rest)+);
    };
}

/// Implementation detail of [`json!`]: accumulates expression tokens for one
/// object value until end-of-input or a top-level comma.
#[macro_export]
#[doc(hidden)]
macro_rules! json_munch_expr {
    ($map:ident; $key:literal; [$($acc:tt)+];) => {
        $map.insert($key.to_string(), $crate::__to_value(&($($acc)+)));
    };
    ($map:ident; $key:literal; [$($acc:tt)+]; , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::__to_value(&($($acc)+)));
        $crate::json_object_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_munch_expr!($map; $key; [$($acc)* $next]; $($rest)*);
    };
}

/// Implementation detail of [`json!`]: array elements (expression or nested
/// literal), munched the same way as object values.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_items {
    ($items:ident; ) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $( $crate::json_array_items!($items; $($rest)*); )?
    };
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $( $crate::json_array_items!($items; $($rest)*); )?
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $( $crate::json_array_items!($items; $($rest)*); )?
    };
    ($items:ident; $($rest:tt)+) => {
        $crate::json_array_munch!($items; []; $($rest)+);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_array_munch {
    ($items:ident; [$($acc:tt)+];) => {
        $items.push($crate::__to_value(&($($acc)+)));
    };
    ($items:ident; [$($acc:tt)+]; , $($rest:tt)*) => {
        $items.push($crate::__to_value(&($($acc)+)));
        $crate::json_array_items!($items; $($rest)*);
    };
    ($items:ident; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_array_munch!($items; [$($acc)* $next]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "ring",
            "n": 4usize,
            "ratio": 1.5f64,
            "flags": {"fast": true, "detail": null},
            "xs": [1.0f64, 2.0f64]
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["name"], "ring");
        assert_eq!(back["n"], 4.0);
        assert!(back["flags"]["detail"].is_null());
        assert_eq!(back["xs"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_macro_munches_expressions() {
        let base = 21;
        let v = json!({"answer": base * 2, "text": format!("x={}", base)});
        assert_eq!(v["answer"], 42.0);
        assert_eq!(v["text"], "x=21");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": [1f64, 2f64], "b": {"c": "d"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\n\"quoted\"\t\\end"});
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn shortest_roundtrip_floats() {
        for x in [0.1f64, 1e-12, 123456789.123456, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }
}
