//! Integration test crate for the context-parallel workspace (tests live in `tests/tests/`).
