//! End-to-end schedule verification: the three ring algorithms run under
//! a [`CheckedFabric`] whose declared plan is validated offline by
//! `cp-verify` first, then enforced against live traffic — for CP ∈
//! {2, 4, 8}. Seeded mutations must be caught by BOTH layers (model
//! checker offline, `CheckedFabric` at runtime), each naming the
//! offending rank.

use std::time::Duration;

use cp_attention::{AttentionParams, GqaShape};
use cp_comm::{CheckedFabric, CommError};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_q_decode, ring_pass_q_prefill};
use cp_core::schedule::{decode_plan, pass_kv_plan, pass_q_plan, run_ring_checked};
use cp_core::{CoreError, DecodeSlot, LocalSeq, SeqKv};
use cp_tensor::DetRng;
use cp_verify::{apply_mutation, check_plan, explore_default, Mutation};

fn params() -> AttentionParams {
    AttentionParams::for_shape(GqaShape::new(4, 2, 8).unwrap())
}

/// One causal sequence split across `n` ranks, `t` tokens per rank.
fn locals(n: usize, t: usize, seed: u64) -> Vec<Vec<LocalSeq>> {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|r| {
            let pos: Vec<usize> = (r * t..(r + 1) * t).collect();
            vec![LocalSeq {
                q: rng.tensor(&[t, shape.n_heads(), shape.head_dim()]),
                q_pos: pos.clone(),
                k: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[t, shape.n_kv_heads(), shape.head_dim()]),
                kv_pos: pos,
            }]
        })
        .collect()
}

fn decode_inputs(n: usize, seed: u64) -> (Vec<Vec<Option<DecodeSlot>>>, Vec<Vec<SeqKv>>) {
    let p = params();
    let shape = p.shape;
    let mut rng = DetRng::new(seed);
    let slots = (0..n)
        .map(|r| {
            vec![if r % 2 == 0 {
                Some(DecodeSlot {
                    bid: 0,
                    q: rng.tensor(&[1, shape.n_heads(), shape.head_dim()]),
                    pos: 4 * n,
                })
            } else {
                None
            }]
        })
        .collect();
    let kv = (0..n)
        .map(|r| {
            vec![SeqKv {
                k: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                v: rng.tensor(&[4, shape.n_kv_heads(), shape.head_dim()]),
                pos: (r * 4..(r + 1) * 4).collect(),
            }]
        })
        .collect();
    (slots, kv)
}

/// Pass-KV prefill under a verified plan for CP ∈ {2, 4, 8}: the model
/// checker passes the schedule offline, the checked fabric accepts the
/// live run, and measured traffic equals the prediction.
#[test]
fn pass_kv_runs_checked_at_cp_2_4_8() {
    let p = params();
    for n in [2, 4, 8] {
        let inputs = locals(n, 3, 100 + n as u64);
        let plan = pass_kv_plan(&inputs).unwrap();
        assert!(check_plan(&plan).is_clean());
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (outs, report) = run_ring_checked(&fabric, |comm| {
            ring_pass_kv_prefill(comm, &p, &inputs[comm.rank()])
        })
        .unwrap();
        assert_eq!(outs.len(), n);
        predicted.check_report(&report).unwrap();
    }
}

#[test]
fn pass_q_runs_checked_at_cp_2_4_8() {
    let p = params();
    for n in [2, 4, 8] {
        let inputs = locals(n, 2, 200 + n as u64);
        let plan = pass_q_plan(&p, &inputs).unwrap();
        assert!(check_plan(&plan).is_clean());
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (outs, report) = run_ring_checked(&fabric, |comm| {
            ring_pass_q_prefill(comm, &p, &inputs[comm.rank()])
        })
        .unwrap();
        assert_eq!(outs.len(), n);
        predicted.check_report(&report).unwrap();
    }
}

#[test]
fn decode_runs_checked_at_cp_2_4_8() {
    let p = params();
    for n in [2, 4, 8] {
        let (slots, kv) = decode_inputs(n, 300 + n as u64);
        let plan = decode_plan(&p, &slots).unwrap();
        assert!(check_plan(&plan).is_clean());
        let predicted = plan.predicted_traffic();
        let fabric = CheckedFabric::new(plan);
        let (outs, report) = run_ring_checked(&fabric, |comm| {
            ring_pass_q_decode(comm, &p, &slots[comm.rank()], &kv[comm.rank()])
        })
        .unwrap();
        assert_eq!(outs.len(), n);
        predicted.check_report(&report).unwrap();
    }
}

/// Runs the correct pass-KV algorithm against a mutated plan and returns
/// the fabric's error, which must be a plan violation.
fn run_pass_kv_against(plan: cp_comm::CommPlan, inputs: &[Vec<LocalSeq>]) -> CommError {
    let p = params();
    let fabric = CheckedFabric::new(plan).recv_timeout(Duration::from_millis(500));
    let err = run_ring_checked(&fabric, |comm| {
        ring_pass_kv_prefill(comm, &p, &inputs[comm.rank()])
    })
    .unwrap_err();
    match err {
        CoreError::Comm(c) => c,
        other => panic!("expected a comm-layer error, got {other:?}"),
    }
}

/// Every seeded mutation is caught twice — offline by the model checker
/// and at runtime by the checked fabric — naming the offending rank both
/// times.
#[test]
fn mutations_are_caught_offline_and_at_runtime() {
    let n = 4;
    let target = 1usize;
    let inputs = locals(n, 2, 400);
    let clean = pass_kv_plan(&inputs).unwrap();
    assert!(check_plan(&clean).is_clean());

    for mutation in Mutation::seeds(target) {
        let mutated = apply_mutation(&clean, mutation)
            .unwrap_or_else(|| panic!("{} has no site", mutation.tag()));

        // Offline: the model checker flags the plan…
        let report = check_plan(&mutated);
        assert!(!report.is_clean(), "{} escaped the checker", mutation.tag());
        // …naming the mutated rank when the mutation targets one.
        if let Some(rank) = mutation.target_rank() {
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.offending_ranks().contains(&rank)),
                "{}: offline violations {:?} do not name rank {rank}",
                mutation.tag(),
                report.violations
            );
        }

        // Runtime: the correct algorithm run against the mutated plan is
        // rejected by the checked fabric with a PlanViolation.
        match run_pass_kv_against(mutated, &inputs) {
            CommError::PlanViolation { rank, detail, .. } => {
                if let Some(expected) = mutation.target_rank() {
                    assert_eq!(
                        rank,
                        expected,
                        "{}: runtime violation blamed rank {rank}: {detail}",
                        mutation.tag()
                    );
                }
            }
            other => panic!("{}: expected PlanViolation, got {other:?}", mutation.tag()),
        }
    }
}

/// The deadlock mutation is specifically reported as a wait cycle by the
/// graph checker and confirmed stuck by exhaustive exploration.
#[test]
fn deadlock_mutation_is_a_cycle_offline() {
    let inputs = locals(4, 2, 500);
    let clean = pass_kv_plan(&inputs).unwrap();
    let mutated = apply_mutation(&clean, Mutation::RecvBeforeSend).unwrap();
    let report = check_plan(&mutated);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, cp_verify::Violation::Deadlock { .. })));
    assert!(matches!(
        explore_default(&mutated),
        cp_verify::ExploreOutcome::Deadlock { .. }
    ));
}
