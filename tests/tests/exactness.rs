//! Cross-crate exactness: the distributed engine, the raw ring algorithms
//! and the baselines must all agree with single-device attention.

use cp_attention::{AttentionParams, GqaShape, PAD};
use cp_core::baseline::{all_gather_pass_kv_prefill, single_device_prefill};
use cp_core::ring::{ring_pass_kv_prefill, ring_pass_q_prefill, run_ring};
use cp_core::{ContextParallelEngine, EngineConfig, LocalSeq, PrefillRequest};
use cp_kvcache::SeqId;
use cp_perf::RingVariant;
use cp_sharding::ShardPlan;
use cp_tensor::{DetRng, Tensor};

fn shape() -> GqaShape {
    GqaShape::new(8, 2, 16).unwrap()
}

fn qkv(rng: &mut DetRng, t: usize) -> (Tensor, Tensor, Tensor) {
    let s = shape();
    (
        rng.tensor(&[t, s.n_heads(), s.head_dim()]),
        rng.tensor(&[t, s.n_kv_heads(), s.head_dim()]),
        rng.tensor(&[t, s.n_kv_heads(), s.head_dim()]),
    )
}

/// Builds per-rank LocalSeq inputs for one full-prefill sequence.
fn build_locals(
    n: usize,
    t: usize,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
) -> (Vec<Vec<LocalSeq>>, Vec<Vec<usize>>) {
    let plan = ShardPlan::new(t, n).unwrap();
    let max_len = (0..n).map(|r| plan.tokens_for(r)).max().unwrap();
    let mut locals = Vec::new();
    let mut rank_pos = Vec::new();
    for r in 0..n {
        let positions = plan.positions_for(r);
        let mut kv_pos = positions.clone();
        kv_pos.resize(max_len, PAD);
        locals.push(vec![LocalSeq {
            q: q.gather_dim0(&positions).unwrap(),
            q_pos: positions.clone(),
            k: k.gather_dim0(&positions)
                .unwrap()
                .pad_dim0(max_len, 0.0)
                .unwrap(),
            v: v.gather_dim0(&positions)
                .unwrap()
                .pad_dim0(max_len, 0.0)
                .unwrap(),
            kv_pos,
        }]);
        rank_pos.push(positions);
    }
    (locals, rank_pos)
}

#[test]
fn every_distributed_variant_agrees_with_reference() {
    let params = AttentionParams::for_shape(shape());
    let t = 96;
    let n = 4;
    let mut rng = DetRng::new(2024);
    let (q, k, v) = qkv(&mut rng, t);
    let pos: Vec<usize> = (0..t).collect();
    let reference = single_device_prefill(&q, &k, &v, &params, &pos, &pos).unwrap();
    let (locals, rank_pos) = build_locals(n, t, &q, &k, &v);

    let (pass_kv, _) =
        run_ring(n, |c| ring_pass_kv_prefill(c, &params, &locals[c.rank()])).unwrap();
    let (pass_q, _) = run_ring(n, |c| ring_pass_q_prefill(c, &params, &locals[c.rank()])).unwrap();
    let (all_gather, _) = run_ring(n, |c| {
        all_gather_pass_kv_prefill(c, &params, &locals[c.rank()])
    })
    .unwrap();

    for (name, outputs) in [
        ("ring pass-KV", &pass_kv),
        ("ring pass-Q", &pass_q),
        ("all-gather pass-KV", &all_gather),
    ] {
        for r in 0..n {
            for (row, &p) in rank_pos[r].iter().enumerate() {
                let got = outputs[r][0].slice_tokens(row, row + 1).unwrap();
                let want = reference.slice_tokens(p, p + 1).unwrap();
                assert!(
                    got.out.approx_eq(&want.out, 3e-3).unwrap(),
                    "{name}: rank {r} pos {p}"
                );
            }
        }
    }
}

#[test]
fn engine_pass_kv_and_pass_q_bit_identical_flows_match() {
    // The engine must produce the same numbers regardless of variant and
    // rank count, across a three-turn conversation.
    let turns = [48usize, 12, 30];
    let collect = |n: usize, variant: RingVariant| {
        let mut eng =
            ContextParallelEngine::new(EngineConfig::new(n, shape()).with_page_size(8)).unwrap();
        let mut rng = DetRng::new(55);
        let mut outs = Vec::new();
        for (i, &t) in turns.iter().enumerate() {
            let (q, k, v) = qkv(&mut rng, t);
            let req = [PrefillRequest {
                seq: SeqId(1),
                q: &q,
                k: &k,
                v: &v,
            }];
            let out = if i == 0 {
                // First turn: create via batch to allow forcing a variant.
                eng.prefill_batch(&req, Some(variant)).unwrap().remove(0)
            } else {
                eng.prefill_batch(&req, Some(variant)).unwrap().remove(0)
            };
            outs.push(out.output);
        }
        outs
    };
    let reference = collect(1, RingVariant::PassKv);
    for n in [2, 3] {
        for variant in [RingVariant::PassKv, RingVariant::PassQ] {
            let got = collect(n, variant);
            for (turn, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert!(
                    a.out.approx_eq(&b.out, 3e-3).unwrap(),
                    "n={n} {variant:?} turn {turn}"
                );
            }
        }
    }
}

#[test]
fn traffic_matches_table2_formulas() {
    // Table 2: CP pass-KV moves T * N_KV * D_H * e per block (counting
    // K+V as the 2x inside N_KV's factor in the paper's notation; here
    // explicitly 2 * T_msg * N_KV * D_H * e per rank per hop), while
    // pass-Q moves T_msg * N_H * D_H * e — a group_size/2 ratio.
    let s = shape(); // N_H=8, N_KV=2: group 4, pass-Q/pass-KV ratio = 2.
    let t = 64;
    let n = 4;
    let mut rng = DetRng::new(77);
    let (q, k, v) = qkv(&mut rng, t);

    let run = |variant| {
        let mut eng =
            ContextParallelEngine::new(EngineConfig::new(n, s).with_page_size(4)).unwrap();
        eng.prefill_batch(
            &[PrefillRequest {
                seq: SeqId(0),
                q: &q,
                k: &k,
                v: &v,
            }],
            Some(variant),
        )
        .unwrap()
        .remove(0)
        .traffic
    };
    let kv_traffic = run(RingVariant::PassKv);
    let q_traffic = run(RingVariant::PassQ);

    let msg_tokens = t / n; // divisible: no padding
    let e = 4; // f32 wire
    let expected_kv = n * (n - 1) * 2 * msg_tokens * s.n_kv_heads() * s.head_dim() * e;
    let expected_q_hops = n * (n - 1) * msg_tokens * s.n_heads() * s.head_dim() * e;
    // pass-Q additionally returns outputs + LSE to their origin ranks —
    // since the return hop is double-buffered into eager point-to-point
    // sends, those bytes land in the send_recv category and the All2All
    // category stays empty.
    let expected_out =
        n * (n - 1) * (msg_tokens * s.n_heads() * s.head_dim() + msg_tokens * s.n_heads()) * e;
    assert_eq!(kv_traffic.send_recv_bytes, expected_kv);
    assert_eq!(q_traffic.send_recv_bytes, expected_q_hops + expected_out);
    assert_eq!(q_traffic.all_to_all_bytes, 0);
    assert_eq!(kv_traffic.all_to_all_bytes, 0);

    // Equation 1 at P=0: with N_H > 2*N_KV, KV ring messages are smaller.
    assert!(expected_kv < expected_q_hops);
    assert!(kv_traffic.send_recv_bytes < q_traffic.send_recv_bytes);
}

#[test]
fn partial_prefill_traffic_flips_toward_pass_q() {
    // With a large cache and a tiny new prompt, pass-KV must ship the
    // whole padded cache every hop while pass-Q ships only the tiny Q —
    // the Equation 1 regime where the heuristic flips.
    let s = shape();
    let n = 2;
    let mut rng = DetRng::new(88);
    let (q0, k0, v0) = qkv(&mut rng, 128); // large first turn
    let (q1, k1, v1) = qkv(&mut rng, 2); // tiny follow-up

    let run = |variant| {
        let mut eng =
            ContextParallelEngine::new(EngineConfig::new(n, s).with_page_size(8)).unwrap();
        eng.prefill_batch(
            &[PrefillRequest {
                seq: SeqId(0),
                q: &q0,
                k: &k0,
                v: &v0,
            }],
            Some(RingVariant::PassKv),
        )
        .unwrap();
        eng.prefill_batch(
            &[PrefillRequest {
                seq: SeqId(0),
                q: &q1,
                k: &k1,
                v: &v1,
            }],
            Some(variant),
        )
        .unwrap()
        .remove(0)
        .traffic
    };
    let kv = run(RingVariant::PassKv);
    let q = run(RingVariant::PassQ);
    let q_total = q.send_recv_bytes + q.all_to_all_bytes;
    assert!(
        q_total < kv.send_recv_bytes / 4,
        "pass-Q total {q_total} should be far below pass-KV ring bytes {}",
        kv.send_recv_bytes
    );
}

#[test]
fn all_gather_and_ring_move_equal_bytes() {
    // §3.5.2's point is about *overlap*, not volume: the all-gather
    // baseline moves exactly the ring's bytes but cannot hide them.
    let params = AttentionParams::for_shape(shape());
    let (n, t) = (4, 64);
    let mut rng = DetRng::new(99);
    let (q, k, v) = qkv(&mut rng, t);
    let (locals, _) = build_locals(n, t, &q, &k, &v);
    let (_, ring) = run_ring(n, |c| ring_pass_kv_prefill(c, &params, &locals[c.rank()])).unwrap();
    let (_, gather) = run_ring(n, |c| {
        all_gather_pass_kv_prefill(c, &params, &locals[c.rank()])
    })
    .unwrap();
    assert_eq!(ring.send_recv_bytes, gather.all_gather_bytes);
}
