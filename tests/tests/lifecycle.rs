//! End-to-end serving lifecycle: workload-driven multi-turn sessions,
//! capacity limits, and heuristic behaviour over realistic traces.

use cp_attention::GqaShape;
use cp_core::{ChatSession, ContextParallelEngine, EngineConfig, ToyProjector};
use cp_kvcache::SeqId;
use cp_perf::RingVariant;
use cp_tensor::DetRng;
use cp_workload::{conversations, ConversationPlan};

fn shape() -> GqaShape {
    GqaShape::new(4, 2, 8).unwrap()
}

#[test]
fn workload_driven_conversations_run_to_completion() {
    let plan = ConversationPlan::short_chat();
    let convs = conversations(11, 3, &plan);
    let mut engine =
        ContextParallelEngine::new(EngineConfig::new(3, shape()).with_page_size(8)).unwrap();
    for (i, conv) in convs.iter().enumerate() {
        let projector = ToyProjector::new(shape(), 1000 + i as u64);
        let mut session = ChatSession::new(&mut engine, projector, SeqId(i as u64));
        let mut expected_ctx = 0;
        for (turn_idx, turn) in conv.turns.iter().enumerate() {
            let prompt: Vec<u32> = (0..turn.prompt_tokens as u32).collect();
            let (stats, out) = session.user_turn(&prompt).unwrap();
            assert_eq!(stats.new_tokens, turn.prompt_tokens);
            assert_eq!(stats.cached_tokens, expected_ctx);
            assert_eq!(out.tokens(), turn.prompt_tokens);
            expected_ctx += turn.prompt_tokens;
            let (generated, _) = session.assistant_turn(turn.response_tokens).unwrap();
            assert_eq!(generated.len(), turn.response_tokens);
            expected_ctx += turn.response_tokens;
            assert_eq!(
                session.context_len(),
                expected_ctx,
                "conv {i} turn {turn_idx}"
            );
        }
        assert_eq!(expected_ctx, conv.total_tokens());
    }
    // All sequences remain live with balanced shards.
    for (i, conv) in convs.iter().enumerate() {
        let lens = engine.rank_kv_lens(SeqId(i as u64)).unwrap();
        assert_eq!(lens.iter().sum::<usize>(), conv.total_tokens());
    }
}

#[test]
fn miss_rate_driven_variant_switching_over_a_long_conversation() {
    // As the cache grows across turns, the Algorithm 1 heuristic must
    // eventually switch from pass-KV (early, high miss rate) to pass-Q
    // (late, tiny miss rate) — the multi-turn story of §3.4. We use a
    // system context where the Equation 2 threshold is large so the
    // miss-rate condition governs.
    use cp_core::heuristics::SystemContext;
    use cp_perf::HardwareSpec;

    let system = SystemContext {
        model: cp_perf::ModelSpec::llama3_405b(),
        hw: HardwareSpec::gti(), // low bandwidth: big Eq. 2 threshold
        n_nodes: 2,
    };
    let mut engine = ContextParallelEngine::new(
        EngineConfig::new(2, shape())
            .with_page_size(16)
            .with_system(system),
    )
    .unwrap();
    let projector = ToyProjector::new(shape(), 5);
    let mut session = ChatSession::new(&mut engine, projector, SeqId(0));

    // Big first document, then tiny follow-ups.
    let (first, _) = session.user_turn(&vec![7u32; 256]).unwrap();
    assert_eq!(
        first.variant,
        RingVariant::PassKv,
        "full prefill is pass-KV"
    );
    let mut saw_pass_q = false;
    for _ in 0..3 {
        session.assistant_turn(2).unwrap();
        let (stats, _) = session.user_turn(&[1, 2, 3]).unwrap();
        if stats.variant == RingVariant::PassQ {
            saw_pass_q = true;
            assert!(stats.miss_rate < 0.125, "pass-Q only below Eq. 1 threshold");
        }
    }
    assert!(
        saw_pass_q,
        "low miss-rate follow-ups should switch to pass-Q"
    );
}

#[test]
fn capacity_oom_is_clean_and_other_sequences_survive() {
    let mut engine = ContextParallelEngine::new(
        EngineConfig::new(2, shape())
            .with_page_size(4)
            .with_max_pages(8), // 32 tokens per rank
    )
    .unwrap();
    let mut rng = DetRng::new(3);
    let ok_t = 24;
    let q = rng.tensor(&[ok_t, 4, 8]);
    let k = rng.tensor(&[ok_t, 2, 8]);
    let v = rng.tensor(&[ok_t, 2, 8]);
    engine.full_prefill(SeqId(0), &q, &k, &v).unwrap();

    // This prefill needs ~52 tokens per rank in total: over capacity.
    let big_t = 80;
    let q2 = rng.tensor(&[big_t, 4, 8]);
    let k2 = rng.tensor(&[big_t, 2, 8]);
    let v2 = rng.tensor(&[big_t, 2, 8]);
    let err = engine.full_prefill(SeqId(1), &q2, &k2, &v2).unwrap_err();
    assert!(matches!(err, cp_core::CoreError::Cache(_)), "{err}");

    // The original sequence is still intact and usable.
    assert_eq!(engine.context_len(SeqId(0)).unwrap(), ok_t);
    let (q3, k3, v3) = (
        rng.tensor(&[1, 4, 8]),
        rng.tensor(&[1, 2, 8]),
        rng.tensor(&[1, 2, 8]),
    );
    engine.decode_step(&[(SeqId(0), q3, k3, v3)]).unwrap();
    assert_eq!(engine.context_len(SeqId(0)).unwrap(), ok_t + 1);
}

#[test]
fn freeing_one_conversation_frees_capacity_for_another() {
    let mut engine = ContextParallelEngine::new(
        EngineConfig::new(2, shape())
            .with_page_size(4)
            .with_max_pages(6), // 24 tokens per rank
    )
    .unwrap();
    let mut rng = DetRng::new(4);
    let t = 40; // 20 per rank: fits
    let mk = |rng: &mut DetRng| {
        (
            rng.tensor(&[t, 4, 8]),
            rng.tensor(&[t, 2, 8]),
            rng.tensor(&[t, 2, 8]),
        )
    };
    let (q, k, v) = mk(&mut rng);
    engine.full_prefill(SeqId(0), &q, &k, &v).unwrap();
    // A second same-size conversation cannot fit...
    let (q2, k2, v2) = mk(&mut rng);
    assert!(engine.full_prefill(SeqId(1), &q2, &k2, &v2).is_err());
    // ...until the first is freed. The failed attempt must have rolled
    // itself back completely: SeqId(1) is unknown, not half-registered.
    assert!(engine.context_len(SeqId(1)).is_err());
    engine.free_sequence(SeqId(0)).unwrap();
    engine.full_prefill(SeqId(2), &q2, &k2, &v2).unwrap();
    assert_eq!(engine.context_len(SeqId(2)).unwrap(), t);
}

#[test]
fn kv_distribution_extends_capacity_with_more_ranks() {
    // The paper's capacity argument: the same per-rank page budget holds
    // a longer context with more CP ranks.
    let per_rank_pages = 4; // 16 tokens per rank at page_size 4
    let capacity = |n: usize| {
        let mut engine = ContextParallelEngine::new(
            EngineConfig::new(n, shape())
                .with_page_size(4)
                .with_max_pages(per_rank_pages),
        )
        .unwrap();
        let mut rng = DetRng::new(5);
        // Grow a sequence turn by turn until OOM.
        let mut total = 0usize;
        let step = 8;
        let (q, k, v) = (
            rng.tensor(&[step, 4, 8]),
            rng.tensor(&[step, 2, 8]),
            rng.tensor(&[step, 2, 8]),
        );
        if engine.full_prefill(SeqId(0), &q, &k, &v).is_err() {
            return 0;
        }
        total += step;
        loop {
            let (q, k, v) = (
                rng.tensor(&[step, 4, 8]),
                rng.tensor(&[step, 2, 8]),
                rng.tensor(&[step, 2, 8]),
            );
            match engine.partial_prefill(SeqId(0), &q, &k, &v) {
                Ok(_) => total += step,
                Err(_) => break,
            }
        }
        total
    };
    let c1 = capacity(1);
    let c4 = capacity(4);
    assert!(c4 >= 3 * c1, "capacity CP1 {c1} vs CP4 {c4}");
}

#[test]
fn deterministic_replay_across_engine_instances() {
    // Same seed + same trace = bit-identical generated tokens, even with
    // different rank counts (exactness makes parallelism invisible).
    let trace = |n: usize| {
        let mut engine =
            ContextParallelEngine::new(EngineConfig::new(n, shape()).with_page_size(8)).unwrap();
        let projector = ToyProjector::new(shape(), 77);
        let mut session = ChatSession::new(&mut engine, projector, SeqId(0));
        session.user_turn(&[9, 8, 7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        let (a, _) = session.assistant_turn(3).unwrap();
        session.user_turn(&[11, 12, 13]).unwrap();
        let (b, _) = session.assistant_turn(3).unwrap();
        (a, b)
    };
    let single = trace(1);
    let quad = trace(4);
    assert_eq!(single, quad);
}
