//! Consistency between the performance model, the event simulator, the
//! heuristics, and the paper's reported results.

use cp_core::heuristics::{
    choose_variant, fit_empirical, selection_accuracy, HeuristicKind, SystemContext,
};
use cp_perf::event::{closed_form_uniform_us, simulate_ring};
use cp_perf::{cost, decode, mfu, prefill, tp, HardwareSpec, ModelSpec, RingVariant};
use cp_sharding::ShardPlan;
use cp_workload::{context_sweep, heuristic_fit_grid, table4_grid};

fn model() -> ModelSpec {
    ModelSpec::llama3_405b()
}

#[test]
fn event_simulator_validates_closed_form_over_paper_grid() {
    // For every (context, nodes) point of Figure 6's sweep, the event
    // simulator of the ring pipeline must agree with the closed-form
    // makespan used by the TTFT model (uniform per-iteration times).
    let hw = HardwareSpec::gtt();
    for &t in &context_sweep(2_000, 128_000) {
        for n in [2usize, 4, 8] {
            let iter = prefill::ring_iter_costs(&model(), &hw, n, t, 0, RingVariant::PassKv);
            let matrix = vec![vec![iter.attn_us; n]; n];
            let sim = simulate_ring(&matrix, iter.sendrecv_us);
            let closed = closed_form_uniform_us(n, iter.attn_us, iter.sendrecv_us);
            assert!(
                (sim.makespan_us - closed).abs() <= 1e-6 * closed.max(1.0),
                "T={t} N={n}: sim {} vs closed {closed}",
                sim.makespan_us
            );
        }
    }
}

#[test]
fn naive_sharding_would_cost_the_paper_workload() {
    // Ablation: replay Figure 6a's CP8/128K point with naive contiguous
    // sharding's causal-work profile instead of the 2N-chunk one. The
    // straggler rank should inflate the ring makespan by >50%.
    let hw = HardwareSpec::gtt();
    let (n, t) = (8usize, 128_000usize);
    let iter = prefill::ring_iter_costs(&model(), &hw, n, t, 0, RingVariant::PassKv);

    let plan = ShardPlan::new(t, n).unwrap();
    let balanced: Vec<u128> = (0..n).map(|r| plan.causal_pairs_for(r)).collect();
    let naive: Vec<u128> = (0..n)
        .map(|r| {
            cp_sharding::naive_contiguous_positions(t, n, r)
                .iter()
                .map(|&p| (p + 1) as u128)
                .sum()
        })
        .collect();

    let bal_m = cp_perf::event::attn_matrix_from_profile(&balanced, iter.attn_us);
    let nav_m = cp_perf::event::attn_matrix_from_profile(&naive, iter.attn_us);
    let bal = simulate_ring(&bal_m, iter.sendrecv_us);
    let nav = simulate_ring(&nav_m, iter.sendrecv_us);
    assert!(
        nav.makespan_us > 1.5 * bal.makespan_us,
        "naive {} vs balanced {}",
        nav.makespan_us,
        bal.makespan_us
    );
}

#[test]
fn table4_speed_ratio_crosses_one_near_5_percent() {
    // Figure 9: pass-KV/pass-Q TTFT ratio < 1 above ~5% miss rate, > 1
    // below it, on CP4 with T+P = 128000.
    let hw = HardwareSpec::gtt();
    let mut prev_ratio = f64::INFINITY;
    for (p, t) in table4_grid(128_000) {
        let kv = prefill::cp_prefill(&model(), &hw, 4, t, p, RingVariant::PassKv).total_s;
        let q = prefill::cp_prefill(&model(), &hw, 4, t, p, RingVariant::PassQ).total_s;
        let ratio = kv / q;
        let miss = t as f64 / 128_000.0;
        // (The paper treats points near the boundary — ~3.25% to 5% — as
        // indifferent; we assert the clear regions on each side.)
        if miss <= 0.025 {
            assert!(ratio > 1.0, "miss {miss}: ratio {ratio}");
        }
        if miss >= 0.10 {
            assert!(ratio < 1.0, "miss {miss}: ratio {ratio}");
        }
        // The ratio is monotone decreasing in the miss rate, as Figure 9
        // shows.
        assert!(ratio <= prev_ratio + 0.02, "miss {miss}");
        prev_ratio = ratio;
    }
}

#[test]
fn heuristics_agree_with_oracle_away_from_the_boundary() {
    let ctx = SystemContext::llama3_405b_gtt(4);
    // Points well away from the ~5% boundary.
    let clear: Vec<(usize, usize)> = vec![
        (1_280, 126_720),  // 1%: pass-Q
        (12_800, 115_200), // 10%: pass-KV
        (64_000, 64_000),  // 50%: pass-KV
        (128_000, 0),      // full prefill: pass-KV
        (1, 127_999),      // decode-like: pass-Q
    ];
    for kind in [HeuristicKind::Threshold, HeuristicKind::All2AllAware] {
        for &(t, p) in &clear {
            assert_eq!(
                choose_variant(kind, &ctx, t, p),
                choose_variant(HeuristicKind::Oracle, &ctx, t, p),
                "{kind:?} at T={t} P={p}"
            );
        }
    }
}

#[test]
fn fitted_heuristic_beats_paper_constants_on_our_system() {
    // Appendix D workflow: refit (alpha, beta, gamma) on this system's
    // oracle labels; the refit must outperform the paper's testbed
    // constants when both are scored against our oracle.
    let ctx = SystemContext::llama3_405b_gtt(4);
    let t_points: Vec<usize> = (7..17).map(|l| 1usize << l).collect();
    let denoms = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let grid = heuristic_fit_grid(&t_points, &denoms, 1_000_000);
    let (alpha, beta, gamma) = fit_empirical(&ctx, &grid);
    let fitted = HeuristicKind::Empirical { alpha, beta, gamma };
    let fitted_acc = selection_accuracy(fitted, &ctx, &grid);
    let paper_acc = selection_accuracy(cp_core::heuristics::PAPER_EMPIRICAL, &ctx, &grid);
    assert!(fitted_acc > 0.85, "fitted {fitted_acc}");
    assert!(
        fitted_acc >= paper_acc,
        "fitted {fitted_acc} vs paper {paper_acc}"
    );
}

#[test]
fn figure6_latency_halves_with_node_doubling() {
    // Figures 6a/6b: for long contexts, doubling CP nodes halves TTFT.
    for hw in [HardwareSpec::gtt(), HardwareSpec::gti()] {
        let max_nodes = if hw.inter_bw_gbs < 10.0 { 4 } else { 8 };
        let t = 128_000;
        let mut n = 1;
        while 2 * n <= max_nodes {
            let t1 = prefill::cp_full_prefill_s(&model(), &hw, n, t);
            let t2 = prefill::cp_full_prefill_s(&model(), &hw, 2 * n, t);
            let speedup = t1 / t2;
            assert!(
                speedup > 1.7 && speedup <= 2.05,
                "{}: CP{n}->CP{}: {speedup}",
                hw.name,
                2 * n
            );
            n *= 2;
        }
    }
}

#[test]
fn short_contexts_scale_worse_than_long() {
    // Figure 6a's fine print: at 2K tokens adding nodes helps far less
    // than at 128K (fixed overheads and exposed comm dominate).
    let hw = HardwareSpec::gtt();
    let speedup = |t: usize| {
        prefill::cp_full_prefill_s(&model(), &hw, 1, t)
            / prefill::cp_full_prefill_s(&model(), &hw, 8, t)
    };
    assert!(speedup(128_000) / speedup(2_000) > 1.5);
}

#[test]
fn figure8_ttft_grows_superlinearly_past_512k() {
    // Figure 8: >= 512K, doubling context more than doubles TTFT
    // (attention quadratic term dominates).
    let hw = HardwareSpec::gtt();
    let t512 = prefill::cp_full_prefill_s(&model(), &hw, 16, 512_000);
    let t1m = prefill::cp_full_prefill_s(&model(), &hw, 16, 1_024_000);
    assert!(t1m / t512 > 2.0, "{}", t1m / t512);
    // While at short contexts the growth is sub-quadratic (GEMM-bound).
    let t16k = prefill::cp_full_prefill_s(&model(), &hw, 16, 16_000);
    let t32k = prefill::cp_full_prefill_s(&model(), &hw, 16, 32_000);
    assert!(t32k / t16k < 2.0);
}

#[test]
fn appendix_a_mfu_closes_with_the_latency_model() {
    let hw = HardwareSpec::gtt();
    let predicted = prefill::cp_full_prefill_s(&model(), &hw, 16, 1_000_000);
    let report = mfu::mfu_report(&model(), &hw, 1_000_000, 128, predicted);
    assert!(report.parallelization_efficiency > 0.85);
    assert!(report.mfu > 0.55);
    assert!(report.achieved_tflops_per_gpu > 450.0);
}

#[test]
fn table7_full_comparison_shape() {
    // Table 7's TTFT ordering at 128K, batch 1 (paper values in ms):
    //   CP4 (10950) < TP32 (19841) < CP2 (21042) < TP16 (29917) < TP8 (42010)
    // and the TTIT ordering: TP16 < TP8 < TP32 ~ CP2 < CP4.
    let hw = HardwareSpec::gtt();
    let m = model();
    let ttft_cp = |n| prefill::cp_full_prefill_s(&m, &hw, n, 128_000);
    let ttft_tp = |n| tp::tp_prefill(&m, &hw, n, 128_000).total_s;
    assert!(ttft_cp(4) < ttft_tp(4));
    assert!(ttft_tp(4) < ttft_cp(2));
    assert!(ttft_cp(2) < ttft_tp(2));
    assert!(ttft_tp(2) < ttft_tp(1));

    let ttit_tp = |n| tp::tp_ttit_s(&m, &hw, n, 128_000, 1);
    let ttit_cp = |n| decode::cp_ttit_s(&m, &hw, n, 128_000, 1);
    assert!(ttit_tp(2) < ttit_tp(1));
    assert!(ttit_tp(1) < ttit_cp(2));
    assert!(ttit_cp(2) < ttit_cp(4));
}

#[test]
fn cost_formulas_match_measured_engine_traffic_scaling() {
    // The closed-form Table 2 ratio (TP comm / CP comm = 2*N_H/N_KV)
    // holds for the Llama3 405B spec.
    let m = model();
    let ratio = cost::tp_comm_per_block_bytes(&m, 1000) / cost::cp_comm_per_block_bytes(&m, 1000);
    assert_eq!(ratio, 2.0 * 128.0 / 8.0);
}

#[test]
fn gb200_style_interconnect_rescues_tensor_parallel() {
    // §4.2.2's outlook: with NVLink-class inter-host bandwidth (GB200),
    // TP scales reasonably again. Model it by raising inter_bw to the
    // intra_bw and checking the TP scaling ratio recovers.
    let m = model();
    let slow = HardwareSpec::gtt();
    let fast = HardwareSpec {
        inter_bw_gbs: slow.intra_bw_gbs,
        name: "GB200-like".to_string(),
        ..slow.clone()
    };
    let ratio = |hw: &HardwareSpec| {
        tp::tp_prefill(&m, hw, 1, 128_000).total_s / tp::tp_prefill(&m, hw, 8, 128_000).total_s
    };
    assert!(
        ratio(&fast) > 1.6 * ratio(&slow),
        "fast {} slow {}",
        ratio(&fast),
        ratio(&slow)
    );
}
